"""Shim for environments whose setuptools lacks PEP 517 editable support."""

from setuptools import setup

setup()
