#!/usr/bin/env python3
"""Regenerate the committed BENCH_perf.json perf trajectory.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_perf.py [extra bench-perf args]

Equivalent to ``chortle bench-perf --gate -o BENCH_perf.json`` on the
full Table 1-4 suite; pass ``--quick`` for the CI-sized subset.  Any
extra arguments are forwarded to the subcommand, so e.g. ``--jobs 8``
or ``--circuits count frg1`` work as they do on the CLI.
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    argv = ["bench-perf", "--gate"]
    if "-o" not in sys.argv[1:] and "--output" not in sys.argv[1:]:
        argv += ["-o", "BENCH_perf.json"]
    sys.exit(main(argv + sys.argv[1:]))
