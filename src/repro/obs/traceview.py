"""Trace analytics: span trees, self-time attribution, folded stacks.

The tracer (:mod:`repro.obs.tracer`) emits flat, finish-ordered
:class:`~repro.obs.tracer.SpanRecord` streams; this module turns them
back into analyzable structure:

* :func:`build_span_tree` — rebuild the parent/child tree from a
  record list (a :class:`~repro.obs.tracer.MemorySink` capture or a
  ``--trace`` JSONL file loaded with :func:`load_trace`);
* **self-time** — each :class:`SpanNode` knows its *self* seconds
  (duration minus the time covered by its direct children), the number
  that actually attributes cost to a stage.  Inclusive parents such as
  ``flow.stage.*`` or ``cli.map`` have large totals but near-zero self
  time; the hot DP leaves are the other way around.  Because self time
  telescopes, the self seconds of every span in a tree sum exactly to
  the root's duration — a hotspot table therefore accounts for the
  whole wall clock of the traced region;
* :func:`aggregate_by_name` / :func:`hotspots` — per-name totals
  (count, total seconds, self seconds) and the top-N table behind
  ``chortle perf top``;
* :func:`critical_path` — the chain of spans from the longest root
  down its heaviest child at every level: the sequence of stages an
  optimization must shorten to move the end-to-end wall clock;
* :func:`folded_stacks` — ``parent;child;leaf <microseconds>`` lines
  (self time per unique stack), the folded format consumed by
  Brendan Gregg's ``flamegraph.pl`` and by speedscope
  (``chortle perf flame``).

Thread-parallel traces: spans opened on worker threads start fresh
roots (the tracer's stack is thread-local), so a ``jobs > 1`` trace
holds one tree per worker *plus* the main-thread tree whose
``chortle.parallel`` span covers the same wall-clock interval.  Self
times still sum to the sum of root durations, but that sum exceeds the
elapsed wall clock — CPU seconds across workers, not wall seconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PerfError
from repro.obs.tracer import SpanRecord


@dataclass
class SpanNode:
    """One span with its children resolved; the unit of trace analysis."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def duration(self) -> float:
        return self.record.duration

    @property
    def self_seconds(self) -> float:
        """Duration not covered by direct children (floored at zero).

        The floor guards against timer jitter making children sum to
        epsilon more than their parent; it never hides real time.
        """
        covered = sum(child.record.duration for child in self.children)
        return max(0.0, self.record.duration - covered)


def build_span_tree(records: Sequence[SpanRecord]) -> List[SpanNode]:
    """Rebuild the span forest from a flat record list.

    Records whose parent never finished (aborted runs, trace files cut
    off mid-run) become roots rather than being dropped — a truncated
    trace still accounts for every span it contains.  Children are
    sorted by start time, roots likewise.
    """
    nodes: Dict[int, SpanNode] = {
        record.span_id: SpanNode(record) for record in records
    }
    roots: List[SpanNode] = []
    for record in records:
        node = nodes[record.span_id]
        parent = (
            nodes.get(record.parent_id) if record.parent_id is not None else None
        )
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.record.start)
    roots.sort(key=lambda n: n.record.start)
    return roots


def load_trace(path: str) -> List[SpanRecord]:
    """Parse a ``--trace`` JSONL file back into span records.

    A malformed *final* line is dropped silently — it is the signature
    of a run that died mid-write — while a malformed interior line
    raises :class:`~repro.errors.PerfError` with its line number.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise PerfError("cannot read trace %r: %s" % (path, exc)) from exc
    records: List[SpanRecord] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            records.append(
                SpanRecord(
                    span_id=int(data["span_id"]),
                    parent_id=(
                        None
                        if data.get("parent_id") is None
                        else int(data["parent_id"])
                    ),
                    depth=int(data.get("depth", 0)),
                    name=str(data["name"]),
                    start=float(data["start"]),
                    duration=float(data["duration"]),
                    attrs=dict(data.get("attrs") or {}),
                )
            )
        except (ValueError, KeyError, TypeError) as exc:
            if lineno == len(lines):
                break  # truncated final line of an aborted run
            raise PerfError(
                "malformed trace line %d in %r: %s" % (lineno, path, exc)
            ) from None
    return records


@dataclass
class NameStat:
    """Aggregate timing for one span name across a trace."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def mean_self_seconds(self) -> float:
        return self.self_seconds / self.count if self.count else 0.0


def _walk(roots: Sequence[SpanNode]) -> List[SpanNode]:
    """Every node of the forest, preorder (iterative: traces get deep)."""
    out: List[SpanNode] = []
    stack = list(reversed(list(roots)))
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(reversed(node.children))
    return out


def aggregate_by_name(roots: Sequence[SpanNode]) -> List[NameStat]:
    """Per-name (count, total, self) aggregates, largest self time first."""
    stats: Dict[str, NameStat] = {}
    for node in _walk(roots):
        stat = stats.get(node.name)
        if stat is None:
            stat = stats[node.name] = NameStat(node.name)
        stat.count += 1
        stat.total_seconds += node.duration
        stat.self_seconds += node.self_seconds
    return sorted(stats.values(), key=lambda s: (-s.self_seconds, s.name))


def hotspots(
    records: Sequence[SpanRecord], top: int = 15
) -> Tuple[List[NameStat], float]:
    """The top-N self-time names and the trace's total root seconds."""
    roots = build_span_tree(records)
    wall = sum(root.duration for root in roots)
    return aggregate_by_name(roots)[:top], wall


def critical_path(roots: Sequence[SpanNode]) -> List[SpanNode]:
    """Longest root, then the heaviest child at every level down to a leaf."""
    if not roots:
        return []
    node = max(roots, key=lambda n: n.duration)
    path = [node]
    while node.children:
        node = max(node.children, key=lambda n: n.duration)
        path.append(node)
    return path


def folded_stacks(
    records: Sequence[SpanRecord], scale: float = 1e6
) -> List[str]:
    """``a;b;c <value>`` lines — self time per unique stack, scaled.

    ``scale=1e6`` yields integer microseconds, the convention both
    ``flamegraph.pl`` and speedscope's "folded stacks" importer expect.
    Identical stacks (same name chain) are merged; zero-valued stacks
    are dropped.  Semicolons inside span names are replaced with ``:``
    so they cannot corrupt the stack separator.
    """
    merged: Dict[Tuple[str, ...], int] = {}

    def clean(name: str) -> str:
        return name.replace(";", ":").replace(" ", "_")

    stack: List[str] = []

    def visit(node: SpanNode) -> None:
        stack.append(clean(node.name))
        value = int(round(node.self_seconds * scale))
        if value > 0:
            key = tuple(stack)
            merged[key] = merged.get(key, 0) + value
        for child in node.children:
            visit(child)
        stack.pop()

    for root in build_span_tree(records):
        visit(root)
    return [
        "%s %d" % (";".join(names), value)
        for names, value in sorted(merged.items())
    ]


# -- rendering ---------------------------------------------------------------


def render_hotspots(
    stats: Sequence[NameStat],
    wall_seconds: Optional[float] = None,
    title: str = "hotspots (self time)",
) -> str:
    """The ``chortle perf top`` table: one row per name, self time first."""
    lines = [title]
    width = max([len(s.name) for s in stats] + [5])
    lines.append(
        "%-*s %9s %6s %9s %7s" % (width, "span", "self", "%", "total", "count")
    )
    total_self = sum(s.self_seconds for s in stats)
    denom = wall_seconds if wall_seconds else total_self
    for stat in stats:
        pct = 100.0 * stat.self_seconds / denom if denom else 0.0
        lines.append(
            "%-*s %8.3fs %5.1f%% %8.3fs %7d"
            % (
                width,
                stat.name,
                stat.self_seconds,
                pct,
                stat.total_seconds,
                stat.count,
            )
        )
    if wall_seconds is not None:
        coverage = 100.0 * total_self / wall_seconds if wall_seconds else 0.0
        lines.append(
            "listed self time: %.3fs of %.3fs wall (%.1f%%)"
            % (total_self, wall_seconds, coverage)
        )
    return "\n".join(lines)


def render_critical_path(path: Sequence[SpanNode]) -> str:
    """One line per hop: name, duration, and self time at that level."""
    lines = ["critical path (heaviest child at every level):"]
    for i, node in enumerate(path):
        lines.append(
            "%s%-40s %8.3fs total, %8.3fs self"
            % ("  " * i, node.name, node.duration, node.self_seconds)
        )
    return "\n".join(lines)
