"""Hierarchical tracing spans with pluggable sinks.

A *span* is a named, timed region of execution with optional key/value
attributes::

    from repro.obs import span

    with span("chortle.map_tree", tree=root) as s:
        ...
        s.set("luts", cand.cost)

Spans nest: the tracer keeps a per-tracer stack, so a span opened while
another is live records that span as its parent, and sinks receive
finished :class:`SpanRecord` objects carrying ``span_id`` / ``parent_id``
/ ``depth`` so the tree can be rebuilt.

Sinks are pluggable and stackable:

* :class:`MemorySink` — collects records in a list (tests, profiling);
* :class:`JsonLinesSink` — one JSON object per finished span, appended
  to a file (machine-readable traces);
* :class:`StderrSink` — human-readable one-liner per span on stderr.

When **no** sink is attached, :meth:`Tracer.span` returns a shared no-op
context manager after a single attribute lookup — instrumented code pays
essentially nothing when tracing is off, so spans can live on hot paths.

Records are emitted when a span *finishes*, i.e. in post-order: children
appear before their parent.  Sequential sibling spans therefore appear
in execution order.
"""

from __future__ import annotations

import atexit
import io
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO, Tuple, Union


@dataclass
class SpanRecord:
    """One finished span, as delivered to sinks."""

    span_id: int
    parent_id: Optional[int]
    depth: int  # 0 for root spans
    name: str
    start: float  # perf_counter timestamp at entry
    duration: float  # seconds
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "attrs": self.attrs,
        }


class Sink:
    """Base class for span sinks."""

    def emit(self, record: SpanRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemorySink(Sink):
    """Collects finished spans in memory (finish order, children first)."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []

    def emit(self, record: SpanRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records = []

    def by_name(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def roots(self) -> List[SpanRecord]:
        return [r for r in self.records if r.parent_id is None]

    def children(self, record: SpanRecord) -> List[SpanRecord]:
        return [r for r in self.records if r.parent_id == record.span_id]

    def stage_timings(self, prefix: str = "") -> Dict[str, float]:
        """Total seconds per span name (optionally filtered by prefix)."""
        timings: Dict[str, float] = {}
        for record in self.records:
            if prefix and not record.name.startswith(prefix):
                continue
            timings[record.name] = timings.get(record.name, 0.0) + record.duration
        return timings


class JsonLinesSink(Sink):
    """Writes one JSON object per finished span to a file or stream.

    The sink is crash-safe: every record is flushed as soon as it is
    written (an aborted run's trace therefore ends at a line boundary
    rather than mid-record), and file handles the sink opened itself
    are additionally closed at interpreter exit via ``atexit``, so a
    run that never reaches its own ``close()`` still leaves a complete,
    parseable trace behind.
    """

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            # The sink owns this handle; close() releases it.
            self._handle = open(target, "w", encoding="utf-8")  # noqa: SIM115
            self._owns_handle = True
            atexit.register(self.close)
        else:
            self._handle = target
            self._owns_handle = False
        # Spans may finish on parallel-mapping worker threads; the lock
        # keeps each JSON line contiguous in the output.
        self._lock = threading.Lock()

    def emit(self, record: SpanRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line)
            self._handle.write("\n")
            self._handle.flush()

    def close(self) -> None:
        if self._owns_handle:
            atexit.unregister(self.close)
            if not self._handle.closed:
                self._handle.close()
        else:
            self._handle.flush()


class StderrSink(Sink):
    """Prints a human-readable line per finished span to stderr."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, record: SpanRecord) -> None:
        attrs = ""
        if record.attrs:
            attrs = " " + " ".join(
                "%s=%r" % (k, v) for k, v in sorted(record.attrs.items())
            )
        print(
            "[trace] %s%s %.3fms%s"
            % ("  " * record.depth, record.name, record.duration * 1e3, attrs),
            file=self._stream,
        )


class _NullSpan:
    """Shared do-nothing span used when no sink is attached."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An active span; created only when at least one sink is attached."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "_start")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._start = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) an attribute while the span is live."""
        self.attrs[key] = value

    def __enter__(self) -> _LiveSpan:
        tracer = self._tracer
        self.span_id = tracer._new_span_id()
        stack = tracer._stack
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            depth=self.depth,
            name=self.name,
            start=self._start,
            duration=end - self._start,
            attrs=self.attrs,
        )
        for sink in tracer._sinks:
            sink.emit(record)
        return False


class Tracer:
    """Span factory with a stack of live spans and a tuple of sinks.

    The live-span stack is thread-local: spans opened on a parallel
    worker thread become roots of their own tree (carrying a ``worker``
    attribute when the caller sets one) instead of corrupting the
    parent/depth bookkeeping of spans on other threads.  Span ids stay
    globally unique under a lock; sinks are shared across threads.
    """

    def __init__(self) -> None:
        self._sinks: Tuple[Sink, ...] = ()
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_id = 0

    @property
    def _stack(self) -> List[_LiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_span_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def span(self, name: str, **attrs: object) -> Union[_NullSpan, _LiveSpan]:
        """Open a span; a shared no-op object when no sink is attached."""
        if not self._sinks:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks = self._sinks + (sink,)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        self._sinks = tuple(s for s in self._sinks if s is not sink)

    def clear_sinks(self) -> None:
        self._sinks = ()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by the instrumented passes."""
    return _TRACER


def span(name: str, **attrs: object) -> Union[_NullSpan, _LiveSpan]:
    """Open a span on the global tracer (no-op when tracing is off)."""
    tracer = _TRACER
    if not tracer._sinks:
        return _NULL_SPAN
    return _LiveSpan(tracer, name, attrs)


class capture:
    """Context manager attaching a fresh :class:`MemorySink` temporarily::

        with capture() as sink:
            map_area(net)
        print(sink.stage_timings("pipeline."))
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer if tracer is not None else _TRACER
        self._sink = MemorySink()

    def __enter__(self) -> MemorySink:
        self._tracer.add_sink(self._sink)
        return self._sink

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer.remove_sink(self._sink)
        return False


def render_span_tree(records: List[SpanRecord],
                     stream: Optional[TextIO] = None) -> str:
    """Format finished spans as an indented tree (execution order).

    ``records`` is finish-ordered (as collected by a sink); the tree is
    rebuilt from parent ids and siblings sorted by start time.
    """
    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    for record in records:
        by_parent.setdefault(record.parent_id, []).append(record)
    for siblings in by_parent.values():
        siblings.sort(key=lambda r: r.start)

    lines: List[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        attrs = ""
        if record.attrs:
            attrs = "  [%s]" % ", ".join(
                "%s=%r" % (k, v) for k, v in sorted(record.attrs.items())
            )
        lines.append(
            "%s%-*s %9.3fms%s"
            % ("  " * depth, max(1, 40 - 2 * depth), record.name,
               record.duration * 1e3, attrs)
        )
        for child in by_parent.get(record.span_id, []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    text = "\n".join(lines)
    if stream is not None:
        print(text, file=stream)
    return text
