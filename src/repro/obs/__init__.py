"""Observability subsystem: tracing spans, mapper metrics, profiling.

Two process-wide singletons back the instrumentation woven through the
mapping pipeline:

* the **tracer** (:func:`get_tracer`) — hierarchical spans with
  pluggable sinks; zero-cost no-op when no sink is attached;
* the **metrics registry** (:data:`metrics`) — counters, gauges, and
  running histograms written by the passes unconditionally.

Analytics and persistence live in sibling modules, imported explicitly
(several depend on :mod:`repro.report` or the bench layer, which
transitively import this package):

* :mod:`repro.obs.traceview` — span trees, self-time hotspots, folded
  stacks (``chortle perf top|flame``);
* :mod:`repro.obs.progress` — per-cell heartbeat streaming for long
  sweeps (``--progress``);
* :mod:`repro.obs.qor` / :mod:`repro.obs.qordiff` — versioned QoR run
  records, baseline diffing, regression gating;
* :mod:`repro.obs.perfrec` / :mod:`repro.obs.perfdiff` — the perf
  observatory: durable perf records, append-only history,
  noise-tolerant trend diffing (``chortle perf record|diff|gate``).

::

    from repro.obs.qor import RunRecord
    from repro.obs.perfrec import PerfRecord, PerfHistory
    from repro.obs.traceview import hotspots, folded_stacks

See ``docs/OBSERVABILITY.md`` for the span-name and counter catalogue
and the record schemas.
"""

from repro.obs.metrics import MetricsRegistry, get_metrics, metrics
from repro.obs.tracer import (
    JsonLinesSink,
    MemorySink,
    Sink,
    SpanRecord,
    StderrSink,
    Tracer,
    capture,
    get_tracer,
    render_span_tree,
    span,
)
from repro.obs.util import recursion_limit

__all__ = [
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "Sink",
    "SpanRecord",
    "StderrSink",
    "Tracer",
    "capture",
    "get_metrics",
    "get_tracer",
    "metrics",
    "recursion_limit",
    "render_span_tree",
    "span",
]
