"""Observability subsystem: tracing spans, mapper metrics, profiling.

Two process-wide singletons back the instrumentation woven through the
mapping pipeline:

* the **tracer** (:func:`get_tracer`) — hierarchical spans with
  pluggable sinks; zero-cost no-op when no sink is attached;
* the **metrics registry** (:data:`metrics`) — counters, gauges, and
  running histograms written by the passes unconditionally.

Persistent QoR tooling lives in the sibling modules
:mod:`repro.obs.qor` (versioned run records) and
:mod:`repro.obs.qordiff` (baseline diffing and regression gating).
They are *not* re-exported here: they depend on :mod:`repro.report`,
which transitively imports this package, so import them explicitly::

    from repro.obs.qor import RunRecord
    from repro.obs.qordiff import diff_records

See ``docs/OBSERVABILITY.md`` for the span-name and counter catalogue
and the QoR record schema.
"""

from repro.obs.metrics import MetricsRegistry, get_metrics, metrics
from repro.obs.tracer import (
    JsonLinesSink,
    MemorySink,
    Sink,
    SpanRecord,
    StderrSink,
    Tracer,
    capture,
    get_tracer,
    render_span_tree,
    span,
)
from repro.obs.util import recursion_limit

__all__ = [
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "Sink",
    "SpanRecord",
    "StderrSink",
    "Tracer",
    "capture",
    "get_metrics",
    "get_tracer",
    "metrics",
    "recursion_limit",
    "render_span_tree",
    "span",
]
