"""Small observability-adjacent utilities shared by the instrumented passes."""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def recursion_limit(limit: int) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit.

    The limit is only ever raised (never lowered below the current
    setting) and is restored on exit, so library callers are not left
    with a mutated interpreter-wide setting.
    """
    previous = sys.getrecursionlimit()
    target = max(previous, limit)
    sys.setrecursionlimit(target)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
