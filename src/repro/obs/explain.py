"""Decision provenance: the explain engine for the mapping DP.

The tree DP records only *outcomes* (per-LUT :class:`~repro.core.lut.LUTProvenance`)
unless asked otherwise; this module is the asked-otherwise.  A
:class:`DecisionRecorder` handed to the mapper captures, per tree node,
the decision the DP actually took — the chosen utilization division,
its cost and depth, how many alternatives were enumerated to find it,
and how close the runner-up came — as schema-versioned,
JSON-serializable records.  On top of the records sit the analytics a
QoR investigation needs:

* :func:`depth_attribution` — walk the mapped circuit's critical path
  from the deepest output back to the source gates and attribute each
  LUT level to the source tree (or the output-interface plumbing) that
  pays it; the attribution always sums to the reported circuit depth;
* :func:`area_attribution` — the "who pays" table: cost-counted LUTs
  and share per source tree, from per-LUT provenance;
* :func:`decision_drilldown` — compare two explanations node by node
  and name the decisions that changed, so a QoR regression on a tree
  (see :mod:`repro.obs.qordiff`) resolves to an individual DP choice.

Recording is **cache-exclusive**: a :class:`~repro.core.tree_mapper.TreeMapper`
carrying a recorder bypasses the structural memo cache entirely, so the
alternatives-enumerated counts are exact and the records are
bit-identical whether the cache is cold, warm, or absent — and a run
*without* a recorder pays nothing (the hot DP loops are untouched; see
the overhead budget in ``docs/OBSERVABILITY.md``).  The mapped circuit
itself is unchanged either way: the recorder observes the DP, it never
steers it.

Everything serializes through :meth:`MappingExplanation.to_dict` under
:data:`EXPLAIN_SCHEMA`; :func:`validate_explanation` is the CI smoke
check for the committed explain snapshot.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.lut import LUTCircuit
from repro.errors import ExplainError
from repro.obs.metrics import metrics

if TYPE_CHECKING:
    from repro.network.network import BooleanNetwork

#: Bump when the record layout changes; validation rejects other versions.
EXPLAIN_SCHEMA = 1

#: Attribution bucket for critical-path LUTs emitted outside any tree
#: decomposition (output-interface inverters/buffers/constants).
INTERFACE = "(interface)"


@dataclass(frozen=True)
class Alternative:
    """One retained entry of a node's minmap table: an alternative the
    chosen decision beat (or equals, at the chosen utilization bound)."""

    utilization: int  # at-most-u bound of this minmap entry
    cost: int
    depth: int
    placements: Tuple[str, ...]  # placement kinds (ext/wire/merged)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["placements"] = list(self.placements)
        return data


@dataclass(frozen=True)
class NodeDecision:
    """The DP's decision at one tree node.

    ``placement`` says how the node's table entered the circuit:
    ``root`` (the tree root's own LUT), ``wire`` (its own LUT feeding
    the parent), ``merged`` (absorbed into the parent's root table), or
    ``cut`` (realized as one LUT over a chosen K-feasible cut by a
    DAG-covering mapper).
    ``candidates`` counts every utilization division the subset DP
    enumerated for this node; ``runner_up_delta`` is the cost distance
    to the best *different* retained entry (``None`` when every retained
    entry is the chosen one).  It can be negative on non-root nodes: the
    parent's utilization budget may force a costlier entry than the
    table's global best, and the negative delta names the LUTs a looser
    budget would have saved.
    """

    node: str
    op: str
    fanins: int
    split: bool  # node exceeded the split threshold (Section 3.1.4)
    placement: str  # root | wire | merged
    utilization: int  # root-table inputs actually used by the chosen entry
    cost: int
    depth: int
    placements: Tuple[str, ...]
    candidates: int
    alternatives: Tuple[Alternative, ...] = ()
    runner_up_delta: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "op": self.op,
            "fanins": self.fanins,
            "split": self.split,
            "placement": self.placement,
            "utilization": self.utilization,
            "cost": self.cost,
            "depth": self.depth,
            "placements": list(self.placements),
            "candidates": self.candidates,
            "alternatives": [alt.to_dict() for alt in self.alternatives],
            "runner_up_delta": self.runner_up_delta,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "NodeDecision":
        return cls(
            node=str(data["node"]),
            op=str(data["op"]),
            fanins=int(data["fanins"]),
            split=bool(data["split"]),
            placement=str(data["placement"]),
            utilization=int(data["utilization"]),
            cost=int(data["cost"]),
            depth=int(data["depth"]),
            placements=tuple(data.get("placements") or ()),
            candidates=int(data["candidates"]),
            alternatives=tuple(
                Alternative(
                    utilization=int(alt["utilization"]),
                    cost=int(alt["cost"]),
                    depth=int(alt["depth"]),
                    placements=tuple(alt.get("placements") or ()),
                )
                for alt in data.get("alternatives") or ()
            ),
            runner_up_delta=(
                None
                if data.get("runner_up_delta") is None
                else int(data["runner_up_delta"])
            ),
        )


@dataclass
class TreeDecisions:
    """Every decision taken while mapping one fanout-free tree."""

    root: str
    luts: int  # the chosen root candidate's cost
    depth: int  # the chosen root candidate's depth (LUT levels)
    nodes: List[NodeDecision] = field(default_factory=list)

    def node(self, name: str) -> Optional[NodeDecision]:
        for decision in self.nodes:
            if decision.node == name:
                return decision
        return None

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "luts": self.luts,
            "depth": self.depth,
            "nodes": [decision.to_dict() for decision in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TreeDecisions":
        return cls(
            root=str(data["root"]),
            luts=int(data["luts"]),
            depth=int(data["depth"]),
            nodes=[NodeDecision.from_dict(d) for d in data.get("nodes") or ()],
        )


class DecisionRecorder:
    """Collects per-tree decision records from the mapper.

    Thread-safe: the parallel tree fan-out records different trees from
    different worker threads.  Output order is independent of execution
    order — trees come back in the forest order the mapper declares via
    :meth:`set_order` — so records are bit-identical across serial,
    ``jobs=N``, and warm-cache runs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._trees: Dict[str, TreeDecisions] = {}
        self._order: List[str] = []

    def set_order(self, roots: Sequence[str]) -> None:
        """Declare the deterministic (forest) ordering of tree records."""
        with self._lock:
            self._order = list(roots)

    def record_tree(self, tree: TreeDecisions) -> None:
        """Store the finished record for one tree (last write wins)."""
        metrics.count("explain.trees_recorded")
        metrics.count("explain.nodes_recorded", len(tree.nodes))
        with self._lock:
            self._trees[tree.root] = tree

    def trees(self) -> List[TreeDecisions]:
        """All recorded trees, in the declared forest order."""
        with self._lock:
            ordered = [
                self._trees[root] for root in self._order if root in self._trees
            ]
            extra = [
                tree
                for root, tree in sorted(self._trees.items())
                if root not in self._order
            ]
            return ordered + extra

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)


# -- circuit analytics -------------------------------------------------------


def _levels(circuit: LUTCircuit) -> Dict[str, int]:
    level: Dict[str, int] = {name: 0 for name in circuit.inputs}
    for name in circuit.topological_order():
        lut = circuit.lut(name)
        fanin_levels = [level.get(src, 0) for src in lut.inputs]
        level[name] = 1 + max(fanin_levels) if fanin_levels else 0
    return level


def critical_path(circuit: LUTCircuit) -> List[str]:
    """LUT names along one deepest output-to-source path, source first.

    Ties (equal-depth outputs or fanins) break lexicographically, so the
    path — and everything derived from it — is deterministic.  The path
    length equals :meth:`LUTCircuit.depth` by construction: each step
    descends exactly one LUT level.
    """
    outputs = circuit.outputs
    if not outputs:
        return []
    level = _levels(circuit)
    sig = min(
        outputs.values(), key=lambda name: (-level.get(name, 0), name)
    )
    path: List[str] = []
    cur = sig
    while level.get(cur, 0) > 0:
        path.append(cur)
        lut = circuit.lut(cur)
        cur = min(lut.inputs, key=lambda src: (-level.get(src, 0), src))
    path.reverse()
    return path


def depth_attribution(circuit: LUTCircuit) -> Tuple[Dict[str, int], List[str]]:
    """(levels per source tree, critical path) for a mapped circuit.

    Each LUT on the critical path contributes one level, attributed to
    the source tree named by its provenance — or to :data:`INTERFACE`
    for provenance-free tables (output inverters, constants, or any LUT
    emitted by a mapper that records no provenance).  The values always
    sum to the circuit's reported depth.
    """
    path = critical_path(circuit)
    attribution: Dict[str, int] = {}
    for name in path:
        prov = circuit.lut(name).provenance
        key = prov.tree if prov is not None else INTERFACE
        attribution[key] = attribution.get(key, 0) + 1
    return attribution, path


def area_attribution(circuit: LUTCircuit) -> Dict[str, int]:
    """Cost-counted LUTs per source tree (the "who pays" area table)."""
    return circuit.tree_profile()


# -- the explanation object --------------------------------------------------


@dataclass
class MappingExplanation:
    """Everything the explain engine knows about one mapping run."""

    circuit: str
    k: int
    mapper: str
    luts: int
    depth: int
    trees: List[TreeDecisions] = field(default_factory=list)
    depth_attribution: Dict[str, int] = field(default_factory=dict)
    critical_path: List[str] = field(default_factory=list)
    area_by_tree: Dict[str, int] = field(default_factory=dict)
    schema: int = EXPLAIN_SCHEMA

    def tree(self, root: str) -> Optional[TreeDecisions]:
        for tree in self.trees:
            if tree.root == root:
                return tree
        return None

    def filter_node(self, node: str) -> "MappingExplanation":
        """A copy keeping only decision records for the named node."""
        from dataclasses import replace

        trees = []
        for tree in self.trees:
            kept = [d for d in tree.nodes if d.node == node]
            if kept:
                trees.append(
                    TreeDecisions(
                        root=tree.root,
                        luts=tree.luts,
                        depth=tree.depth,
                        nodes=kept,
                    )
                )
        return replace(self, trees=trees)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "circuit": self.circuit,
            "k": self.k,
            "mapper": self.mapper,
            "luts": self.luts,
            "depth": self.depth,
            "trees": [tree.to_dict() for tree in self.trees],
            "depth_attribution": dict(self.depth_attribution),
            "critical_path": list(self.critical_path),
            "area_by_tree": dict(self.area_by_tree),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "MappingExplanation":
        validate_explanation(data)
        return cls(
            circuit=str(data["circuit"]),
            k=int(data["k"]),
            mapper=str(data["mapper"]),
            luts=int(data["luts"]),
            depth=int(data["depth"]),
            trees=[TreeDecisions.from_dict(t) for t in data.get("trees") or ()],
            depth_attribution={
                str(tree): int(levels)
                for tree, levels in (data.get("depth_attribution") or {}).items()
            },
            critical_path=[str(n) for n in data.get("critical_path") or ()],
            area_by_tree={
                str(tree): int(luts)
                for tree, luts in (data.get("area_by_tree") or {}).items()
            },
            schema=int(data["schema"]),
        )

    @classmethod
    def load(cls, path: str) -> "MappingExplanation":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ExplainError(
                "cannot load explanation %r: %s" % (path, exc)
            ) from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
                handle.write("\n")
        except OSError as exc:
            raise ExplainError(
                "cannot write explanation %r: %s" % (path, exc)
            ) from exc


_NODE_KEYS = (
    "node", "op", "fanins", "split", "placement", "utilization", "cost",
    "depth", "placements", "candidates", "alternatives", "runner_up_delta",
)


def validate_explanation(data: Mapping) -> None:
    """Check a dict against the explain record schema; raise on violation.

    Validates the schema version, the presence and types of every
    required field, and the structural invariants — notably that the
    depth attribution sums to the recorded circuit depth and the
    critical path is exactly that long.
    """
    if not isinstance(data, Mapping):
        raise ExplainError("explanation must be a JSON object")
    schema = data.get("schema")
    if schema != EXPLAIN_SCHEMA:
        raise ExplainError(
            "unsupported explain schema %r (supported: %d)"
            % (schema, EXPLAIN_SCHEMA)
        )
    for key, kind in (
        ("circuit", str), ("k", int), ("mapper", str), ("luts", int),
        ("depth", int), ("trees", list), ("depth_attribution", dict),
        ("critical_path", list), ("area_by_tree", dict),
    ):
        if not isinstance(data.get(key), kind):
            raise ExplainError(
                "explanation field %r missing or not a %s"
                % (key, kind.__name__)
            )
    attributed = sum(int(v) for v in data["depth_attribution"].values())
    if attributed != data["depth"]:
        raise ExplainError(
            "depth attribution sums to %d but circuit depth is %d"
            % (attributed, data["depth"])
        )
    if len(data["critical_path"]) != data["depth"]:
        raise ExplainError(
            "critical path has %d LUTs but circuit depth is %d"
            % (len(data["critical_path"]), data["depth"])
        )
    for tree in data["trees"]:
        if not isinstance(tree, Mapping):
            raise ExplainError("tree record is not an object")
        for key in ("root", "luts", "depth", "nodes"):
            if key not in tree:
                raise ExplainError("tree record missing field %r" % key)
        for node in tree["nodes"]:
            if not isinstance(node, Mapping):
                raise ExplainError(
                    "node record in tree %r is not an object" % tree["root"]
                )
            missing = [key for key in _NODE_KEYS if key not in node]
            if missing:
                raise ExplainError(
                    "node record %r missing fields %s"
                    % (node.get("node"), missing)
                )
            if node["placement"] not in ("root", "wire", "merged", "cut"):
                raise ExplainError(
                    "node %r has unknown placement %r"
                    % (node.get("node"), node["placement"])
                )


def build_explanation(
    network: "BooleanNetwork",
    circuit: LUTCircuit,
    recorder: Optional[DecisionRecorder],
    k: int,
    mapper: str = "chortle",
) -> MappingExplanation:
    """Assemble the explanation for one mapping run.

    ``recorder`` may be ``None`` (or empty) for mappers that record no
    decisions; the circuit-level analytics — depth attribution and the
    area table — are still computed from whatever provenance the
    circuit carries.
    """
    attribution, path = depth_attribution(circuit)
    return MappingExplanation(
        circuit=network.name,
        k=k,
        mapper=mapper,
        luts=circuit.cost,
        depth=circuit.depth(),
        trees=recorder.trees() if recorder is not None else [],
        depth_attribution=attribution,
        critical_path=path,
        area_by_tree=area_attribution(circuit),
    )


# -- the qordiff drill-down --------------------------------------------------


@dataclass(frozen=True)
class DecisionDelta:
    """One tree node whose DP decision differs between two explanations."""

    tree: str
    node: str
    field: str  # what changed: cost | utilization | placements | ...
    baseline: str
    current: str

    def describe(self) -> str:
        return "tree %s, node %s: %s %s -> %s" % (
            self.tree, self.node, self.field, self.baseline, self.current,
        )


def _decision_deltas(
    tree: str, base: NodeDecision, cur: NodeDecision
) -> List[DecisionDelta]:
    deltas: List[DecisionDelta] = []
    for attr in ("cost", "utilization", "depth", "placement"):
        b, c = getattr(base, attr), getattr(cur, attr)
        if b != c:
            deltas.append(
                DecisionDelta(
                    tree=tree, node=base.node, field=attr,
                    baseline=str(b), current=str(c),
                )
            )
    if base.placements != cur.placements:
        deltas.append(
            DecisionDelta(
                tree=tree,
                node=base.node,
                field="placements",
                baseline=",".join(base.placements),
                current=",".join(cur.placements),
            )
        )
    return deltas


def decision_drilldown(
    baseline: MappingExplanation,
    current: MappingExplanation,
    trees: Optional[Sequence[str]] = None,
) -> List[DecisionDelta]:
    """Name the decisions that changed between two explanations.

    ``trees`` restricts the comparison to the named source trees (the
    worsened trees a QoR diff already attributed); ``None`` compares
    every shared tree.  Nodes present on only one side are reported as
    ``present`` deltas — a changed forest partition is itself a decision
    change worth naming.
    """
    wanted = set(trees) if trees is not None else None
    base_trees = {tree.root: tree for tree in baseline.trees}
    cur_trees = {tree.root: tree for tree in current.trees}
    deltas: List[DecisionDelta] = []
    for root in sorted(set(base_trees) | set(cur_trees)):
        if wanted is not None and root not in wanted:
            continue
        b_tree, c_tree = base_trees.get(root), cur_trees.get(root)
        if b_tree is None or c_tree is None:
            deltas.append(
                DecisionDelta(
                    tree=root,
                    node=root,
                    field="present",
                    baseline=str(b_tree is not None),
                    current=str(c_tree is not None),
                )
            )
            continue
        b_nodes = {d.node: d for d in b_tree.nodes}
        c_nodes = {d.node: d for d in c_tree.nodes}
        for node in sorted(set(b_nodes) | set(c_nodes)):
            b, c = b_nodes.get(node), c_nodes.get(node)
            if b is None or c is None:
                deltas.append(
                    DecisionDelta(
                        tree=root,
                        node=node,
                        field="present",
                        baseline=str(b is not None),
                        current=str(c is not None),
                    )
                )
            else:
                deltas.extend(_decision_deltas(root, b, c))
    return deltas


# -- rendering ---------------------------------------------------------------


def _render_decision(decision: NodeDecision, indent: str = "    ") -> str:
    runner = (
        "runner-up %+d" % decision.runner_up_delta
        if decision.runner_up_delta is not None
        else "no distinct runner-up"
    )
    line = (
        "%s%s: %s/%d -> %s u=%d cost=%d depth=%d [%s] "
        "(%d candidates, %s)"
        % (
            indent,
            decision.node,
            decision.op,
            decision.fanins,
            decision.placement,
            decision.utilization,
            decision.cost,
            decision.depth,
            ",".join(decision.placements),
            decision.candidates,
            runner,
        )
    )
    if decision.split:
        line += " [split]"
    return line


def render_explanation(
    explanation: MappingExplanation,
    node: Optional[str] = None,
    max_trees: int = 10,
) -> str:
    """The human-readable explain report (``chortle explain``)."""
    exp = explanation if node is None else explanation.filter_node(node)
    lines = [
        "explain: %s (K=%d, %s): %d LUTs, depth %d"
        % (exp.circuit, exp.k, exp.mapper, exp.luts, exp.depth)
    ]
    lines.append("")
    lines.append("area (who pays):")
    if exp.area_by_tree:
        total = sum(exp.area_by_tree.values()) or 1
        ranked = sorted(exp.area_by_tree.items(), key=lambda kv: (-kv[1], kv[0]))
        for tree, luts in ranked[:max_trees]:
            lines.append(
                "  %-32s %4d LUTs  %5.1f%%" % (tree, luts, 100.0 * luts / total)
            )
        if len(ranked) > max_trees:
            rest = sum(luts for _, luts in ranked[max_trees:])
            lines.append(
                "  %-32s %4d LUTs  %5.1f%%"
                % ("(%d more trees)" % (len(ranked) - max_trees), rest,
                   100.0 * rest / total)
            )
    else:
        lines.append("  n/a (mapper records no provenance)")
    lines.append("")
    lines.append(
        "critical-path depth attribution (sums to %d):" % exp.depth
    )
    if exp.depth_attribution:
        for tree, levels in sorted(
            exp.depth_attribution.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append("  %-32s %4d level%s" % (
                tree, levels, "" if levels == 1 else "s"))
    else:
        lines.append("  (depth 0: no LUT on any output path)")
    if exp.critical_path:
        lines.append("  path: %s" % " -> ".join(exp.critical_path))
    shown = exp.trees if node is not None else exp.trees[:max_trees]
    if shown:
        lines.append("")
        lines.append(
            "decisions%s:" % ("" if node is None else " for node %r" % node)
        )
        for tree in shown:
            lines.append(
                "  tree %s (%d LUTs, depth %d, %d nodes):"
                % (tree.root, tree.luts, tree.depth, len(tree.nodes))
            )
            for decision in tree.nodes:
                lines.append(_render_decision(decision))
        hidden = len(exp.trees) - len(shown)
        if hidden > 0:
            lines.append("  (%d more trees; use --format json for all)" % hidden)
    elif node is not None:
        lines.append("")
        lines.append("no decisions recorded for node %r" % node)
    elif not exp.trees:
        lines.append("")
        lines.append("decisions: n/a (mapper records no decisions)")
    return "\n".join(lines)
