"""Perf diffing: noise-tolerant trajectory comparison and dashboards.

Mirrors :mod:`repro.obs.qordiff` for the perf observatory: two
:class:`~repro.obs.perfrec.PerfRecord` snapshots are compared metric by
metric under explicit :class:`PerfPolicy` rules and rendered as a
markdown dashboard with the recent trend and a worker-time attribution
of the parallel phase.

Raw wall seconds are honest only on the machine that measured them, so
the gating metrics are **phase ratios** — warm/serial, warm/cold,
parallel/serial — which describe the cache and the executor rather
than the host.  Ratios still jitter (the phases are timed separately),
so every policy carries a relative-plus-absolute tolerance band, like
the QoR diff's soft metrics.  Raw per-phase seconds are classified and
shown but never gate.

When the two records were measured on different machine shapes
(cpu count / effective affinity — see
:meth:`~repro.obs.perfrec.PerfRecord.environment_key`), seconds-based
rows are skipped entirely and only the portable ratio policies gate;
the dashboard says so rather than silently comparing apples to
oranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.obs.perfrec import PHASE_NAMES, PerfHistory, PerfRecord

IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"


@dataclass(frozen=True)
class PerfPolicy:
    """How one perf metric is extracted, compared, and gated.

    ``reference`` selects a ratio metric (``phase`` seconds divided by
    ``reference`` seconds); ``reference=None`` compares raw phase
    seconds.  All metrics are lower-is-better; a change only registers
    beyond ``base * rel_tol + abs_tol``.  ``portable`` marks metrics
    that remain comparable across machine shapes (the ratios).
    """

    metric: str
    phase: str
    reference: Optional[str] = None
    rel_tol: float = 0.25
    abs_tol: float = 0.05
    gate: bool = True
    portable: bool = True

    def value(self, record: PerfRecord) -> Optional[float]:
        if self.reference is None:
            return record.phase_seconds(self.phase)
        return record.ratio(self.phase, self.reference)

    def classify(self, base: float, current: float) -> str:
        tol = abs(base) * self.rel_tol + self.abs_tol
        delta = current - base
        if delta > tol:
            return REGRESSED
        if delta < -tol:
            return IMPROVED
        return UNCHANGED


# The gating rows are exactly the regressions the ROADMAP cares about:
# a cache that stops paying for itself (warm ratios) and a parallel
# phase that falls further behind serial.  Raw seconds ride along for
# the dashboard but never gate — they are host property, not code
# property.
DEFAULT_PERF_POLICIES: Tuple[PerfPolicy, ...] = (
    PerfPolicy("warm_vs_cold", "warm_cache", "cold_cache"),
    PerfPolicy("warm_vs_serial", "warm_cache", "serial_uncached"),
    PerfPolicy("cold_vs_serial", "cold_cache", "serial_uncached"),
    PerfPolicy("parallel_vs_serial", "parallel", "serial_uncached"),
) + tuple(
    PerfPolicy(
        "%s_seconds" % name,
        name,
        rel_tol=0.50,
        abs_tol=0.25,
        gate=False,
        portable=False,
    )
    for name in PHASE_NAMES
)


@dataclass
class PerfCellDiff:
    """One metric comparison between two perf records."""

    metric: str
    baseline: float
    current: float
    status: str
    gated: bool

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    def describe(self) -> str:
        return "%s: %s %.4g -> %.4g (%+.4g)" % (
            self.metric,
            self.status,
            self.baseline,
            self.current,
            self.delta,
        )


@dataclass
class PerfDiff:
    """Every classified metric plus the context the dashboard needs."""

    cells: List[PerfCellDiff]
    baseline_summary: str = ""
    current_summary: str = ""
    env_matched: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[PerfCellDiff]:
        return [c for c in self.cells if c.status == REGRESSED]

    @property
    def improvements(self) -> List[PerfCellDiff]:
        return [c for c in self.cells if c.status == IMPROVED]

    @property
    def gate_failures(self) -> List[PerfCellDiff]:
        return [c for c in self.cells if c.status == REGRESSED and c.gated]

    def passes_gate(self) -> bool:
        return not self.gate_failures

    def to_markdown(
        self,
        history: Optional[PerfHistory] = None,
        current: Optional[PerfRecord] = None,
    ) -> str:
        """The perf dashboard: verdict, per-metric table, trend, attribution."""
        lines = ["# Perf diff"]
        lines.append("")
        lines.append("- baseline: %s" % (self.baseline_summary or "?"))
        lines.append("- current:  %s" % (self.current_summary or "?"))
        for note in self.notes:
            lines.append("- note: %s" % note)
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        lines.append("")
        lines.append(
            "**%d regressed / %d improved / %d unchanged** across %d metric "
            "comparisons.  Gate: **%s**."
            % (
                n_reg,
                n_imp,
                len(self.cells) - n_reg - n_imp,
                len(self.cells),
                "PASS" if self.passes_gate() else "FAIL",
            )
        )
        lines.append("")
        lines.append("| metric | baseline | current | delta | status | gates |")
        lines.append("|---|---|---|---|---|---|")
        for cell in self.cells:
            lines.append(
                "| %s | %.4g | %.4g | %+.4g | %s | %s |"
                % (
                    cell.metric,
                    cell.baseline,
                    cell.current,
                    cell.delta,
                    cell.status,
                    "yes" if cell.gated else "no",
                )
            )
        if current is not None:
            attribution = parallel_attribution(current)
            if attribution:
                lines.append("")
                lines.append("## Parallel phase attribution")
                lines.append("")
                lines.extend("- %s" % line for line in attribution)
        if history is not None and history.records:
            lines.append("")
            lines.append(render_trend(history))
        lines.append("")
        return "\n".join(lines)


def _extra_phase_policies(
    baseline: PerfRecord,
    current: PerfRecord,
    known: Sequence[PerfPolicy],
) -> Tuple[PerfPolicy, ...]:
    """Non-gating seconds rows for phase names the static policies miss.

    The bench-perf harness grows phase names over time (the process
    executor's jobs x pool-reuse matrix legs, for instance); records in
    a committed ``perf_history.json`` predate them.  New names get
    informational seconds rows when both records carry them, and are
    simply skipped — never treated as regressions — when one side lacks
    them, so extending the harness never invalidates existing history.
    """
    covered = {policy.phase for policy in known}
    shared = set(baseline.phases) & set(current.phases)
    return tuple(
        PerfPolicy(
            "%s_seconds" % name,
            name,
            rel_tol=0.50,
            abs_tol=0.25,
            gate=False,
            portable=False,
        )
        for name in sorted(shared - covered)
    )


def diff_perf_records(
    baseline: PerfRecord,
    current: PerfRecord,
    policies: Sequence[PerfPolicy] = DEFAULT_PERF_POLICIES,
) -> PerfDiff:
    """Classify every shared metric of two perf records under the policies.

    Phases only one record knows (older or newer harness versions) are
    skipped; phases both records carry but no static policy covers get
    non-gating seconds rows via :func:`_extra_phase_policies`.
    """
    policies = tuple(policies) + _extra_phase_policies(
        baseline, current, policies
    )
    env_matched = baseline.environment_key() == current.environment_key()
    diff = PerfDiff(
        cells=[],
        baseline_summary=baseline.describe(),
        current_summary=current.describe(),
        env_matched=env_matched,
    )
    if not env_matched:
        diff.notes.append(
            "environments differ (baseline cpus %s/%s, current cpus %s/%s): "
            "raw seconds are not comparable; only phase ratios are shown "
            "and gated"
            % (
                baseline.environment.get("cpu_affinity", "?"),
                baseline.environment.get("cpu_count", "?"),
                current.environment.get("cpu_affinity", "?"),
                current.environment.get("cpu_count", "?"),
            )
        )
    for policy in policies:
        if not env_matched and not policy.portable:
            continue
        base_value = policy.value(baseline)
        cur_value = policy.value(current)
        if base_value is None or cur_value is None:
            continue
        diff.cells.append(
            PerfCellDiff(
                metric=policy.metric,
                baseline=base_value,
                current=cur_value,
                status=policy.classify(base_value, cur_value),
                gated=policy.gate,
            )
        )
    return diff


def parallel_attribution(record: PerfRecord) -> List[str]:
    """Explain the parallel phase's speedup from its worker telemetry.

    Returns human-readable lines attributing worker time into the
    compute / queue-wait / serialization buckets and naming the
    dominant reason the measured speedup is what it is — the
    data-driven answer to "why is jobs=2 at 0.96x".
    """
    phase = record.phases.get("parallel")
    if not phase:
        return []
    seconds = record.phase_seconds("parallel")
    serial = record.phase_seconds("serial_uncached")
    jobs = int(phase.get("jobs", 0) or 0)
    speedup = record.ratio("serial_uncached", "parallel")  # serial/parallel
    lines: List[str] = []
    if seconds is not None and serial is not None and speedup is not None:
        lines.append(
            "parallel wall %.3fs at jobs=%d vs %.3fs serial: %.2fx"
            % (seconds, jobs, serial, speedup)
        )
    workers = phase.get("workers")
    if not isinstance(workers, dict):
        return lines
    compute = float(workers.get("compute_seconds", 0.0) or 0.0)
    queue_wait = float(workers.get("queue_wait_seconds", 0.0) or 0.0)
    pickle_bytes = int(workers.get("pickle_bytes", 0) or 0)
    tasks = int(workers.get("tasks", 0) or 0)
    lines.append(
        "worker buckets over %d tasks: %.3fs compute, %.3fs queue wait, "
        "%d bytes of pickled payloads (%s executor)"
        % (
            tasks,
            compute,
            queue_wait,
            pickle_bytes,
            workers.get("executor", "?"),
        )
    )
    cores = record.environment.get("cpu_affinity")
    if cores is None:
        cores = record.environment.get("cpu_count")
    if isinstance(cores, int) and jobs > cores:
        lines.append(
            "verdict: jobs=%d exceeds the %d schedulable core(s) — workers "
            "time-slice the same core, so fan-out adds queue wait and "
            "scheduling overhead without adding compute bandwidth; "
            "parallel <= 1.0x is the expected outcome on this host"
            % (jobs, cores)
        )
    elif compute > 0 and queue_wait > 0.5 * compute:
        lines.append(
            "verdict: queue wait is %.0f%% of compute — workers are starved "
            "waiting for tasks (or the GIL); raise chunk sizes or switch "
            "executors" % (100.0 * queue_wait / compute)
        )
    elif pickle_bytes > 0 and seconds is not None and serial is not None:
        lines.append(
            "verdict: %d bytes pickled across %d tasks — serialization is "
            "the overhead to amortize (fork-once or shared-memory workers)"
            % (pickle_bytes, tasks)
        )
    else:
        lines.append(
            "verdict: compute-bound; speedup is bounded by per-tree work "
            "imbalance across workers"
        )
    return lines


def render_trend(history: PerfHistory, limit: int = 10) -> str:
    """The recent trajectory as a markdown table (newest last)."""
    lines = ["## Perf trend (last %d records)" % min(limit, len(history.records))]
    lines.append("")
    lines.append(
        "| created_at | sha | cpus | quick | serial s | cold x | warm x "
        "| parallel x |"
    )
    lines.append("|---|---|---|---|---|---|---|---|")
    for record in history.records[-limit:]:

        def speed(name: str, rec: PerfRecord = record) -> str:
            ratio = rec.ratio(name)
            return "%.2f" % (1.0 / ratio) if ratio else "-"

        serial = record.phase_seconds("serial_uncached")
        lines.append(
            "| %s | %s | %s/%s | %s | %s | %s | %s | %s |"
            % (
                record.created_at or "?",
                str(record.environment.get("git_sha", "?"))[:12],
                record.environment.get("cpu_affinity", "?"),
                record.environment.get("cpu_count", "?"),
                "yes" if record.quick else "no",
                "%.2f" % serial if serial is not None else "-",
                speed("cold_cache"),
                speed("warm_cache"),
                speed("parallel"),
            )
        )
    return "\n".join(lines)
