"""Progress streaming: per-cell heartbeat events for long sweeps.

A benchmark sweep or perf trajectory is minutes of silence unless
something reports progress.  :class:`ProgressEmitter` is that
something: the suite runner and ``bench-perf`` hand it one
``cell_started`` / ``cell_finished`` pair per (circuit, K, mapper)
cell, and it emits structured :class:`ProgressEvent` records —
rendered as single-line heartbeats on a stream (``--progress``),
forwarded to an optional callback, and/or appended as JSON lines.

The callback/JSONL paths are the streaming substrate the ROADMAP's
mapping-as-a-service item needs: a server can hand ``run_suite`` an
emitter whose callback pushes each event to the requesting client, with
no coupling to how the suite is executed (serial cells emit both
``started`` and ``finished``; process-parallel cells emit ``finished``
as results arrive, since worker processes cannot call back mid-cell).

ETA is the classic remaining-work estimate: mean seconds per finished
cell times cells outstanding.  Events also land in the metrics
registry (``progress.cells_started`` / ``progress.cells_finished``),
so even a sweep run without an emitter can be checked for liveness.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TextIO

from repro.obs.metrics import metrics

STARTED = "started"
FINISHED = "finished"


@dataclass
class ProgressEvent:
    """One heartbeat: a cell starting or finishing inside a sweep."""

    kind: str  # STARTED | FINISHED
    circuit: str
    k: int
    mapper: str
    phase: str  # "" outside bench-perf; the phase name inside it
    finished: int  # cells finished so far (including this one if FINISHED)
    total: int
    elapsed_seconds: float
    seconds: Optional[float] = None  # this cell's duration (FINISHED only)
    eta_seconds: Optional[float] = None

    def cell(self) -> str:
        return "%s K=%d %s" % (self.circuit, self.k, self.mapper)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "circuit": self.circuit,
            "k": self.k,
            "mapper": self.mapper,
            "phase": self.phase,
            "finished": self.finished,
            "total": self.total,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "seconds": None if self.seconds is None else round(self.seconds, 4),
            "eta_seconds": (
                None if self.eta_seconds is None else round(self.eta_seconds, 1)
            ),
        }

    def render(self) -> str:
        """The human-readable heartbeat line."""
        if self.kind == STARTED:
            return "[progress] %d/%d %s%s ..." % (
                self.finished,
                self.total,
                self.cell(),
                " (%s)" % self.phase if self.phase else "",
            )
        eta = (
            " eta %.1fs" % self.eta_seconds
            if self.eta_seconds is not None
            else ""
        )
        return "[progress] %d/%d %s%s done in %.2fs, elapsed %.1fs%s" % (
            self.finished,
            self.total,
            self.cell(),
            " (%s)" % self.phase if self.phase else "",
            self.seconds if self.seconds is not None else 0.0,
            self.elapsed_seconds,
            eta,
        )


class ProgressEmitter:
    """Turns cell start/finish notifications into heartbeat events.

    ``total`` is the number of cells expected (ETA needs it; pass 0 if
    unknown and no ETA is computed).  ``stream`` receives one rendered
    line per event (``None`` silences it); ``callback`` receives every
    :class:`ProgressEvent` object; ``json_stream`` receives one JSON
    line per event.  All three sinks are independent.  Thread-safe:
    parallel sweeps finish cells from pool threads.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        callback: Optional[Callable[[ProgressEvent], None]] = None,
        json_stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self._stream = stream
        self._callback = callback
        self._json_stream = json_stream
        self._lock = threading.Lock()
        self._started_at = time.perf_counter()
        self._finished = 0
        self._finished_seconds = 0.0
        self.events: int = 0

    @classmethod
    def to_stderr(cls, total: int) -> "ProgressEmitter":
        """The CLI ``--progress`` emitter: heartbeat lines on stderr."""
        return cls(total, stream=sys.stderr)

    def _emit(self, event: ProgressEvent) -> None:
        self.events += 1
        if self._stream is not None:
            print(event.render(), file=self._stream, flush=True)
        if self._json_stream is not None:
            self._json_stream.write(json.dumps(event.to_dict(), sort_keys=True))
            self._json_stream.write("\n")
            self._json_stream.flush()
        if self._callback is not None:
            self._callback(event)

    def _eta(self) -> Optional[float]:
        """Mean seconds per finished cell times the cells outstanding."""
        if not self._finished or self.total <= 0:
            return None
        remaining = self.total - self._finished
        if remaining <= 0:
            return 0.0
        return self._finished_seconds / self._finished * remaining

    def cell_started(
        self, circuit: str, k: int, mapper: str, phase: str = ""
    ) -> None:
        metrics.count("progress.cells_started")
        with self._lock:
            event = ProgressEvent(
                kind=STARTED,
                circuit=circuit,
                k=k,
                mapper=mapper,
                phase=phase,
                finished=self._finished,
                total=self.total,
                elapsed_seconds=time.perf_counter() - self._started_at,
            )
            self._emit(event)

    def cell_finished(
        self,
        circuit: str,
        k: int,
        mapper: str,
        seconds: float,
        phase: str = "",
    ) -> None:
        metrics.count("progress.cells_finished")
        with self._lock:
            self._finished += 1
            self._finished_seconds += seconds
            event = ProgressEvent(
                kind=FINISHED,
                circuit=circuit,
                k=k,
                mapper=mapper,
                phase=phase,
                finished=self._finished,
                total=self.total,
                elapsed_seconds=time.perf_counter() - self._started_at,
                seconds=seconds,
                eta_seconds=self._eta(),
            )
            self._emit(event)

    @property
    def finished(self) -> int:
        return self._finished


def resolve_progress(
    progress: object, total: int
) -> Optional[ProgressEmitter]:
    """Normalize a user-facing progress option.

    Accepts ``None``/``False`` (no progress), ``True`` (heartbeat lines
    on stderr), or an explicit :class:`ProgressEmitter` — mirroring how
    ``resolve_cache`` treats the cache option.  A fresh emitter gets
    ``total``; an explicit one keeps whatever total it was built with
    unless it was constructed with 0, in which case the runner's count
    is filled in.
    """
    if progress is None or progress is False:
        return None
    if progress is True:
        return ProgressEmitter.to_stderr(total)
    if isinstance(progress, ProgressEmitter):
        if progress.total <= 0:
            progress.total = total
        return progress
    raise TypeError(
        "progress must be None, bool, or ProgressEmitter, got %r"
        % type(progress).__name__
    )
