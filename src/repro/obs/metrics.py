"""Process-wide mapper metrics: counters, gauges, and histograms.

The registry is a plain in-process aggregation point the instrumented
passes write into::

    from repro.obs import metrics

    metrics.count("chortle.minmap_entries", entries)
    metrics.gauge("sweep.nodes_out", len(net))
    metrics.observe("chortle.tree_size", tree.num_nodes)

Counters are monotonically increasing integers; gauges hold the last
value written; histograms keep O(1) running aggregates (count / sum /
min / max), not the raw samples.  Everything is cheap enough to leave
enabled unconditionally — the hot DP accumulates locally and writes one
counter update per node table, so the cost is a few dict operations per
mapped node.

``snapshot()`` returns a plain-dict view suitable for JSON export, and
``counter_delta(before)`` diffs two snapshots so a harness can attribute
counts to a single run without resetting global state under other
callers.  The catalogue of names used by this repository is documented
in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class HistogramStat:
    """Running aggregate of observed values (no raw sample storage)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }


class MetricsRegistry:
    """Counter/gauge/histogram registry; one process-wide instance below."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramStat] = {}
        # Writers run on parallel-mapping worker threads too; the
        # read-modify-write updates need the lock to avoid lost counts.
        self._lock = threading.Lock()

    # -- writers -----------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        with self._lock:
            stat = self._histograms.get(name)
            if stat is None:
                stat = self._histograms[name] = HistogramStat()
            stat.observe(value)

    # -- readers -----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[HistogramStat]:
        return self._histograms.get(name)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def snapshot(self) -> dict:
        """Plain-dict view of the whole registry (JSON-serializable)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: stat.to_dict() for name, stat in self._histograms.items()
            },
        }

    def counter_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since ``before`` (a ``counters()`` result).

        Only nonzero deltas are reported, so the result attributes work
        to the region between the two observations.
        """
        delta: Dict[str, int] = {}
        for name, value in self._counters.items():
            diff = value - before.get(name, 0)
            if diff:
                delta[name] = diff
        return delta

    def reset(self) -> None:
        """Clear all counters, gauges, and histograms."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry used by the instrumented passes."""
    return metrics
