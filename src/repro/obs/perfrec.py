"""Persistent perf records: the durable half of the perf observatory.

The QoR observatory keeps versioned run records, a committed baseline,
and a diff gate; until this module, the perf trajectory had none of
that — ``BENCH_perf.json`` was a one-shot snapshot.  A
:class:`PerfRecord` freezes one ``bench-perf`` trajectory (the four
phase wall clocks, cache and worker telemetry, config) together with
the environment block that determines whether two measurements are
comparable at all: git sha, python, platform, ``os.cpu_count()``, and
the *effective* CPU affinity — on a containerized runner the two core
counts routinely differ, and a jobs=2 measurement taken on one
schedulable core measures overhead, not scaling.

Records accumulate in an append-only :class:`PerfHistory` file
(``benchmarks/baselines/perf_history.json`` is the committed one), so
the trajectory across commits is diffable and trendable:
:mod:`repro.obs.perfdiff` classifies a fresh record against the
history's best-matching baseline and renders the markdown dashboard
behind ``chortle perf record|diff|gate``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import PerfError
from repro.obs.qor import collect_environment

SCHEMA_VERSION = 1

#: The bench-perf phases every record carries, in trajectory order.
PHASE_NAMES: Tuple[str, ...] = (
    "serial_uncached",
    "cold_cache",
    "warm_cache",
    "parallel",
)


def effective_affinity() -> Optional[int]:
    """Cores this process may actually run on (None where unsupported)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return None  # pragma: no cover - macOS/Windows


def collect_perf_environment(cwd: Optional[str] = None) -> Dict[str, object]:
    """The QoR environment block plus the CPU topology perf depends on."""
    env: Dict[str, object] = dict(collect_environment(cwd))
    env["cpu_count"] = os.cpu_count()
    env["cpu_affinity"] = effective_affinity()
    return env


@dataclass
class PerfRecord:
    """One measured perf trajectory plus the context to compare it later.

    ``phases`` maps each :data:`PHASE_NAMES` entry to the phase dict the
    bench-perf harness produced (``seconds``, ``speedup_vs_serial``,
    ``jobs``, ``cache``, ``workers``).  ``created_at`` is caller-supplied
    (ISO-8601 by convention) so records stay reproducible.
    """

    created_at: str
    environment: Dict[str, object]
    config: Dict[str, object]
    phases: Dict[str, Dict[str, object]]
    label: str = ""
    quick: bool = False
    schema_version: int = SCHEMA_VERSION

    # -- derived metrics -----------------------------------------------------

    def phase_seconds(self, name: str) -> Optional[float]:
        phase = self.phases.get(name)
        if phase is None:
            return None
        seconds = phase.get("seconds")
        return float(seconds) if isinstance(seconds, (int, float)) else None

    def ratio(self, phase: str, reference: str = "serial_uncached") -> Optional[float]:
        """``phase`` wall seconds as a fraction of ``reference``'s.

        Ratios survive machine changes far better than raw seconds —
        warm/serial is a property of the cache, not the host — so the
        diff engine gates on them.  Lower is better.
        """
        num = self.phase_seconds(phase)
        den = self.phase_seconds(reference)
        if num is None or den is None or den <= 0:
            return None
        return num / den

    def environment_key(self) -> Tuple[object, ...]:
        """The machine-shape key two comparable records must share."""
        return (
            self.environment.get("cpu_count"),
            self.environment.get("cpu_affinity"),
        )

    def describe(self) -> str:
        sha = str(self.environment.get("git_sha", "unknown"))
        label = self.label or "(unlabeled)"
        return "%s @ %s (%s, cpus=%s/%s%s)" % (
            label,
            self.created_at or "?",
            sha[:12],
            self.environment.get("cpu_affinity", "?"),
            self.environment.get("cpu_count", "?"),
            ", quick" if self.quick else "",
        )

    # -- construction / serialization ---------------------------------------

    @classmethod
    def from_bench(cls, payload: Mapping, label: str = "") -> "PerfRecord":
        """Freeze one ``run_bench_perf`` payload into a record."""
        phases = payload.get("phases")
        if not isinstance(phases, Mapping):
            raise PerfError("bench-perf payload has no 'phases' block")
        return cls(
            created_at=str(payload.get("created_at", "")),
            environment=dict(payload.get("environment") or {}),
            config=dict(payload.get("config") or {}),
            phases={str(k): dict(v) for k, v in phases.items()},
            label=label,
            quick=bool(payload.get("quick", False)),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "label": self.label,
            "quick": self.quick,
            "environment": dict(self.environment),
            "config": dict(self.config),
            "phases": {name: dict(p) for name, p in self.phases.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PerfRecord":
        if not isinstance(data, Mapping):
            raise PerfError(
                "perf record must be a JSON object, got %s" % type(data).__name__
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise PerfError(
                "unsupported perf-record schema version %r (this build reads "
                "version %d)" % (version, SCHEMA_VERSION)
            )
        phases = data.get("phases")
        if not isinstance(phases, Mapping):
            raise PerfError("perf record has no 'phases' object")
        return cls(
            created_at=str(data.get("created_at", "")),
            environment=dict(data.get("environment") or {}),
            config=dict(data.get("config") or {}),
            phases={str(k): dict(v) for k, v in phases.items()},
            label=str(data.get("label", "")),
            quick=bool(data.get("quick", False)),
        )

    def save(self, path: str) -> None:
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            raise PerfError(
                "cannot write perf record %r: %s" % (path, exc)
            ) from exc

    @classmethod
    def load(cls, path: str) -> "PerfRecord":
        """Load a record file — a saved record *or* a raw bench payload.

        ``BENCH_perf.json``-shaped payloads (keyed ``schema`` rather
        than ``schema_version``) are accepted and converted, so every
        perf artifact the repo produces is a valid diff input.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise PerfError(
                "cannot read perf record %r: %s" % (path, exc)
            ) from exc
        except ValueError as exc:
            raise PerfError(
                "perf record %r is not valid JSON: %s" % (path, exc)
            ) from None
        if isinstance(data, Mapping) and "schema_version" not in data:
            return cls.from_bench(data)
        return cls.from_dict(data)


@dataclass
class PerfHistory:
    """An append-only sequence of perf records (oldest first)."""

    records: List[PerfRecord] = field(default_factory=list)

    def append(self, record: PerfRecord) -> None:
        self.records.append(record)

    def latest(
        self, environment_key: Optional[Tuple[object, ...]] = None
    ) -> Optional[PerfRecord]:
        """The newest record, optionally restricted to a machine shape."""
        for record in reversed(self.records):
            if (
                environment_key is None
                or record.environment_key() == environment_key
            ):
                return record
        return None

    def baseline_for(self, current: PerfRecord) -> Tuple[Optional[PerfRecord], bool]:
        """The baseline to diff ``current`` against: ``(record, env_matched)``.

        Prefers the newest record measured on the same machine shape
        (cpu count + affinity); falls back to the newest record overall
        — the caller is told via the flag, and the diff engine then
        gates only on machine-portable ratio metrics.
        """
        matched = self.latest(current.environment_key())
        if matched is not None:
            return matched, True
        return self.latest(), False

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PerfHistory":
        if not isinstance(data, Mapping):
            raise PerfError(
                "perf history must be a JSON object, got %s"
                % type(data).__name__
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise PerfError(
                "unsupported perf-history schema version %r (this build "
                "reads version %d)" % (version, SCHEMA_VERSION)
            )
        raw = data.get("records")
        if not isinstance(raw, list):
            raise PerfError("perf history has no 'records' list")
        return cls(records=[PerfRecord.from_dict(entry) for entry in raw])

    def save(self, path: str) -> None:
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            raise PerfError(
                "cannot write perf history %r: %s" % (path, exc)
            ) from exc

    @classmethod
    def load(cls, path: str) -> "PerfHistory":
        """Load a history file; a missing file is an empty history."""
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return cls()
        except OSError as exc:
            raise PerfError(
                "cannot read perf history %r: %s" % (path, exc)
            ) from exc
        except ValueError as exc:
            raise PerfError(
                "perf history %r is not valid JSON: %s" % (path, exc)
            ) from None
        return cls.from_dict(data)


#: Where ``chortle perf record|diff|gate`` look by default.
DEFAULT_HISTORY_PATH = "benchmarks/baselines/perf_history.json"
