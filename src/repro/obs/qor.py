"""Persistent QoR run records: the durable half of the observatory.

A :class:`RunRecord` freezes the outcome of one benchmark sweep — the
full :class:`~repro.report.MappingReport` per (circuit, K, mapper) cell,
including the per-stage timings, counter deltas, and per-tree LUT
provenance the tracer attributes to each run — together with enough
environment metadata (git sha, python, platform, caller-supplied
timestamp) to interpret the numbers later.  Records round-trip through a
versioned JSON file format, so a committed baseline snapshot can be
diffed against any fresh run (see :mod:`repro.obs.qordiff`) and a CI
gate can refuse regressions.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import QorError
from repro.report import MappingReport

SCHEMA_VERSION = 1

# A cell key: one (circuit, K, mapper) combination in a sweep.
CellKey = Tuple[str, int, str]


def git_revision(cwd: Optional[str] = None) -> str:
    """The current git commit sha, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def collect_environment(cwd: Optional[str] = None) -> Dict[str, str]:
    """Environment metadata stamped into every record."""
    return {
        "git_sha": git_revision(cwd),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "platform": platform.platform(),
    }


@dataclass
class RunRecord:
    """One sweep's reports plus the context needed to compare them later.

    ``created_at`` is caller-supplied (an ISO-8601 string by convention)
    rather than read from the clock here, so records are reproducible and
    the harness controls the notion of "when".
    """

    reports: List[MappingReport]
    created_at: str
    environment: Dict[str, str] = field(default_factory=dict)
    label: str = ""
    schema_version: int = SCHEMA_VERSION

    def cells(self) -> Dict[CellKey, MappingReport]:
        """Reports indexed by (circuit, K, mapper).

        Duplicate cells are rejected — a sweep maps each combination
        once, and a record with two reports for one cell cannot be
        diffed meaningfully.
        """
        out: Dict[CellKey, MappingReport] = {}
        for report in self.reports:
            key = (report.circuit_name, report.k, report.mapper)
            if key in out:
                raise QorError(
                    "duplicate cell %r in run record %r" % (key, self.label)
                )
            out[key] = report
        return out

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "label": self.label,
            "environment": dict(self.environment),
            "reports": [report.to_dict() for report in self.reports],
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> RunRecord:
        if not isinstance(data, Mapping):
            raise QorError(
                "run record must be a JSON object, got %s" % type(data).__name__
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise QorError(
                "unsupported run-record schema version %r (this build reads "
                "version %d)" % (version, SCHEMA_VERSION)
            )
        raw_reports = data.get("reports")
        if not isinstance(raw_reports, list):
            raise QorError("run record has no 'reports' list")
        try:
            reports = [MappingReport.from_dict(entry) for entry in raw_reports]
        except (TypeError, ValueError, AttributeError) as exc:
            raise QorError("malformed report in run record: %s" % exc) from None
        return cls(
            reports=reports,
            created_at=str(data.get("created_at", "")),
            environment=dict(data.get("environment") or {}),
            label=str(data.get("label", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> RunRecord:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise QorError("run record is not valid JSON: %s" % exc) from None
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
                handle.write("\n")
        except OSError as exc:
            raise QorError("cannot write run record %r: %s" % (path, exc)) from exc

    @classmethod
    def load(cls, path: str) -> RunRecord:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise QorError("cannot read run record %r: %s" % (path, exc)) from exc
        return cls.from_json(text)

    def describe(self) -> str:
        """One-line summary used by the CLI and diff headers."""
        sha = self.environment.get("git_sha", "unknown")
        label = self.label or "(unlabeled)"
        return "%s @ %s (%s, %d reports)" % (
            label,
            self.created_at or "?",
            sha[:12],
            len(self.reports),
        )
