"""QoR diffing: per-metric regression policies and markdown dashboards.

Compares two :class:`~repro.obs.qor.RunRecord` snapshots cell by cell
((circuit, K, mapper) x metric) under explicit :class:`MetricPolicy`
rules:

* **hard** metrics (LUT count, depth) — the mapper is deterministic, so
  *any* worsening is a regression and any improvement counts;
* **soft** metrics (wall time) — noisy by nature, so a change only
  registers beyond a relative-plus-absolute tolerance band
  (``base * rel_tol + abs_tol``).

Each cell/metric pair is classified ``improved`` / ``unchanged`` /
``regressed``; LUT regressions are additionally attributed to the
individual source trees that got worse, using the per-tree provenance
profile carried in each report.  The result renders as a markdown
dashboard and drives the ``chortle qor diff``/``gate`` exit status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.qor import CellKey, RunRecord

if TYPE_CHECKING:
    from repro.obs.explain import DecisionDelta, MappingExplanation

IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"


@dataclass(frozen=True)
class MetricPolicy:
    """How one report metric is compared and gated.

    ``hard`` policies treat any increase as a regression; soft policies
    tolerate noise up to ``base * rel_tol + abs_tol`` in either
    direction.  ``gate=False`` metrics are classified and shown on the
    dashboard but never fail the gate.
    """

    metric: str
    hard: bool = True
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    gate: bool = True

    def tolerance(self, base: float) -> float:
        return abs(base) * self.rel_tol + self.abs_tol

    def classify(self, base: float, current: float) -> str:
        delta = current - base
        if self.hard:
            if delta > 0:
                return REGRESSED
            if delta < 0:
                return IMPROVED
            return UNCHANGED
        tol = self.tolerance(base)
        if delta > tol:
            return REGRESSED
        if delta < -tol:
            return IMPROVED
        return UNCHANGED


# LUT count and depth regress hard; wall time only beyond 50% + 250ms of
# noise headroom.  Shared CI runners routinely jitter individual sub-second
# cells by 1.5x, so the band is wide; a genuine systematic slowdown (2x on
# the multi-second circuits) still fails the gate.
DEFAULT_POLICIES: Tuple[MetricPolicy, ...] = (
    MetricPolicy("luts", hard=True),
    MetricPolicy("depth", hard=True),
    MetricPolicy("seconds", hard=False, rel_tol=0.50, abs_tol=0.25),
    # Whole-cell wall clock (mapping + verify + report assembly): shown on
    # the dashboard but non-gating — the gating runtime signal stays the
    # mapper-only `seconds`.  Skipped automatically against baselines
    # recorded before the field existed.
    MetricPolicy("wall_seconds", hard=False, rel_tol=0.50, abs_tol=0.25,
                 gate=False),
)


@dataclass
class TreeDelta:
    """One source tree whose cost-counted LUTs changed between runs."""

    tree: str
    baseline: int
    current: int

    @property
    def delta(self) -> int:
        return self.current - self.baseline


@dataclass
class CellDiff:
    """One (circuit, K, mapper, metric) comparison."""

    circuit: str
    k: int
    mapper: str
    metric: str
    baseline: float
    current: float
    status: str
    gated: bool
    tree_deltas: List[TreeDelta] = field(default_factory=list)
    # Decision-level drill-down: the individual DP choices that changed
    # inside the worsened trees (filled by attach_decision_drilldown
    # when explanations are on hand).
    decision_deltas: List[DecisionDelta] = field(default_factory=list)

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    def cell_name(self) -> str:
        return "(%s, K=%d, %s, %s)" % (self.circuit, self.k, self.mapper, self.metric)

    def describe(self) -> str:
        line = "%s: %s %g -> %g (%+g)" % (
            self.cell_name(),
            self.status,
            self.baseline,
            self.current,
            self.delta,
        )
        worse = [t for t in self.tree_deltas if t.delta > 0]
        if worse:
            line += " [worse trees: %s]" % ", ".join(
                "%s %d->%d" % (t.tree, t.baseline, t.current) for t in worse[:5]
            )
        return line


def _tree_deltas(
    base: Optional[Dict[str, int]], cur: Optional[Dict[str, int]]
) -> List[TreeDelta]:
    """Per-tree LUT changes, worst first (provenance-carrying runs only)."""
    if not base or not cur:
        return []
    deltas = []
    for tree in set(base) | set(cur):
        b, c = base.get(tree, 0), cur.get(tree, 0)
        if b != c:
            deltas.append(TreeDelta(tree=tree, baseline=b, current=c))
    deltas.sort(key=lambda t: (-t.delta, t.tree))
    return deltas


@dataclass
class QorDiff:
    """Every classified cell plus suite-membership changes."""

    cells: List[CellDiff]
    added: List[CellKey] = field(default_factory=list)
    removed: List[CellKey] = field(default_factory=list)
    baseline_summary: str = ""
    current_summary: str = ""

    @property
    def regressions(self) -> List[CellDiff]:
        return [c for c in self.cells if c.status == REGRESSED]

    @property
    def improvements(self) -> List[CellDiff]:
        return [c for c in self.cells if c.status == IMPROVED]

    @property
    def gate_failures(self) -> List[CellDiff]:
        return [c for c in self.cells if c.status == REGRESSED and c.gated]

    def passes_gate(self) -> bool:
        """True when nothing gated regressed and no baseline cell vanished."""
        return not self.gate_failures and not self.removed

    def to_markdown(self) -> str:
        """Render the diff as a markdown dashboard."""
        lines = ["# QoR diff"]
        if self.baseline_summary or self.current_summary:
            lines.append("")
            lines.append("- baseline: %s" % (self.baseline_summary or "?"))
            lines.append("- current:  %s" % (self.current_summary or "?"))
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        n_unc = len(self.cells) - n_reg - n_imp
        lines.append("")
        lines.append(
            "**%d regressed / %d improved / %d unchanged** across %d "
            "cell-metric comparisons.  Gate: **%s**."
            % (
                n_reg,
                n_imp,
                n_unc,
                len(self.cells),
                "PASS" if self.passes_gate() else "FAIL",
            )
        )
        if self.removed:
            lines.append("")
            lines.append("## Cells missing from the current run")
            lines.append("")
            for circuit, k, mapper in self.removed:
                lines.append("- (%s, K=%d, %s)" % (circuit, k, mapper))
        if self.added:
            lines.append("")
            lines.append("## Cells new in the current run")
            lines.append("")
            for circuit, k, mapper in self.added:
                lines.append("- (%s, K=%d, %s)" % (circuit, k, mapper))

        def table(title: str, rows: Sequence[CellDiff]) -> None:
            lines.append("")
            lines.append("## %s" % title)
            lines.append("")
            if not rows:
                lines.append("(none)")
                return
            lines.append("| circuit | K | mapper | metric | baseline | current | delta |")
            lines.append("|---|---|---|---|---|---|---|")
            for cell in rows:
                lines.append(
                    "| %s | %d | %s | %s | %g | %g | %+g |"
                    % (
                        cell.circuit,
                        cell.k,
                        cell.mapper,
                        cell.metric,
                        cell.baseline,
                        cell.current,
                        cell.delta,
                    )
                )

        table("Regressions", self.regressions)
        culprits = [c for c in self.regressions if c.tree_deltas]
        if culprits:
            lines.append("")
            lines.append("### Worsened trees")
            lines.append("")
            for cell in culprits:
                worse = [t for t in cell.tree_deltas if t.delta > 0]
                for t in worse[:5]:
                    lines.append(
                        "- %s, K=%d, %s: tree `%s` %d -> %d LUTs (%+d)"
                        % (cell.circuit, cell.k, cell.mapper,
                           t.tree, t.baseline, t.current, t.delta)
                    )
        explained = [c for c in self.cells if c.decision_deltas]
        if explained:
            lines.append("")
            lines.append("### Changed decisions")
            lines.append("")
            for cell in explained:
                for delta in cell.decision_deltas[:10]:
                    lines.append(
                        "- %s, K=%d, %s: %s"
                        % (cell.circuit, cell.k, cell.mapper, delta.describe())
                    )
                hidden = len(cell.decision_deltas) - 10
                if hidden > 0:
                    lines.append(
                        "- %s, K=%d, %s: (%d more changed decisions)"
                        % (cell.circuit, cell.k, cell.mapper, hidden)
                    )
        table("Improvements", self.improvements)
        lines.append("")
        return "\n".join(lines)


def diff_records(
    baseline: RunRecord,
    current: RunRecord,
    policies: Sequence[MetricPolicy] = DEFAULT_POLICIES,
) -> QorDiff:
    """Classify every shared cell of two records under the policies."""
    base_cells = baseline.cells()
    cur_cells = current.cells()
    shared = sorted(set(base_cells) & set(cur_cells))
    diff = QorDiff(
        cells=[],
        added=sorted(set(cur_cells) - set(base_cells)),
        removed=sorted(set(base_cells) - set(cur_cells)),
        baseline_summary=baseline.describe(),
        current_summary=current.describe(),
    )
    for key in shared:
        circuit, k, mapper = key
        base_report = base_cells[key]
        cur_report = cur_cells[key]
        for policy in policies:
            base_value = getattr(base_report, policy.metric, None)
            cur_value = getattr(cur_report, policy.metric, None)
            if base_value is None or cur_value is None:
                continue
            status = policy.classify(base_value, cur_value)
            cell = CellDiff(
                circuit=circuit,
                k=k,
                mapper=mapper,
                metric=policy.metric,
                baseline=base_value,
                current=cur_value,
                status=status,
                gated=policy.gate,
            )
            if policy.metric == "luts" and status != UNCHANGED:
                cell.tree_deltas = _tree_deltas(
                    base_report.tree_luts, cur_report.tree_luts
                )
            diff.cells.append(cell)
    return diff


def attach_decision_drilldown(
    diff: QorDiff,
    baselines: Mapping[CellKey, "MappingExplanation"],
    currents: Mapping[CellKey, "MappingExplanation"],
) -> int:
    """Resolve worsened-tree attributions down to individual DP choices.

    ``baselines``/``currents`` map (circuit, K, mapper) cell keys to
    :class:`~repro.obs.explain.MappingExplanation` objects (from
    ``map --explain`` runs or saved explain JSON).  Every LUT cell that
    changed and has explanations on both sides gets its
    ``decision_deltas`` filled, restricted to the trees its
    ``tree_deltas`` already blamed (or every shared tree when the
    reports carried no per-tree provenance).  Returns the number of
    decision deltas attached.
    """
    from repro.obs.explain import decision_drilldown

    attached = 0
    for cell in diff.cells:
        if cell.metric != "luts" or cell.status == UNCHANGED:
            continue
        key = (cell.circuit, cell.k, cell.mapper)
        base_exp = baselines.get(key)
        cur_exp = currents.get(key)
        if base_exp is None or cur_exp is None:
            continue
        trees = [t.tree for t in cell.tree_deltas] or None
        cell.decision_deltas = decision_drilldown(base_exp, cur_exp, trees=trees)
        attached += len(cell.decision_deltas)
    return attached


def render_record(record: RunRecord) -> str:
    """Render one record as a markdown QoR table (``chortle qor report``)."""
    lines = ["# QoR record"]
    lines.append("")
    lines.append("- run: %s" % record.describe())
    for key in ("git_sha", "python", "platform"):
        value = record.environment.get(key)
        if value:
            lines.append("- %s: %s" % (key, value))
    lines.append("")
    lines.append("| circuit | K | mapper | LUTs | total | depth | seconds |")
    lines.append("|---|---|---|---|---|---|---|")
    for report in sorted(
        record.reports, key=lambda r: (r.circuit_name, r.k, r.mapper)
    ):
        lines.append(
            "| %s | %d | %s | %d | %d | %d | %s |"
            % (
                report.circuit_name,
                report.k,
                report.mapper,
                report.luts,
                report.luts_total,
                report.depth,
                "%.3f" % report.seconds if report.seconds is not None else "-",
            )
        )
    lines.append("")
    return "\n".join(lines)
