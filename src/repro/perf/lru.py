"""A small thread-safe LRU cache with metrics-registry instrumentation.

This is the storage primitive under the structural memo cache
(:mod:`repro.perf.memo`): a bounded mapping with least-recently-used
eviction whose hit/miss/eviction counts are written straight into the
process-wide metrics registry (:mod:`repro.obs.metrics`), so cache
behaviour shows up in ``chortle profile`` and in benchmark exports
without any extra plumbing.

The lock makes ``get``/``put`` safe from the worker threads of a
parallel mapping run; the critical sections are a couple of dict
operations, so contention is negligible next to the DP work the cache
is saving.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro.obs import metrics


class LruCache:
    """Bounded LRU mapping; counts hits/misses/evictions under ``name``.

    ``name`` is the metrics prefix: a cache named ``perf.cache`` emits
    ``perf.cache.hits``, ``perf.cache.misses``, and
    ``perf.cache.evictions`` counters.  ``maxsize=None`` disables
    eviction (unbounded).
    """

    def __init__(self, maxsize: Optional[int] = 65536, name: str = "perf.cache"):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive or None, got %r" % maxsize)
        self.maxsize = maxsize
        self.name = name
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (refreshing recency), or ``default``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                metrics.count(self.name + ".misses")
                return default
            self._data.move_to_end(key)
            self._hits += 1
            metrics.count(self.name + ".hits")
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``; evicts the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self.maxsize is not None:
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
                    metrics.count(self.name + ".evictions")

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # -- introspection -------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of the cache's effectiveness."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def items_snapshot(self):
        """A point-in-time copy of the cache contents (for persistence)."""
        with self._lock:
            return list(self._data.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LruCache %s size=%d hits=%d misses=%d>" % (
            self.name,
            len(self._data),
            self._hits,
            self._misses,
        )
