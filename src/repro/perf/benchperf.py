"""Measured perf trajectory: the harness behind ``chortle bench-perf``.

Times the Table 1-4 suite through the chortle engine in four phases —

* ``serial_uncached`` — the reference configuration: one cell at a time,
  no memo cache.  Every other phase's ``speedup_vs_serial`` is measured
  against this wall clock.
* ``cold_cache``      — same sweep with a fresh structural node-table
  cache (:class:`~repro.perf.memo.NodeTableCache`).  Pays the misses,
  but repeated tree shapes within the sweep already hit.
* ``warm_cache``      — the sweep again on the now-populated cache.
* ``parallel``        — uncached, with ``jobs`` worker threads mapping
  forest trees concurrently inside each cell.

Every phase must produce *identical* QoR (LUTs / counted LUTs / depth
per cell) — the harness cross-checks and reports ``qor_identical``; a
mismatch fails the gate, because a cache or a thread pool that changes
results is a correctness bug, not a performance feature.

The gate additionally requires the warm-cache phase to not be slower
than the cold phase beyond a noise tolerance — the regression mode a
broken cache exhibits first (all misses plus lookup overhead).  CI runs
``chortle bench-perf --quick --gate`` on every push; the committed
``BENCH_perf.json`` at the repository root is a full-suite run.

Phase wall clocks are wrapped in ``bench.perf_phase`` tracer spans and
the cache counters land in the metrics registry (``perf.cache.*``), so
the trajectory is visible through the standard observability surface.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.mcnc import TABLE_CIRCUITS, mcnc_circuit
from repro.bench.runner import mapper_factory, run_one_cell
from repro.network.network import BooleanNetwork
from repro.obs import metrics, span
from repro.obs.perfrec import collect_perf_environment, effective_affinity
from repro.obs.progress import ProgressEmitter, resolve_progress
from repro.perf.memo import NodeTableCache
from repro.perf.parallel import worker_buckets

#: Bump when the result layout changes.
SCHEMA = 1

#: The ``--quick`` subset: small enough for a CI smoke job, repetitive
#: enough (shared tree shapes across circuits and K values) that the
#: warm-cache phase meaningfully exercises the memo.
QUICK_CIRCUITS: Tuple[str, ...] = ("9symml", "alu2", "count", "frg1")
QUICK_KS: Tuple[int, ...] = (3, 4)

#: Warm may be at most this fraction slower than cold before the gate
#: fails (timer noise on loaded CI machines; a healthy warm phase is
#: dramatically *faster*).
DEFAULT_WARM_TOLERANCE = 0.20


def _run_phase(
    name: str,
    cells: Sequence[Tuple[BooleanNetwork, int, str]],
    cache: Optional[NodeTableCache],
    jobs: int,
    progress: Optional[ProgressEmitter] = None,
) -> Tuple[dict, List[list]]:
    """Run every cell once; returns (phase record, per-cell QoR rows)."""
    counters_before = metrics.counters()
    qor: List[list] = []
    started = time.perf_counter()
    with span("bench.perf_phase", phase=name, cells=len(cells), jobs=jobs):
        for net, k, mapper_name in cells:
            if progress is not None:
                progress.cell_started(net.name, k, mapper_name, phase=name)
            cell_started = time.perf_counter()
            report = run_one_cell(
                net,
                k,
                mapper_name,
                cache=cache,
                mapper_opts={"jobs": jobs} if jobs > 1 else None,
            )
            if progress is not None:
                progress.cell_finished(
                    net.name,
                    k,
                    mapper_name,
                    seconds=time.perf_counter() - cell_started,
                    phase=name,
                )
            qor.append(
                [net.name, k, mapper_name, report.luts, report.luts_total,
                 report.depth]
            )
    seconds = time.perf_counter() - started
    delta = metrics.counter_delta(counters_before)
    record = {
        "seconds": round(seconds, 4),
        "jobs": jobs,
        "cached": cache is not None,
        "cache": None,
    }
    if cache is not None:
        hits = delta.get(cache.name + ".hits", 0)
        misses = delta.get(cache.name + ".misses", 0)
        record["cache"] = {
            "hits": hits,
            "misses": misses,
            "evictions": delta.get(cache.name + ".evictions", 0),
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses
            else 0.0,
            "size": len(cache),
        }
    if jobs > 1:
        # Attribute the phase's worker time: compute vs queue wait vs
        # serialized payload bytes (zero for thread workers), straight
        # from the perf.parallel.* counter delta.
        record["workers"] = worker_buckets(delta, jobs=jobs, executor="thread")
    return record, qor


def run_bench_perf(
    circuits: Optional[Sequence[str]] = None,
    ks: Optional[Sequence[int]] = None,
    mappers: Sequence[str] = ("chortle",),
    jobs: int = 2,
    quick: bool = False,
    created_at: str = "",
    warm_tolerance: Optional[float] = None,
    cache_dir: Optional[str] = None,
    progress: object = False,
) -> dict:
    """Measure the perf trajectory; returns the ``BENCH_perf.json`` payload.

    ``circuits`` / ``ks`` default to the full Table 1-4 suite (or the
    CI-sized ``--quick`` subset when ``quick`` is set).  ``jobs`` sizes
    the parallel phase's thread pool.  When ``cache_dir`` is given, the
    warm cache is additionally saved to disk there and immediately
    re-loaded into a fresh cache, recording the round trip.  ``progress``
    takes ``True`` (heartbeat lines on stderr) or a
    :class:`~repro.obs.progress.ProgressEmitter` for per-cell
    started/finished/ETA events across all four phases.

    The returned payload carries a ``gate`` block; callers that want a
    pass/fail exit check ``gate["pass"]``.
    """
    if warm_tolerance is None:
        warm_tolerance = DEFAULT_WARM_TOLERANCE
    if circuits is None:
        circuits = QUICK_CIRCUITS if quick else TABLE_CIRCUITS
    if ks is None:
        ks = QUICK_KS if quick else (2, 3, 4, 5)
    for name in mappers:
        mapper_factory(name)  # fail fast, before any timing
    networks = [mcnc_circuit(str(name)) for name in circuits]
    cells: List[Tuple[BooleanNetwork, int, str]] = [
        (net, k, mapper_name)
        for net in networks
        for k in ks
        for mapper_name in mappers
    ]

    cache = NodeTableCache()
    phase_specs = [
        ("serial_uncached", None, 1),
        ("cold_cache", cache, 1),
        ("warm_cache", cache, 1),
        ("parallel", None, max(2, jobs)),
    ]
    emitter = resolve_progress(progress, total=len(cells) * len(phase_specs))
    phases: Dict[str, dict] = {}
    qor_by_phase: Dict[str, List[list]] = {}
    for name, phase_cache, phase_jobs in phase_specs:
        record, qor = _run_phase(
            name, cells, phase_cache, phase_jobs, progress=emitter
        )
        phases[name] = record
        qor_by_phase[name] = qor

    serial_seconds = phases["serial_uncached"]["seconds"]
    for record in phases.values():
        record["speedup_vs_serial"] = (
            round(serial_seconds / record["seconds"], 3)
            if record["seconds"] > 0
            else None
        )

    reference = qor_by_phase["serial_uncached"]
    mismatches = []
    for name, qor in qor_by_phase.items():
        for ref_row, row in zip(reference, qor):
            if ref_row != row:
                mismatches.append({"phase": name, "expected": ref_row,
                                   "got": row})
    qor_identical = not mismatches

    disk = None
    if cache_dir:
        path = cache.save_disk(cache_dir)
        reloaded = NodeTableCache(name="perf.cache.reload")
        loaded = reloaded.load_disk(cache_dir)
        disk = {
            "path": path,
            "entries_saved": len(cache),
            "entries_loaded": loaded,
            "round_trip_ok": loaded == len(cache),
        }

    warm = phases["warm_cache"]["seconds"]
    cold = phases["cold_cache"]["seconds"]
    warm_ok = warm <= cold * (1.0 + warm_tolerance)
    gate = {
        "warm_tolerance": warm_tolerance,
        "warm_not_slower_than_cold": warm_ok,
        "qor_identical": qor_identical,
        "pass": warm_ok and qor_identical,
    }

    result = {
        "schema": SCHEMA,
        "created_at": created_at,
        "quick": quick,
        "config": {
            "circuits": [net.name for net in networks],
            "ks": list(ks),
            "mappers": list(mappers),
            "jobs": max(2, jobs),
            "cpu_count": os.cpu_count(),
            "cpu_affinity": effective_affinity(),
        },
        "environment": collect_perf_environment(),
        "cells": len(cells),
        "phases": phases,
        "qor_identical": qor_identical,
        "gate": gate,
    }
    if mismatches:
        result["qor_mismatches"] = mismatches[:20]
    if disk is not None:
        result["disk_cache"] = disk
    return result


def render_bench_perf(result: dict) -> str:
    """A small human-readable summary of one bench-perf payload."""
    lines = [
        "bench-perf: %d cells (%s; K in %s)"
        % (
            result["cells"],
            ", ".join(result["config"]["circuits"]),
            result["config"]["ks"],
        )
    ]
    for name in ("serial_uncached", "cold_cache", "warm_cache", "parallel"):
        phase = result["phases"][name]
        extra = ""
        if phase.get("cache"):
            extra = "  (cache: %d hits / %d misses, %.0f%% hit rate)" % (
                phase["cache"]["hits"],
                phase["cache"]["misses"],
                100.0 * phase["cache"]["hit_rate"],
            )
        if name == "parallel":
            extra = "  (jobs=%d)" % phase["jobs"]
        lines.append(
            "  %-16s %8.3fs  %5.2fx vs serial%s"
            % (name, phase["seconds"], phase["speedup_vs_serial"] or 0.0,
               extra)
        )
        workers = phase.get("workers")
        if workers:
            lines.append(
                "  %-16s %d tasks: %.3fs compute, %.3fs queue wait, "
                "%d pickled bytes (%s executor)"
                % (
                    "",
                    workers["tasks"],
                    workers["compute_seconds"],
                    workers["queue_wait_seconds"],
                    workers["pickle_bytes"],
                    workers["executor"],
                )
            )
    jobs = result["config"]["jobs"]
    cores = result["config"].get("cpu_affinity")
    if cores is None:
        cores = result["config"].get("cpu_count")
    if isinstance(cores, int) and jobs > cores:
        lines.append(
            "  WARNING: parallel phase ran jobs=%d on %d schedulable "
            "core(s); workers time-slice one core, so speedup <= 1.0x "
            "measures overhead, not scaling" % (jobs, cores)
        )
    gate = result["gate"]
    lines.append(
        "  QoR identical across phases: %s; gate %s"
        % (
            "yes" if result["qor_identical"] else "NO",
            "PASS" if gate["pass"] else "FAIL",
        )
    )
    return "\n".join(lines)


def save_bench_perf(result: dict, path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
