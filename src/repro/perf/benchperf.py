"""Measured perf trajectory: the harness behind ``chortle bench-perf``.

Times the Table 1-4 suite through the chortle engine in four phases —

* ``serial_uncached`` — the reference configuration: one cell at a time,
  no memo cache.  Every other phase's ``speedup_vs_serial`` is measured
  against this wall clock.
* ``cold_cache``      — same sweep with a fresh structural node-table
  cache (:class:`~repro.perf.memo.NodeTableCache`).  Pays the misses,
  but repeated tree shapes within the sweep already hit.
* ``warm_cache``      — the sweep again on the now-populated cache.
* ``parallel``        — uncached, with ``jobs`` worker threads mapping
  forest trees concurrently inside each cell.

— plus, unless disabled, a **jobs × phase matrix** of process-executor
legs over the fork-once worker pool (:mod:`repro.perf.pool`): for each
jobs value in :data:`MATRIX_JOBS` a ``pool_cold`` leg (the shared pool
is torn down first, so the leg pays worker start-up) and a
``pool_reuse`` leg (the now-warm pool and its self-warmed worker caches
are reused).  The legs land in the ``phases`` block under
``parallel_proc_j<N>_<cold|reuse>`` names and are summarized in the
``matrix`` block.

Every phase must produce *identical* QoR (LUTs / counted LUTs / depth
per cell) — the harness cross-checks and reports ``qor_identical``; a
mismatch fails the gate, because a cache or a worker pool that changes
results is a correctness bug, not a performance feature.

The gate additionally requires the warm-cache phase to not be slower
than the cold phase beyond a noise tolerance — the regression mode a
broken cache exhibits first (all misses plus lookup overhead) — and,
when the host offers at least two schedulable cores, a parallel leg at
``jobs >= 2`` (with no more jobs than cores) to beat serial outright.
On smaller hosts the parallel verdict is not silently passed but
explicitly recorded as ``skipped (insufficient cores)``: time-slicing
two workers on one core measures overhead, not scaling.  CI runs
``chortle bench-perf --quick --gate`` on every push; the committed
``BENCH_perf.json`` at the repository root is a full-suite run.

Phase wall clocks are wrapped in ``bench.perf_phase`` tracer spans and
the cache counters land in the metrics registry (``perf.cache.*``), so
the trajectory is visible through the standard observability surface.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.mcnc import TABLE_CIRCUITS, mcnc_circuit
from repro.bench.runner import mapper_factory, run_one_cell
from repro.network.network import BooleanNetwork
from repro.network.transform import sweep
from repro.obs import metrics, span
from repro.obs.perfrec import collect_perf_environment, effective_affinity
from repro.obs.progress import ProgressEmitter, resolve_progress
from repro.perf.memo import NodeTableCache
from repro.perf.parallel import worker_buckets
from repro.perf.pool import register_subject, reset_pool

#: Bump when the result layout changes.  2: jobs x phase matrix legs,
#: ``matrix`` summary block, explicit parallel gate verdict, and the
#: schedulable-core set in ``config``.
SCHEMA = 2

#: Worker counts the process-executor matrix sweeps (1 is the serial
#: reference leg; the others exercise the fork-once pool).
MATRIX_JOBS: Tuple[int, ...] = (1, 2, 4)

#: The ``--quick`` subset: small enough for a CI smoke job, repetitive
#: enough (shared tree shapes across circuits and K values) that the
#: warm-cache phase meaningfully exercises the memo.
QUICK_CIRCUITS: Tuple[str, ...] = ("9symml", "alu2", "count", "frg1")
QUICK_KS: Tuple[int, ...] = (3, 4)

#: Warm may be at most this fraction slower than cold before the gate
#: fails (timer noise on loaded CI machines; a healthy warm phase is
#: dramatically *faster*).
DEFAULT_WARM_TOLERANCE = 0.20

#: Absolute seconds added on top of the relative warm tolerance so
#: millisecond-scale runs (a single tiny cell) don't fail the gate on
#: scheduler jitter alone.  Negligible against real suite wall clocks.
_WARM_NOISE_FLOOR = 0.05


def _run_phase(
    name: str,
    cells: Sequence[Tuple[BooleanNetwork, int, str]],
    cache: Optional[NodeTableCache],
    jobs: int,
    progress: Optional[ProgressEmitter] = None,
    executor: str = "thread",
) -> Tuple[dict, List[list]]:
    """Run every cell once; returns (phase record, per-cell QoR rows)."""
    mapper_opts: Optional[Dict[str, object]] = None
    if jobs > 1:
        mapper_opts = {"jobs": jobs}
        if executor != "thread":
            mapper_opts["executor"] = executor
            # Register the whole suite before the first submit: a
            # freshly-forked pool then inherits every subject and no
            # cell pays a miss-retry blob mid-phase.  The mappers fan
            # out the *swept* network, which the sweep memo keeps
            # identity-stable across cells and phases.
            for net, _k, _mapper in cells:
                register_subject(sweep(net))
    counters_before = metrics.counters()
    qor: List[list] = []
    started = time.perf_counter()
    with span("bench.perf_phase", phase=name, cells=len(cells), jobs=jobs):
        for net, k, mapper_name in cells:
            if progress is not None:
                progress.cell_started(net.name, k, mapper_name, phase=name)
            cell_started = time.perf_counter()
            report = run_one_cell(
                net,
                k,
                mapper_name,
                cache=cache,
                mapper_opts=mapper_opts,
            )
            if progress is not None:
                progress.cell_finished(
                    net.name,
                    k,
                    mapper_name,
                    seconds=time.perf_counter() - cell_started,
                    phase=name,
                )
            qor.append(
                [net.name, k, mapper_name, report.luts, report.luts_total,
                 report.depth]
            )
    seconds = time.perf_counter() - started
    delta = metrics.counter_delta(counters_before)
    record = {
        "seconds": round(seconds, 4),
        "jobs": jobs,
        "cached": cache is not None,
        "cache": None,
    }
    if cache is not None:
        hits = delta.get(cache.name + ".hits", 0)
        misses = delta.get(cache.name + ".misses", 0)
        record["cache"] = {
            "hits": hits,
            "misses": misses,
            "evictions": delta.get(cache.name + ".evictions", 0),
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses
            else 0.0,
            "size": len(cache),
        }
    if jobs > 1:
        # Attribute the phase's worker time: compute vs queue wait vs
        # serialized payload bytes (zero for thread workers), straight
        # from the perf.parallel.* counter delta.
        record["executor"] = executor
        record["workers"] = worker_buckets(delta, jobs=jobs, executor=executor)
    return record, qor


def _matrix_legs(jobs: int) -> List[Tuple[str, int, Optional[bool]]]:
    """The matrix sweep: (phase name, jobs, pool reuse) per leg.

    ``jobs=1`` is the serial reference leg (the pool never engages, so
    reuse is ``None``); every larger jobs value gets a cold-pool leg —
    :func:`~repro.perf.pool.reset_pool` first, so the leg pays worker
    start-up — and a reuse leg on the warm pool.
    """
    legs: List[Tuple[str, int, Optional[bool]]] = []
    for jobs_n in sorted(set(MATRIX_JOBS) | ({jobs} if jobs > 1 else set())):
        if jobs_n == 1:
            legs.append(("parallel_proc_j1", 1, None))
            continue
        legs.append(("parallel_proc_j%d_cold" % jobs_n, jobs_n, False))
        legs.append(("parallel_proc_j%d_reuse" % jobs_n, jobs_n, True))
    return legs


def _parallel_gate(
    phases: Dict[str, dict], affinity: Optional[int]
) -> Dict[str, object]:
    """The parallel speedup verdict: pass, fail, or an explicit skip.

    A leg is *eligible* when it ran at ``jobs >= 2`` and the host had at
    least ``jobs`` schedulable cores — with fewer cores the workers
    time-slice and a speedup below 1.0x is the expected outcome, so the
    verdict is downgraded to ``skipped (insufficient cores)`` instead of
    silently passing (or spuriously failing) the gate.
    """
    legs = {}
    for name, record in phases.items():
        jobs = int(record.get("jobs", 1) or 1)
        if jobs < 2 or name in ("serial_uncached", "cold_cache", "warm_cache"):
            continue
        legs[name] = (jobs, record.get("speedup_vs_serial"))
    eligible = {
        name: speedup
        for name, (jobs, speedup) in legs.items()
        if affinity is not None and affinity >= jobs and speedup is not None
    }
    if not eligible:
        return {
            "status": "skipped (insufficient cores)",
            "affinity": affinity,
            "required": "parallel > 1.0x at jobs >= 2 with affinity >= jobs",
            "ok": None,
        }
    best = max(eligible, key=lambda name: eligible[name])
    return {
        "status": "checked",
        "affinity": affinity,
        "best_leg": best,
        "best_speedup": eligible[best],
        "ok": eligible[best] > 1.0,
    }


def run_bench_perf(
    circuits: Optional[Sequence[str]] = None,
    ks: Optional[Sequence[int]] = None,
    mappers: Sequence[str] = ("chortle",),
    jobs: int = 2,
    quick: bool = False,
    created_at: str = "",
    warm_tolerance: Optional[float] = None,
    cache_dir: Optional[str] = None,
    progress: object = False,
    matrix: bool = True,
) -> dict:
    """Measure the perf trajectory; returns the ``BENCH_perf.json`` payload.

    ``circuits`` / ``ks`` default to the full Table 1-4 suite (or the
    CI-sized ``--quick`` subset when ``quick`` is set).  ``jobs`` sizes
    the parallel phase's thread pool.  ``matrix`` additionally sweeps
    the process-executor jobs x pool-reuse legs (see the module
    docstring); pass ``False`` to skip them.  When ``cache_dir`` is
    given, the warm cache is additionally saved to disk there and
    immediately re-loaded into a fresh cache, recording the round trip.
    ``progress`` takes ``True`` (heartbeat lines on stderr) or a
    :class:`~repro.obs.progress.ProgressEmitter` for per-cell
    started/finished/ETA events across all phases.

    The returned payload carries a ``gate`` block; callers that want a
    pass/fail exit check ``gate["pass"]``.
    """
    if warm_tolerance is None:
        warm_tolerance = DEFAULT_WARM_TOLERANCE
    if circuits is None:
        circuits = QUICK_CIRCUITS if quick else TABLE_CIRCUITS
    if ks is None:
        ks = QUICK_KS if quick else (2, 3, 4, 5)
    for name in mappers:
        mapper_factory(name)  # fail fast, before any timing
    networks = [mcnc_circuit(str(name)) for name in circuits]
    cells: List[Tuple[BooleanNetwork, int, str]] = [
        (net, k, mapper_name)
        for net in networks
        for k in ks
        for mapper_name in mappers
    ]

    cache = NodeTableCache()
    phase_specs = [
        ("serial_uncached", None, 1, "thread", None),
        ("cold_cache", cache, 1, "thread", None),
        ("warm_cache", cache, 1, "thread", None),
        ("parallel", None, max(2, jobs), "thread", None),
    ]
    matrix_legs = _matrix_legs(jobs) if matrix else []
    for leg_name, leg_jobs, reuse in matrix_legs:
        phase_specs.append(
            (leg_name, None, leg_jobs, "process" if leg_jobs > 1 else "thread",
             reuse)
        )
    emitter = resolve_progress(progress, total=len(cells) * len(phase_specs))
    phases: Dict[str, dict] = {}
    qor_by_phase: Dict[str, List[list]] = {}
    for name, phase_cache, phase_jobs, phase_executor, reuse in phase_specs:
        if reuse is False:
            # A cold-pool leg measures worker start-up: tear the shared
            # pool down so the leg forks fresh workers.
            reset_pool()
        record, qor = _run_phase(
            name, cells, phase_cache, phase_jobs, progress=emitter,
            executor=phase_executor,
        )
        if reuse is not None:
            record["pool_reuse"] = reuse
        phases[name] = record
        qor_by_phase[name] = qor

    serial_seconds = phases["serial_uncached"]["seconds"]
    for record in phases.values():
        record["speedup_vs_serial"] = (
            round(serial_seconds / record["seconds"], 3)
            if record["seconds"] > 0
            else None
        )

    reference = qor_by_phase["serial_uncached"]
    mismatches = []
    for name, qor in qor_by_phase.items():
        for ref_row, row in zip(reference, qor):
            if ref_row != row:
                mismatches.append({"phase": name, "expected": ref_row,
                                   "got": row})
    qor_identical = not mismatches

    disk = None
    if cache_dir:
        path = cache.save_disk(cache_dir)
        reloaded = NodeTableCache(name="perf.cache.reload")
        loaded = reloaded.load_disk(cache_dir)
        disk = {
            "path": path,
            "entries_saved": len(cache),
            "entries_loaded": loaded,
            "round_trip_ok": loaded == len(cache),
        }

    warm = phases["warm_cache"]["seconds"]
    cold = phases["cold_cache"]["seconds"]
    # The relative tolerance plus a small absolute floor: on runs whose
    # phases finish in tens of milliseconds (one tiny cell), scheduler
    # jitter swamps any real cache effect and a pure ratio check flakes.
    warm_ok = warm <= cold * (1.0 + warm_tolerance) + _WARM_NOISE_FLOOR
    affinity = effective_affinity()
    parallel_gate = _parallel_gate(phases, affinity)
    gate = {
        "warm_tolerance": warm_tolerance,
        "warm_not_slower_than_cold": warm_ok,
        "qor_identical": qor_identical,
        "parallel": parallel_gate,
        # An ineligible host skips the parallel verdict explicitly
        # rather than failing it (ok is None) — only a measured
        # speedup <= 1.0x on an eligible host fails.
        "pass": warm_ok and qor_identical and parallel_gate["ok"] is not False,
    }

    sched = None
    if hasattr(os, "sched_getaffinity"):
        sched = sorted(os.sched_getaffinity(0))
    result = {
        "schema": SCHEMA,
        "created_at": created_at,
        "quick": quick,
        "config": {
            "circuits": [net.name for net in networks],
            "ks": list(ks),
            "mappers": list(mappers),
            "jobs": max(2, jobs),
            "cpu_count": os.cpu_count(),
            "cpu_affinity": affinity,
            "sched_getaffinity": sched,
        },
        "environment": collect_perf_environment(),
        "cells": len(cells),
        "phases": phases,
        "qor_identical": qor_identical,
        "gate": gate,
    }
    if matrix_legs:
        result["matrix"] = [
            {
                "phase": leg_name,
                "jobs": leg_jobs,
                "pool_reuse": reuse,
                "seconds": phases[leg_name]["seconds"],
                "speedup_vs_serial": phases[leg_name]["speedup_vs_serial"],
            }
            for leg_name, leg_jobs, reuse in matrix_legs
        ]
    if mismatches:
        result["qor_mismatches"] = mismatches[:20]
    if disk is not None:
        result["disk_cache"] = disk
    return result


def render_bench_perf(result: dict) -> str:
    """A small human-readable summary of one bench-perf payload."""
    lines = [
        "bench-perf: %d cells (%s; K in %s)"
        % (
            result["cells"],
            ", ".join(result["config"]["circuits"]),
            result["config"]["ks"],
        )
    ]
    canonical = ("serial_uncached", "cold_cache", "warm_cache", "parallel")
    matrix_names = [row["phase"] for row in result.get("matrix", [])]
    for name in list(canonical) + matrix_names:
        phase = result["phases"][name]
        extra = ""
        if phase.get("cache"):
            extra = "  (cache: %d hits / %d misses, %.0f%% hit rate)" % (
                phase["cache"]["hits"],
                phase["cache"]["misses"],
                100.0 * phase["cache"]["hit_rate"],
            )
        if phase.get("jobs", 1) > 1:
            extra = "  (jobs=%d, %s executor%s)" % (
                phase["jobs"],
                phase.get("executor", "thread"),
                ""
                if "pool_reuse" not in phase
                else (", warm pool" if phase["pool_reuse"] else ", cold pool"),
            )
        lines.append(
            "  %-22s %8.3fs  %5.2fx vs serial%s"
            % (name, phase["seconds"], phase["speedup_vs_serial"] or 0.0,
               extra)
        )
        workers = phase.get("workers")
        if workers:
            lines.append(
                "  %-22s %d tasks: %.3fs compute, %.3fs queue wait, "
                "%d pickled bytes (%s executor)"
                % (
                    "",
                    workers["tasks"],
                    workers["compute_seconds"],
                    workers["queue_wait_seconds"],
                    workers["pickle_bytes"],
                    workers["executor"],
                )
            )
    jobs = result["config"]["jobs"]
    cores = result["config"].get("cpu_affinity")
    if cores is None:
        cores = result["config"].get("cpu_count")
    if isinstance(cores, int) and jobs > cores:
        lines.append(
            "  WARNING: parallel phase ran jobs=%d on %d schedulable "
            "core(s); workers time-slice one core, so speedup <= 1.0x "
            "measures overhead, not scaling" % (jobs, cores)
        )
    gate = result["gate"]
    verdict = gate.get("parallel")
    if isinstance(verdict, dict):
        if verdict.get("ok") is None:
            lines.append(
                "  parallel gate: %s (affinity=%s)"
                % (verdict.get("status"), verdict.get("affinity"))
            )
        else:
            lines.append(
                "  parallel gate: %s — best leg %s at %.2fx"
                % (
                    "ok" if verdict["ok"] else "FAIL",
                    verdict.get("best_leg"),
                    verdict.get("best_speedup") or 0.0,
                )
            )
    lines.append(
        "  QoR identical across phases: %s; gate %s"
        % (
            "yes" if result["qor_identical"] else "NO",
            "PASS" if gate["pass"] else "FAIL",
        )
    )
    return "\n".join(lines)


def save_bench_perf(result: dict, path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
