"""Structural memoization of tree-DP node tables.

The subset DP in :class:`repro.core.tree_mapper.TreeMapper` recomputes
identical node tables thousands of times across a QoR sweep: the forest
partition produces heavily repeating tree shapes, and the DP result for
a node depends only on the *structure* of its fanin items — never on
leaf names.  This module turns that observation into a shared cache:

* :func:`node_signature` — a canonical, hashable signature of one
  ``compute_node_table`` call: the node's op plus, per fanin item, its
  kind and inversion, a *local* name id for external leaves (so
  duplicate leaves are distinguished from distinct ones), and — for
  :class:`~repro.core.tree_mapper.TableItem` fanins — the child table's
  own recursive signature.  Together with ``(k, split_threshold)`` this
  determines the DP result exactly, up to leaf renaming.

* :func:`canonicalize_table` / :func:`rehydrate_table` — convert a
  computed :data:`~repro.core.tree_mapper.NodeTable` to and from a
  name-free canonical form made of plain tuples.  External-leaf
  placements are stored by local name id; placements that reference an
  entry of a fanin item's table are stored as ``(item_index,
  utilization)`` references and resolved against the *caller's* actual
  items on rehydration, so a cache hit wires the cached decomposition
  to the live child candidates.  Intermediate decomposition nodes are
  expanded recursively.  The round trip preserves cost, input depth,
  placement kinds, and the cost-then-depth tie-break — mapped circuits
  are bit-identical to the uncached mapper's (the fuzz suite in
  ``tests/test_perf.py`` cross-checks emitted BLIF text).

* :class:`NodeTableCache` — the in-process LRU of canonical tables
  (shared across trees, networks, and K sweeps; K and the split
  threshold are part of every key), with optional on-disk persistence
  (:meth:`~NodeTableCache.load_disk` / :meth:`~NodeTableCache.save_disk`)
  so repeated QoR runs start warm.

The disk format is a pickle of ``(magic, schema, entries)`` under the
cache directory (default ``~/.cache/chortle``).  Only load cache files
you wrote yourself: pickle is code, not data.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.tree_mapper import (
    ExtItem,
    FaninItem,
    MapCand,
    NodeTable,
    TableItem,
)
from repro.perf.lru import LruCache

#: Bump when the canonical-table layout changes; stale disk caches are ignored.
#: v2: cache keys carry interned signatures (flat pickle expansion) instead
#: of raw nested tuples.
DISK_SCHEMA = 2
_DISK_MAGIC = "chortle-node-table-cache"
_DISK_FILENAME = "node_tables.v%d.pkl" % DISK_SCHEMA


def default_cache_dir() -> str:
    """``$CHORTLE_CACHE_DIR`` or the conventional ``~/.cache/chortle``."""
    env = os.environ.get("CHORTLE_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "chortle")


# -- signatures --------------------------------------------------------------


class InternedSignature:
    """One structural signature, interned so it hashes in O(1).

    Signatures nest — a node's signature embeds its table-item
    children's signatures — so raw tuples re-hash the whole subtree on
    every cache lookup, and on deep chains even *pickling* them
    overflows the C stack.  Interning fixes both: the hash is computed
    once from the shallow shape (whose child references are themselves
    interned, already-hashed objects), structurally equal signatures are
    the *same object* within a process (so equality is identity), and
    pickling goes through a flat post-order expansion that re-interns on
    load, keeping disk-cache keys comparable to live ones.
    """

    __slots__ = ("shape", "_hash")

    def __init__(self, shape: tuple, hash_value: int):
        self.shape = shape
        self._hash = hash_value

    def __hash__(self) -> int:
        return self._hash

    # No __eq__: identity equality is exactly right, the intern table
    # guarantees one object per distinct structure.

    def expanded(self) -> tuple:
        """A flat, recursion-free form: post-order shallow nodes.

        Entry ``i`` is ``(op, parts)`` where a table-item part
        ``("t", j, inv)`` references entry ``j < i``; the last entry is
        this signature.  Safe to pickle at any nesting depth.
        """
        order: List[tuple] = []
        index: Dict[int, int] = {}
        stack: List[Tuple[InternedSignature, bool]] = [(self, False)]
        while stack:
            node, ready = stack.pop()
            if id(node) in index:
                continue
            parts = node.shape[2]
            if ready:
                flat = tuple(
                    ("t", index[id(part[1])], part[2])
                    if part[0] == "t"
                    else part
                    for part in parts
                )
                index[id(node)] = len(order)
                order.append((node.shape[1], flat))
            else:
                stack.append((node, True))
                for part in parts:
                    if part[0] == "t" and id(part[1]) not in index:
                        stack.append((part[1], False))
        return tuple(order)

    def __reduce__(self):
        return (_signature_from_expanded, (self.expanded(),))

    def __repr__(self) -> str:
        return "InternedSignature(%r, hash=%d)" % (self.shape[1], self._hash)


_INTERN: Dict[tuple, InternedSignature] = {}


def intern_signature(shape: tuple) -> InternedSignature:
    """The unique :class:`InternedSignature` for a shallow shape tuple.

    ``shape`` is ``("nt", op, parts)`` whose table-item parts reference
    child *InternedSignature* objects, so hashing it — and comparing on
    a rare bucket collision — costs O(fanin), never O(subtree).
    """
    found = _INTERN.get(shape)
    if found is None:
        found = InternedSignature(shape, hash(shape))
        _INTERN[shape] = found
    return found


def _signature_from_expanded(expanded: tuple) -> InternedSignature:
    """Re-intern a pickled flat expansion (see ``expanded``)."""
    built: List[InternedSignature] = []
    for op, parts in expanded:
        shallow = tuple(
            ("t", built[part[1]], part[2]) if part[0] == "t" else part
            for part in parts
        )
        built.append(intern_signature(("nt", op, shallow)))
    return built[-1]


class _SigRef:
    """Disk-format stand-in for an interned signature inside a cache key.

    ``save_disk`` writes one shared post-order signature table per file
    and keys reference into it — per-key ``expanded()`` forms would
    re-serialize every chain prefix, turning a deep-chain cache into an
    O(n^2) pickle.
    """

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):
        return (_SigRef, (self.index,))


class _SignaturePacker:
    """Builds the shared signature table while translating cache keys."""

    def __init__(self) -> None:
        self.table: List[tuple] = []
        self._index: Dict[int, int] = {}

    def _sig_index(self, sig: InternedSignature) -> int:
        known = self._index.get(id(sig))
        if known is not None:
            return known
        stack: List[Tuple[InternedSignature, bool]] = [(sig, False)]
        while stack:
            node, ready = stack.pop()
            if id(node) in self._index:
                continue
            parts = node.shape[2]
            if ready:
                flat = tuple(
                    ("t", self._index[id(part[1])], part[2])
                    if part[0] == "t"
                    else part
                    for part in parts
                )
                self._index[id(node)] = len(self.table)
                self.table.append((node.shape[1], flat))
            else:
                stack.append((node, True))
                for part in parts:
                    if part[0] == "t" and id(part[1]) not in self._index:
                        stack.append((part[1], False))
        return self._index[id(sig)]

    def pack_key(self, key: object) -> object:
        """``key`` with top-level interned signatures swapped for refs."""
        if not isinstance(key, tuple) or not any(
            isinstance(part, InternedSignature) for part in key
        ):
            return key
        return tuple(
            _SigRef(self._sig_index(part))
            if isinstance(part, InternedSignature)
            else part
            for part in key
        )


def _unpack_key(key: object, sigs: List[InternedSignature]) -> object:
    if not isinstance(key, tuple) or not any(
        isinstance(part, _SigRef) for part in key
    ):
        return key
    return tuple(
        sigs[part.index] if isinstance(part, _SigRef) else part
        for part in key
    )


def _sigs_from_table(table: Sequence[tuple]) -> List[InternedSignature]:
    built: List[InternedSignature] = []
    for op, parts in table:
        shallow = tuple(
            ("t", built[part[1]], part[2]) if part[0] == "t" else part
            for part in parts
        )
        built.append(intern_signature(("nt", op, shallow)))
    return built


def node_signature(
    op: str, items: Sequence[FaninItem]
) -> Optional[InternedSignature]:
    """The structural signature of one node-table computation.

    External leaves contribute ``("e", name_id, inv)`` where ``name_id``
    numbers distinct leaf names in order of first occurrence — two items
    naming the *same* leaf signal must stay distinguishable from two
    distinct leaves, because the mapped function differs.  Table items
    contribute ``("t", child_signature, inv)`` referencing the child's
    own interned signature.

    Returns ``None`` when some :class:`TableItem` carries no signature
    (it was built outside the memoizing path); such calls are simply not
    cacheable.
    """
    name_ids: Dict[str, int] = {}
    parts: List[tuple] = []
    for item in items:
        if isinstance(item, ExtItem):
            name_id = name_ids.setdefault(item.name, len(name_ids))
            parts.append(("e", name_id, item.inv))
        else:
            if item.sig is None:
                return None
            parts.append(("t", item.sig, item.inv))
    return intern_signature(("nt", op, tuple(parts)))


def _ext_name_ids(items: Sequence[FaninItem]) -> Dict[str, int]:
    """The same first-occurrence name numbering :func:`node_signature` uses."""
    name_ids: Dict[str, int] = {}
    for item in items:
        if isinstance(item, ExtItem):
            name_ids.setdefault(item.name, len(name_ids))
    return name_ids


# -- canonical form ----------------------------------------------------------
#
# Canonical candidate: (cost, input_depth, placements)
# Canonical placement: ("e", name_id, inv)
#                    | ("w"|"m", ref, inv)
# Reference:           ("i", item_index, utilization)   entry of a fanin table
#                    | ("c", canonical_candidate)       intermediate node


def canonicalize_table(table: NodeTable, items: Sequence[FaninItem]) -> tuple:
    """The name-free canonical form of a computed node table."""
    name_ids = _ext_name_ids(items)
    # Identity map from fanin-table entries to (item index, utilization):
    # placements holding one of these candidates are stored by reference,
    # everything else (intermediate decomposition nodes) is expanded.
    entry_refs: Dict[int, Tuple[int, int]] = {}
    for idx, item in enumerate(items):
        if isinstance(item, TableItem):
            for uc, cand in enumerate(item.table):
                if cand is not None:
                    entry_refs[id(cand)] = (idx, uc)

    def canon_cand(cand: MapCand) -> tuple:
        placements = []
        for placement in cand.placements:
            kind = placement[0]
            if kind == "ext":
                placements.append(("e", name_ids[placement[1]], placement[2]))
                continue
            tag = "w" if kind == "wire" else "m"
            ref = entry_refs.get(id(placement[1]))
            if ref is not None:
                placements.append((tag, ("i", ref[0], ref[1]), placement[2]))
            else:
                placements.append(
                    (tag, ("c", canon_cand(placement[1])), placement[2])
                )
        return (cand.cost, cand.input_depth, tuple(placements))

    return tuple(None if cand is None else canon_cand(cand) for cand in table)


def rehydrate_table(
    canon: tuple, op: str, items: Sequence[FaninItem]
) -> NodeTable:
    """Rebuild a live node table from its canonical form and actual items."""
    names_by_id = {nid: name for name, nid in _ext_name_ids(items).items()}

    def re_cand(cc: tuple) -> MapCand:
        cost, input_depth, placements = cc
        out = []
        for placement in placements:
            tag, payload, inv = placement
            if tag == "e":
                out.append(("ext", names_by_id[payload], inv))
                continue
            kind = "wire" if tag == "w" else "merged"
            if payload[0] == "i":
                cand = items[payload[1]].table[payload[2]]
            else:
                cand = re_cand(payload[1])
            out.append((kind, cand, inv))
        return MapCand(cost, op, tuple(out), input_depth=input_depth)

    return [None if cc is None else re_cand(cc) for cc in canon]


# -- the cache ---------------------------------------------------------------


class NodeTableCache(LruCache):
    """LRU of canonical node tables keyed by ``(k, split_threshold, sig)``.

    One instance can back any number of :class:`TreeMapper` /
    :class:`ChortleMapper` objects at different K values concurrently —
    K and the split threshold are part of every key, so entries never
    collide across sweep cells.
    """

    def __init__(self, maxsize: Optional[int] = 65536, name: str = "perf.cache"):
        super().__init__(maxsize=maxsize, name=name)

    # -- disk persistence ----------------------------------------------------

    def _disk_path(self, cache_dir: Optional[str]) -> str:
        return os.path.join(cache_dir or default_cache_dir(), _DISK_FILENAME)

    def save_disk(self, cache_dir: Optional[str] = None) -> str:
        """Persist the current contents; returns the file path written.

        The write is atomic (temp file + rename) so a crashed run never
        leaves a truncated cache behind.
        """
        path = self._disk_path(cache_dir)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        packer = _SignaturePacker()
        entries = [
            (packer.pack_key(key), value)
            for key, value in self.items_snapshot()
        ]
        payload = (_DISK_MAGIC, DISK_SCHEMA, (tuple(packer.table), entries))
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".node_tables.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load_disk(self, cache_dir: Optional[str] = None) -> int:
        """Merge a previously saved cache file; returns entries loaded.

        Missing files, stale schemas, and corrupt payloads all load
        zero entries rather than failing the run — a cache must never
        turn into a correctness or availability problem.
        """
        path = self._disk_path(cache_dir)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return 0
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != _DISK_MAGIC
            or payload[1] != DISK_SCHEMA
        ):
            return 0
        sig_table, entries = payload[2]
        sigs = _sigs_from_table(sig_table)
        loaded = 0
        for key, value in entries:
            self.put(_unpack_key(key, sigs), value)
            loaded += 1
        from repro.obs import metrics

        metrics.count(self.name + ".disk_loaded", loaded)
        return loaded


_SHARED: Optional[NodeTableCache] = None


def get_cache() -> NodeTableCache:
    """The process-wide shared node-table cache, created on first use."""
    global _SHARED
    if _SHARED is None:
        _SHARED = NodeTableCache()
    return _SHARED


def resolve_cache(cache) -> Optional[NodeTableCache]:
    """Normalize a user-facing cache option to a cache object (or None).

    Accepts ``None``/``False`` (no caching), ``True`` (the shared
    process-wide cache), or an explicit :class:`NodeTableCache`.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return get_cache()
    return cache
