"""Structural memoization of tree-DP node tables.

The subset DP in :class:`repro.core.tree_mapper.TreeMapper` recomputes
identical node tables thousands of times across a QoR sweep: the forest
partition produces heavily repeating tree shapes, and the DP result for
a node depends only on the *structure* of its fanin items — never on
leaf names.  This module turns that observation into a shared cache:

* :func:`node_signature` — a canonical, hashable signature of one
  ``compute_node_table`` call: the node's op plus, per fanin item, its
  kind and inversion, a *local* name id for external leaves (so
  duplicate leaves are distinguished from distinct ones), and — for
  :class:`~repro.core.tree_mapper.TableItem` fanins — the child table's
  own recursive signature.  Together with ``(k, split_threshold)`` this
  determines the DP result exactly, up to leaf renaming.

* :func:`canonicalize_table` / :func:`rehydrate_table` — convert a
  computed :data:`~repro.core.tree_mapper.NodeTable` to and from a
  name-free canonical form made of plain tuples.  External-leaf
  placements are stored by local name id; placements that reference an
  entry of a fanin item's table are stored as ``(item_index,
  utilization)`` references and resolved against the *caller's* actual
  items on rehydration, so a cache hit wires the cached decomposition
  to the live child candidates.  Intermediate decomposition nodes are
  expanded recursively.  The round trip preserves cost, input depth,
  placement kinds, and the cost-then-depth tie-break — mapped circuits
  are bit-identical to the uncached mapper's (the fuzz suite in
  ``tests/test_perf.py`` cross-checks emitted BLIF text).

* :class:`NodeTableCache` — the in-process LRU of canonical tables
  (shared across trees, networks, and K sweeps; K and the split
  threshold are part of every key), with optional on-disk persistence
  (:meth:`~NodeTableCache.load_disk` / :meth:`~NodeTableCache.save_disk`)
  so repeated QoR runs start warm.

The disk format is a pickle of ``(magic, schema, entries)`` under the
cache directory (default ``~/.cache/chortle``).  Only load cache files
you wrote yourself: pickle is code, not data.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.tree_mapper import (
    ExtItem,
    FaninItem,
    MapCand,
    NodeTable,
    TableItem,
)
from repro.perf.lru import LruCache

#: Bump when the canonical-table layout changes; stale disk caches are ignored.
DISK_SCHEMA = 1
_DISK_MAGIC = "chortle-node-table-cache"
_DISK_FILENAME = "node_tables.v%d.pkl" % DISK_SCHEMA


def default_cache_dir() -> str:
    """``$CHORTLE_CACHE_DIR`` or the conventional ``~/.cache/chortle``."""
    env = os.environ.get("CHORTLE_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "chortle")


# -- signatures --------------------------------------------------------------


def node_signature(op: str, items: Sequence[FaninItem]) -> Optional[tuple]:
    """The structural signature of one node-table computation.

    External leaves contribute ``("e", name_id, inv)`` where ``name_id``
    numbers distinct leaf names in order of first occurrence — two items
    naming the *same* leaf signal must stay distinguishable from two
    distinct leaves, because the mapped function differs.  Table items
    contribute ``("t", child_signature, inv)``.

    Returns ``None`` when some :class:`TableItem` carries no signature
    (it was built outside the memoizing path); such calls are simply not
    cacheable.
    """
    name_ids: Dict[str, int] = {}
    parts: List[tuple] = []
    for item in items:
        if isinstance(item, ExtItem):
            name_id = name_ids.setdefault(item.name, len(name_ids))
            parts.append(("e", name_id, item.inv))
        else:
            if item.sig is None:
                return None
            parts.append(("t", item.sig, item.inv))
    return ("nt", op, tuple(parts))


def _ext_name_ids(items: Sequence[FaninItem]) -> Dict[str, int]:
    """The same first-occurrence name numbering :func:`node_signature` uses."""
    name_ids: Dict[str, int] = {}
    for item in items:
        if isinstance(item, ExtItem):
            name_ids.setdefault(item.name, len(name_ids))
    return name_ids


# -- canonical form ----------------------------------------------------------
#
# Canonical candidate: (cost, input_depth, placements)
# Canonical placement: ("e", name_id, inv)
#                    | ("w"|"m", ref, inv)
# Reference:           ("i", item_index, utilization)   entry of a fanin table
#                    | ("c", canonical_candidate)       intermediate node


def canonicalize_table(table: NodeTable, items: Sequence[FaninItem]) -> tuple:
    """The name-free canonical form of a computed node table."""
    name_ids = _ext_name_ids(items)
    # Identity map from fanin-table entries to (item index, utilization):
    # placements holding one of these candidates are stored by reference,
    # everything else (intermediate decomposition nodes) is expanded.
    entry_refs: Dict[int, Tuple[int, int]] = {}
    for idx, item in enumerate(items):
        if isinstance(item, TableItem):
            for uc, cand in enumerate(item.table):
                if cand is not None:
                    entry_refs[id(cand)] = (idx, uc)

    def canon_cand(cand: MapCand) -> tuple:
        placements = []
        for placement in cand.placements:
            kind = placement[0]
            if kind == "ext":
                placements.append(("e", name_ids[placement[1]], placement[2]))
                continue
            tag = "w" if kind == "wire" else "m"
            ref = entry_refs.get(id(placement[1]))
            if ref is not None:
                placements.append((tag, ("i", ref[0], ref[1]), placement[2]))
            else:
                placements.append(
                    (tag, ("c", canon_cand(placement[1])), placement[2])
                )
        return (cand.cost, cand.input_depth, tuple(placements))

    return tuple(None if cand is None else canon_cand(cand) for cand in table)


def rehydrate_table(
    canon: tuple, op: str, items: Sequence[FaninItem]
) -> NodeTable:
    """Rebuild a live node table from its canonical form and actual items."""
    names_by_id = {nid: name for name, nid in _ext_name_ids(items).items()}

    def re_cand(cc: tuple) -> MapCand:
        cost, input_depth, placements = cc
        out = []
        for placement in placements:
            tag, payload, inv = placement
            if tag == "e":
                out.append(("ext", names_by_id[payload], inv))
                continue
            kind = "wire" if tag == "w" else "merged"
            if payload[0] == "i":
                cand = items[payload[1]].table[payload[2]]
            else:
                cand = re_cand(payload[1])
            out.append((kind, cand, inv))
        return MapCand(cost, op, tuple(out), input_depth=input_depth)

    return [None if cc is None else re_cand(cc) for cc in canon]


# -- the cache ---------------------------------------------------------------


class NodeTableCache(LruCache):
    """LRU of canonical node tables keyed by ``(k, split_threshold, sig)``.

    One instance can back any number of :class:`TreeMapper` /
    :class:`ChortleMapper` objects at different K values concurrently —
    K and the split threshold are part of every key, so entries never
    collide across sweep cells.
    """

    def __init__(self, maxsize: Optional[int] = 65536, name: str = "perf.cache"):
        super().__init__(maxsize=maxsize, name=name)

    # -- disk persistence ----------------------------------------------------

    def _disk_path(self, cache_dir: Optional[str]) -> str:
        return os.path.join(cache_dir or default_cache_dir(), _DISK_FILENAME)

    def save_disk(self, cache_dir: Optional[str] = None) -> str:
        """Persist the current contents; returns the file path written.

        The write is atomic (temp file + rename) so a crashed run never
        leaves a truncated cache behind.
        """
        path = self._disk_path(cache_dir)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = (_DISK_MAGIC, DISK_SCHEMA, self.items_snapshot())
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".node_tables.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load_disk(self, cache_dir: Optional[str] = None) -> int:
        """Merge a previously saved cache file; returns entries loaded.

        Missing files, stale schemas, and corrupt payloads all load
        zero entries rather than failing the run — a cache must never
        turn into a correctness or availability problem.
        """
        path = self._disk_path(cache_dir)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return 0
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != _DISK_MAGIC
            or payload[1] != DISK_SCHEMA
        ):
            return 0
        loaded = 0
        for key, value in payload[2]:
            self.put(key, value)
            loaded += 1
        from repro.obs import metrics

        metrics.count(self.name + ".disk_loaded", loaded)
        return loaded


_SHARED: Optional[NodeTableCache] = None


def get_cache() -> NodeTableCache:
    """The process-wide shared node-table cache, created on first use."""
    global _SHARED
    if _SHARED is None:
        _SHARED = NodeTableCache()
    return _SHARED


def resolve_cache(cache) -> Optional[NodeTableCache]:
    """Normalize a user-facing cache option to a cache object (or None).

    Accepts ``None``/``False`` (no caching), ``True`` (the shared
    process-wide cache), or an explicit :class:`NodeTableCache`.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return get_cache()
    return cache
