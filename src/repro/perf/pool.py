"""Fork-once persistent worker pool with a shared subject registry.

Before this module, every process fan-out built a fresh
``ProcessPoolExecutor`` and pickled the whole subject network into every
chunk payload — worker start-up and serialization costs that made
process-parallel mapping *slower* than serial on anything but huge
networks.  The pool here is created once and reused across all trees of
a network and all cells of a suite, and subjects ship through a
registry instead of through payloads:

* **fork** (Linux, the default wherever available): the parent registers
  the subject in a module-global dict *before* workers exist; forked
  workers inherit the parent's memory image, so the subject crosses the
  process boundary as copy-on-write pages — zero pickle bytes.
* **spawn** (fallback): new workers are seeded by the pool initializer
  with a snapshot of the registry taken at pool creation.
* **miss-retry**: a subject registered *after* a worker was forked (or
  after the spawn snapshot) is absent in that worker; the worker returns
  a miss sentinel and the caller resubmits the task with the pickled
  subject attached, which the worker then caches for the rest of its
  life.  Every subject is pickled at most once per worker, instead of
  once per chunk.

Because workers are long-lived, their process-local memo caches
(:func:`repro.perf.memo.get_cache`) survive across cells and suites —
a cold suite run self-warms as structurally repeating shapes recur.

``reset_pool()`` tears the singleton down (benchmark legs that must
measure cold workers; tests).  An ``atexit`` hook shuts the pool down
on interpreter exit.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import itertools
import multiprocessing
import pickle
from typing import Dict, Optional

from repro.obs import metrics

__all__ = [
    "WorkerPool",
    "get_pool",
    "reset_pool",
    "pool_start_method",
    "register_subject",
    "subject_blob",
    "resolve_subject",
]

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def pool_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    return "fork" if _FORK_AVAILABLE else "spawn"


# -- the subject registry ----------------------------------------------------
#
# One module-global dict plays three roles: the parent's registry, the
# fork-inherited image inside fork workers, and the per-worker cache of
# spawn-seeded / retry-shipped subjects.

_SUBJECTS: Dict[str, object] = {}
_SUBJECT_TOKENS: Dict[int, str] = {}  # id(subject) -> token, parent side
_SUBJECT_BLOBS: Dict[str, bytes] = {}  # lazy pickles for retry/seeding
_TOKEN_SEQ = itertools.count(1)


def register_subject(subject: object) -> str:
    """Register a subject (parent side); returns its shipping token.

    Registering the same object again returns the same token, which is
    how suite cells sharing one circuit at different K dedupe down to a
    single shipped subject.
    """
    token = _SUBJECT_TOKENS.get(id(subject))
    if token is not None and _SUBJECTS.get(token) is subject:
        return token
    token = "s%d" % next(_TOKEN_SEQ)
    _SUBJECT_TOKENS[id(subject)] = token
    _SUBJECTS[token] = subject
    return token


def subject_blob(token: str) -> bytes:
    """The pickled subject for miss-retry, pickled at most once."""
    blob = _SUBJECT_BLOBS.get(token)
    if blob is None:
        blob = pickle.dumps(_SUBJECTS[token], pickle.HIGHEST_PROTOCOL)
        _SUBJECT_BLOBS[token] = blob
    return blob


def resolve_subject(token: str, blob: Optional[bytes]) -> Optional[object]:
    """Worker side: the subject for ``token``, or ``None`` on a miss.

    Resolution order: the registry (fork inheritance, spawn seeding, or
    an earlier retry), then the attached ``blob`` (cached for subsequent
    tasks).  ``None`` tells the caller to resubmit with the blob.
    """
    subject = _SUBJECTS.get(token)
    if subject is not None:
        return subject
    if blob is not None:
        subject = pickle.loads(blob)
        _SUBJECTS[token] = subject
        return subject
    return None


def _seed_worker(snapshot: Dict[str, object]) -> None:
    """Spawn-pool initializer: install the registry snapshot."""
    _SUBJECTS.update(snapshot)


# -- the pool ----------------------------------------------------------------


class WorkerPool:
    """One long-lived ``ProcessPoolExecutor`` plus its shipping metadata."""

    def __init__(self, jobs: int, start_method: Optional[str] = None):
        self.jobs = jobs
        self.start_method = start_method or pool_start_method()
        self.broken = False
        ctx = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            # Workers fork lazily at first submit and inherit _SUBJECTS
            # by memory image; no initializer needed.
            self.executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs, mp_context=ctx
            )
        else:
            self.executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=ctx,
                initializer=_seed_worker,
                initargs=(dict(_SUBJECTS),),
            )
        metrics.count("perf.pool.created")

    def submit(self, fn, *args) -> concurrent.futures.Future:
        try:
            return self.executor.submit(fn, *args)
        except concurrent.futures.process.BrokenProcessPool:
            self.broken = True
            raise

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True, cancel_futures=True)


_POOL: Optional[WorkerPool] = None
_ATEXIT_ARMED = False


def get_pool(jobs: int) -> WorkerPool:
    """The shared pool, sized for at least ``jobs`` workers.

    Reuses the live pool when it is healthy and large enough (the whole
    point: warm workers, warm worker caches); recreates it — at the max
    of the old and requested sizes — when it is too small or broken.
    """
    global _POOL, _ATEXIT_ARMED
    if _POOL is not None and not _POOL.broken and _POOL.jobs >= jobs:
        metrics.count("perf.pool.reused")
        return _POOL
    if _POOL is not None:
        jobs = max(jobs, _POOL.jobs)
        _POOL.shutdown()
    _POOL = WorkerPool(jobs)
    if not _ATEXIT_ARMED:
        atexit.register(reset_pool)
        _ATEXIT_ARMED = True
    return _POOL


def reset_pool() -> None:
    """Shut the shared pool down (cold-worker benchmark legs; tests).

    Registered subjects stay registered: a future pool's fork workers
    re-inherit them for free, and spawn workers re-seed from the
    snapshot at creation.
    """
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
