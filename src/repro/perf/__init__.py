"""Performance layer: structural memoization, parallel mapping, perf bench.

Three coordinated pieces (see ``docs/PERFORMANCE.md``):

* :mod:`repro.perf.lru` / :mod:`repro.perf.memo` — a metrics-
  instrumented LRU of canonical node tables keyed by structural
  signature, shared across trees, networks, and K sweeps, with optional
  on-disk persistence.  Cache hits rehydrate to results bit-identical
  to the uncached tree DP.
* :mod:`repro.perf.parallel` — deterministic process-pool fan-out of
  forest trees (tree-level) and benchmark suite cells (suite-level).
* :mod:`repro.perf.benchperf` — the measured perf trajectory behind
  ``chortle bench-perf`` and the committed ``BENCH_perf.json``.

Submodule attributes are re-exported lazily: :mod:`repro.perf.lru` must
stay importable from low layers (``repro.truth.canonical`` uses it), so
this package must not eagerly import :mod:`repro.perf.memo`, which
depends on the core mapper.
"""

from __future__ import annotations

_EXPORTS = {
    "LruCache": "repro.perf.lru",
    "NodeTableCache": "repro.perf.memo",
    "canonicalize_table": "repro.perf.memo",
    "default_cache_dir": "repro.perf.memo",
    "get_cache": "repro.perf.memo",
    "node_signature": "repro.perf.memo",
    "rehydrate_table": "repro.perf.memo",
    "resolve_cache": "repro.perf.memo",
    "map_trees_processes": "repro.perf.parallel",
    "run_cells_processes": "repro.perf.parallel",
    "run_bench_perf": "repro.perf.benchperf",
    "render_bench_perf": "repro.perf.benchperf",
    "save_bench_perf": "repro.perf.benchperf",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module), name)
