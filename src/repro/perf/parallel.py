"""Process-pool workers for tree-level and suite-level parallel mapping.

Two fan-out granularities, both deterministic, both running on the
persistent fork-once pool of :mod:`repro.perf.pool`:

* :func:`map_trees_processes` — one swept network, its forest's trees
  chunked round-robin across the shared pool.  The subject network is
  *registered* once and crosses into workers by fork inheritance (or a
  one-time blob on the spawn fallback) instead of riding in every chunk
  payload; each worker builds the forest and per-tree topological
  orders once per subject and keeps them for its lifetime.  The parent
  reassembles root candidates in forest order, so emission — and
  therefore the whole circuit — is bit-identical to a serial run.

* :func:`run_cells_processes` — the benchmark runner's (circuit, K,
  mapper) cells fanned across workers.  Cells sharing one circuit at
  different K share one registered subject (payloads carry a token, not
  the network).  Workers return plain report dicts and the parent
  restores them in submission order, so a parallel suite sweep produces
  the same rows in the same order as a serial one (only the timing
  fields reflect the parallel run).

Because the pool is long-lived, each worker's process-local memo cache
(:func:`repro.perf.memo.get_cache`) stays warm across chunks, cells,
and whole suites.

Worker functions live at module top level so they pickle under the
``spawn`` start method.  Workers count into their own process-local
metrics registry; per-cell counter/timing attribution still works
because each worker measures its own cell and ships the deltas home in
the report dict.

**Telemetry.**  Every fan-out attributes where worker time went, so a
disappointing speedup can be explained instead of guessed at.  Each
submitted work unit records:

* *queue wait* — seconds between the parent submitting the unit and a
  worker starting it (``time.perf_counter`` is CLOCK_MONOTONIC-backed
  on Linux, hence comparable across local processes; negative skew is
  clamped to zero);
* *task seconds* — in-worker compute time for the unit;
* *pickle bytes* — the serialized size of the submitted payload, i.e.
  the per-unit cost the process pool pays that threads do not (now a
  token-sized constant, not the subject network);
* *subject misses* — tasks resubmitted with a subject blob because a
  worker predated the subject's registration;
* *worker cache traffic* — hit/miss/eviction deltas from each worker's
  process-local memo cache, shipped home with the results.

The parent folds all of it into the process-wide metrics registry
under ``perf.parallel.*`` (microsecond-integer counters so
``counter_delta`` attribution works, plus seconds histograms); the
``bench-perf`` harness turns the deltas into the per-phase ``workers``
buckets via :func:`worker_buckets`.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.network import BooleanNetwork
from repro.obs import metrics
from repro.perf.pool import (
    get_pool,
    register_subject,
    resolve_subject,
    subject_blob,
)

#: Worker-local cache counters shipped home, and their parent-side names.
_CACHE_COUNTERS = ("hits", "misses", "evictions")

#: First element of a worker result when the subject was not resolvable;
#: the parent resubmits the task with the pickled subject attached.
_MISS = "__subject_miss__"


def _chunk_round_robin(n: int, jobs: int) -> List[List[int]]:
    """Indices ``0..n-1`` dealt round-robin into ``jobs`` chunks."""
    chunks: List[List[int]] = [[] for _ in range(jobs)]
    for index in range(n):
        chunks[index % jobs].append(index)
    return [chunk for chunk in chunks if chunk]


# -- telemetry ---------------------------------------------------------------


def _worker_telemetry(
    submitted_at: float, started_at: float, counters_before: Dict[str, int]
) -> Dict[str, float]:
    """Built inside a worker when its unit finishes; shipped to the parent."""
    delta = metrics.counter_delta(counters_before)
    telemetry: Dict[str, float] = {
        "queue_wait": max(0.0, started_at - submitted_at),
        "task_seconds": time.perf_counter() - started_at,
    }
    for key in _CACHE_COUNTERS:
        telemetry["cache_" + key] = delta.get("perf.cache." + key, 0)
    return telemetry


def record_worker_telemetry(
    telemetry: Dict[str, float], pickle_bytes: int = 0
) -> None:
    """Fold one unit's worker telemetry into the parent registry."""
    metrics.count("perf.parallel.tasks")
    metrics.count(
        "perf.parallel.queue_wait_us", int(telemetry["queue_wait"] * 1e6)
    )
    metrics.count("perf.parallel.task_us", int(telemetry["task_seconds"] * 1e6))
    if pickle_bytes:
        metrics.count("perf.parallel.pickle_bytes", pickle_bytes)
    for key in _CACHE_COUNTERS:
        count = int(telemetry.get("cache_" + key, 0))
        if count:
            metrics.count("perf.parallel.cache_" + key, count)
    metrics.observe("perf.parallel.queue_wait", telemetry["queue_wait"])
    metrics.observe("perf.parallel.task_seconds", telemetry["task_seconds"])


def record_task_telemetry(queue_wait: float, task_seconds: float) -> None:
    """The thread-executor variant: no pickling, no remote registry."""
    record_worker_telemetry(
        {"queue_wait": queue_wait, "task_seconds": task_seconds}
    )


def worker_buckets(
    delta: Dict[str, int], jobs: int, executor: str
) -> Dict[str, object]:
    """Summarize a ``perf.parallel.*`` counter delta into named buckets.

    The bench-perf harness records this as the parallel phase's
    ``workers`` block: enough to attribute the wall clock to compute vs
    queue wait vs serialization and decide which one to attack.
    """
    buckets: Dict[str, object] = {
        "jobs": jobs,
        "executor": executor,
        "tasks": delta.get("perf.parallel.tasks", 0),
        "compute_seconds": round(
            delta.get("perf.parallel.task_us", 0) / 1e6, 4
        ),
        "queue_wait_seconds": round(
            delta.get("perf.parallel.queue_wait_us", 0) / 1e6, 4
        ),
        "pickle_bytes": delta.get("perf.parallel.pickle_bytes", 0),
    }
    misses = delta.get("perf.parallel.subject_miss", 0)
    if misses:
        buckets["subject_misses"] = misses
    cache = {
        key: delta.get("perf.parallel.cache_" + key, 0)
        for key in _CACHE_COUNTERS
    }
    if any(cache.values()):
        buckets["worker_cache"] = cache
    return buckets


def _submit_with_bytes(pool, fn, payload) -> Tuple[object, int]:
    """Submit to the shared pool, measuring the payload's pickle cost."""
    future = pool.submit(fn, payload)
    return future, len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))


# -- tree-level workers ------------------------------------------------------

#: Worker-side cache: subject token -> (forest, per-tree topo orders).
#: Lives for the worker process's life, so a subject's forest is built
#: once per worker no matter how many chunks, K values, or suites visit.
_WORKER_FORESTS: Dict[str, tuple] = {}


def _worker_forest(token: str, net) -> tuple:
    entry = _WORKER_FORESTS.get(token)
    if entry is None:
        from repro.core.forest import build_forest, tree_orders

        forest = build_forest(net)
        entry = (forest, tree_orders(forest))
        _WORKER_FORESTS[token] = entry
    return entry


def _map_tree_chunk(payload: tuple):
    """Map one chunk of forest trees inside a worker process."""
    started_at = time.perf_counter()
    (
        token,
        blob,
        k,
        split_threshold,
        indices,
        use_shared_cache,
        submitted_at,
    ) = payload
    from repro.core.tree_mapper import TreeMapper
    from repro.perf.memo import get_cache

    net = resolve_subject(token, blob)
    if net is None:
        return _MISS, token
    counters_before = metrics.counters()
    forest, orders = _worker_forest(token, net)
    cache = get_cache() if use_shared_cache else None
    mapper = TreeMapper(k, split_threshold=split_threshold, cache=cache)
    results = [
        (index, mapper.map_tree(net, forest.trees[index], order=orders[index]))
        for index in indices
    ]
    return results, _worker_telemetry(submitted_at, started_at, counters_before)


def map_trees_processes(
    net: BooleanNetwork,
    num_trees: int,
    k: int,
    split_threshold: int,
    jobs: int,
    use_shared_cache: bool = False,
) -> List[object]:
    """Root candidates for every tree of ``net``'s forest, in forest order.

    ``net`` must already be swept.  The network is registered with the
    shared pool's subject registry and payloads carry only its token;
    workers that predate the registration miss once and are resent the
    pickled subject.  Each worker keeps its own process-local memo cache
    when ``use_shared_cache`` is set — processes cannot share the
    parent's in-memory cache, but repeated shapes still hit, and the
    traffic comes home as ``perf.parallel.cache_*`` counters.
    """
    token = register_subject(net)
    pool = get_pool(jobs)
    chunks = _chunk_round_robin(num_trees, jobs)
    results: List[object] = [None] * num_trees
    pending = []
    for chunk in chunks:
        payload = (
            token, None, k, split_threshold, chunk, use_shared_cache,
            time.perf_counter(),
        )
        pending.append(
            _submit_with_bytes(pool, _map_tree_chunk, payload) + (chunk,)
        )
    while pending:
        retries = []
        for future, payload_bytes, chunk in pending:
            outcome = future.result()
            if outcome[0] == _MISS:
                metrics.count("perf.parallel.subject_miss")
                payload = (
                    token, subject_blob(token), k, split_threshold, chunk,
                    use_shared_cache, time.perf_counter(),
                )
                retries.append(
                    _submit_with_bytes(pool, _map_tree_chunk, payload)
                    + (chunk,)
                )
                continue
            chunk_results, telemetry = outcome
            record_worker_telemetry(telemetry, pickle_bytes=payload_bytes)
            for index, cand in chunk_results:
                results[index] = cand
        pending = retries
    return results


# -- suite-level workers -----------------------------------------------------


def _run_suite_cell(payload: tuple):
    """Run one (circuit, K, mapper) benchmark cell inside a worker."""
    started_at = time.perf_counter()
    (
        token,
        blob,
        k,
        mapper_name,
        verify,
        use_cache,
        mapper_opts,
        submitted_at,
    ) = payload
    from repro.bench.runner import run_one_cell

    net = resolve_subject(token, blob)
    if net is None:
        return _MISS, token
    counters_before = metrics.counters()
    report = run_one_cell(
        net,
        k,
        mapper_name,
        verify=verify,
        cache=use_cache,
        mapper_opts=mapper_opts,
    )
    return (
        report.to_dict(),
        _worker_telemetry(submitted_at, started_at, counters_before),
    )


def run_cells_processes(
    cells: Sequence[Tuple[BooleanNetwork, int, str]],
    jobs: int,
    verify: bool = False,
    use_cache: bool = False,
    mapper_opts: Optional[Dict[str, object]] = None,
    on_result: Optional[Callable[[int, dict], None]] = None,
) -> List[dict]:
    """Report dicts for every cell, in the order the cells were given.

    Cells are shipped as ``(subject_token, k, mapper)`` tuples — several
    cells sweeping one circuit across K values or mappers register the
    circuit once and share the token, so the per-cell payload is a few
    hundred bytes regardless of network size.  Workers return
    ``MappingReport.to_dict()`` payloads; the caller turns them back
    into reports.  ``on_result(cell_index, report_dict)`` is invoked as
    each cell *completes* (completion order, not submission order) —
    the hook progress streaming hangs off.
    """
    jobs = min(jobs, len(cells)) or 1
    # Register every subject before the pool spins up: freshly-forked
    # workers inherit the whole registry, so no cell pays a miss-retry.
    tokens = [register_subject(net) for net, _k, _mapper in cells]
    pool = get_pool(jobs)
    opts = mapper_opts or {}

    def cell_payload(index: int, blob: Optional[bytes]) -> tuple:
        _net, k, mapper_name = cells[index]
        return (
            tokens[index], blob, k, mapper_name, verify, use_cache,
            opts, time.perf_counter(),
        )

    futures: Dict[object, int] = {}
    payload_bytes: Dict[int, int] = {}
    for index in range(len(cells)):
        future, nbytes = _submit_with_bytes(
            pool, _run_suite_cell, cell_payload(index, None)
        )
        futures[future] = index
        payload_bytes[index] = nbytes

    rows: List[dict] = [{} for _ in cells]
    while futures:
        done, _ = concurrent.futures.wait(
            list(futures), return_when=concurrent.futures.FIRST_COMPLETED
        )
        for future in done:
            index = futures.pop(future)
            outcome = future.result()
            if outcome[0] == _MISS:
                metrics.count("perf.parallel.subject_miss")
                net = cells[index][0]
                retry, nbytes = _submit_with_bytes(
                    pool,
                    _run_suite_cell,
                    cell_payload(index, subject_blob(register_subject(net))),
                )
                futures[retry] = index
                payload_bytes[index] += nbytes
                continue
            row, telemetry = outcome
            record_worker_telemetry(
                telemetry, pickle_bytes=payload_bytes[index]
            )
            rows[index] = row
            if on_result is not None:
                on_result(index, row)
    return rows
