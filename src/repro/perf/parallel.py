"""Process-pool workers for tree-level and suite-level parallel mapping.

Two fan-out granularities, both deterministic:

* :func:`map_trees_processes` — one swept network, its forest's trees
  chunked round-robin across a ``ProcessPoolExecutor``.  Each worker
  rebuilds the forest (cheap and deterministic) and returns the root
  candidates for its chunk; the parent reassembles them in forest order,
  so emission — and therefore the whole circuit — is bit-identical to a
  serial run.

* :func:`run_cells_processes` — the benchmark runner's (circuit, K,
  mapper) cells fanned across workers.  Each cell is an independent
  mapping problem; workers return plain report dicts and the parent
  restores them in submission order, so a parallel suite sweep produces
  the same rows in the same order as a serial one (only the timing
  fields reflect the parallel run).

Worker functions live at module top level so they pickle under the
``spawn`` start method.  Workers count into their own process-local
metrics registry; per-cell counter/timing attribution still works
because each worker measures its own cell and ships the deltas home in
the report dict.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.network import BooleanNetwork


def _chunk_round_robin(n: int, jobs: int) -> List[List[int]]:
    """Indices ``0..n-1`` dealt round-robin into ``jobs`` chunks."""
    chunks: List[List[int]] = [[] for _ in range(jobs)]
    for index in range(n):
        chunks[index % jobs].append(index)
    return [chunk for chunk in chunks if chunk]


# -- tree-level workers ------------------------------------------------------


def _map_tree_chunk(payload: tuple) -> List[Tuple[int, object]]:
    """Map one chunk of forest trees inside a worker process."""
    net, k, split_threshold, indices, use_shared_cache = payload
    from repro.core.forest import build_forest
    from repro.core.tree_mapper import TreeMapper
    from repro.perf.memo import get_cache

    cache = get_cache() if use_shared_cache else None
    forest = build_forest(net)
    mapper = TreeMapper(k, split_threshold=split_threshold, cache=cache)
    return [
        (index, mapper.map_tree(net, forest.trees[index])) for index in indices
    ]


def map_trees_processes(
    net: BooleanNetwork,
    num_trees: int,
    k: int,
    split_threshold: int,
    jobs: int,
    use_shared_cache: bool = False,
) -> List[object]:
    """Root candidates for every tree of ``net``'s forest, in forest order.

    ``net`` must already be swept (the forest is rebuilt per worker from
    the network as-is).  Each worker keeps its own process-local memo
    cache when ``use_shared_cache`` is set — processes cannot share the
    parent's in-memory cache, but repeated shapes within a chunk still
    hit.
    """
    chunks = _chunk_round_robin(num_trees, jobs)
    results: List[object] = [None] * num_trees
    with concurrent.futures.ProcessPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(
                _map_tree_chunk, (net, k, split_threshold, chunk, use_shared_cache)
            )
            for chunk in chunks
        ]
        for future in futures:
            for index, cand in future.result():
                results[index] = cand
    return results


# -- suite-level workers -----------------------------------------------------


def _run_suite_cell(payload: tuple) -> dict:
    """Run one (circuit, K, mapper) benchmark cell inside a worker."""
    net, k, mapper_name, verify, use_cache, mapper_opts = payload
    from repro.bench.runner import run_one_cell

    report = run_one_cell(
        net,
        k,
        mapper_name,
        verify=verify,
        cache=use_cache,
        mapper_opts=mapper_opts,
    )
    return report.to_dict()


def run_cells_processes(
    cells: Sequence[Tuple[BooleanNetwork, int, str]],
    jobs: int,
    verify: bool = False,
    use_cache: bool = False,
    mapper_opts: Optional[Dict[str, object]] = None,
) -> List[dict]:
    """Report dicts for every cell, in the order the cells were given.

    Workers are handed whole cells (network already built in the
    parent, so synthetic-circuit generation is not repeated per worker)
    and return ``MappingReport.to_dict()`` payloads; the caller turns
    them back into reports.
    """
    jobs = min(jobs, len(cells)) or 1
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(
                _run_suite_cell,
                (net, k, mapper_name, verify, use_cache, mapper_opts or {}),
            )
            for net, k, mapper_name in cells
        ]
        return [future.result() for future in futures]
