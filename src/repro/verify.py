"""Functional verification of mapped circuits against source networks.

Three methods, selected by the ``method`` argument:

* ``"sim"`` — the historical behavior: exhaustive simulation up to
  ``exhaustive_limit`` primary inputs, bit-parallel random vectors
  above it.  A random-vector pass is *sampling*, not proof; such runs
  are flagged on the returned :class:`VerifyResult` (``sampled``) and
  counted under ``verify.sampled`` so no caller mistakes them for an
  exhaustive verdict.
* ``"sat"`` — formal proof via the miter engine (:mod:`repro.sat`),
  independent of input count.
* ``"auto"`` — exhaustive simulation while it is affordable
  (``inputs <= exhaustive_limit``), SAT proof above that, so the
  verdict is *always* a proof — auto never silently degrades to
  sampling.

Both entry points return a :class:`VerifyResult`, an ``int`` subclass
carrying the vector count (``2**inputs`` for proofs) plus the
``method``/``mode``/``sampled``/``proved`` verdict metadata, so code
and tests written against the historical plain-int return keep working.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.lut import LUTCircuit
from repro.errors import VerificationError
from repro.network.network import BooleanNetwork
from repro.network.simulate import exhaustive_input_words, simulate
from repro.obs import metrics, span

METHODS = ("sim", "sat", "auto")


class VerifyResult(int):
    """The vector count of a verification run, with verdict metadata.

    An ``int`` subclass: equal to the number of input vectors the
    verdict covers (``2**inputs`` for exhaustive and SAT proofs, the
    sample size for random simulation), so arithmetic comparisons
    against the historical plain-int return still hold.
    """

    mode: str  # "exhaustive" | "random" | "sat"
    sampled: bool  # True when the verdict is a random sample, not a proof
    proved: bool

    def __new__(
        cls,
        vectors: int,
        mode: str = "exhaustive",
        sampled: bool = False,
        proved: bool = True,
    ) -> "VerifyResult":
        self = super().__new__(cls, vectors)
        self.mode = mode
        self.sampled = sampled
        self.proved = proved
        return self

    def __repr__(self) -> str:
        return "VerifyResult(%d, mode=%r, sampled=%r, proved=%r)" % (
            int(self), self.mode, self.sampled, self.proved,
        )


def _check_method(method: str) -> None:
    if method not in METHODS:
        raise VerificationError(
            "unknown verify method %r; valid methods: %s"
            % (method, ", ".join(METHODS))
        )


def _format_vector(vector: Dict[str, int]) -> str:
    return " ".join("%s=%d" % (name, vector[name]) for name in sorted(vector))


def _sat_verify(golden, candidate, sp) -> VerifyResult:
    """SAT-prove equivalence; raises with the counterexample on mismatch."""
    from repro.sat.miter import check_equivalence

    sp.set("mode", "sat")
    result = check_equivalence(golden, candidate)
    metrics.count("verify.sat_runs")
    if not result.equivalent:
        raise VerificationError(
            "output %r differs (expected %d, got %d); counterexample: %s"
            % (
                result.failing_output,
                result.expected,
                result.actual,
                _format_vector(result.counterexample or {}),
            )
        )
    vectors = 1 << len(golden.inputs)
    sp.set("vectors", vectors)
    return VerifyResult(vectors, mode="sat")


def _sampled_result(width: int) -> VerifyResult:
    # A random pass that found no mismatch: record the degradation so
    # "equivalent" never silently means "equivalent on a sample".
    metrics.count("verify.sampled")
    return VerifyResult(width, mode="random", sampled=True, proved=False)


def verify_equivalence(
    network: BooleanNetwork,
    circuit: LUTCircuit,
    vectors: int = 4096,
    exhaustive_limit: int = 14,
    seed: int = 2026,
    method: str = "sim",
) -> VerifyResult:
    """Check every output port matches; returns the vectors covered.

    Raises :class:`VerificationError` on the first mismatching port.
    With ``method="sat"`` (always) or ``"auto"`` (above
    ``exhaustive_limit`` inputs) the check is a formal proof from the
    miter engine; ``"sim"`` preserves the historical
    exhaustive-or-random simulation and flags random runs as sampled.
    """
    _check_method(method)
    with span("verify.equivalence", network=network.name) as sp:
        inputs = network.inputs
        if set(circuit.inputs) != set(inputs):
            raise VerificationError(
                "input sets differ: %s vs %s"
                % (sorted(inputs), sorted(circuit.inputs))
            )
        if set(network.outputs) - set(circuit.outputs):
            raise VerificationError(
                "missing output ports: %s"
                % sorted(set(network.outputs) - set(circuit.outputs))
            )
        metrics.count("verify.runs")

        if method == "sat" or (
            method == "auto" and len(inputs) > exhaustive_limit
        ):
            result = _sat_verify(network, circuit, sp)
            metrics.count("verify.ports_checked", len(network.outputs))
            return result

        if len(inputs) <= exhaustive_limit:
            words: Dict[str, int] = exhaustive_input_words(inputs)
            width = 1 << len(inputs)
            sp.set("mode", "exhaustive")
            sampled = False
        else:
            rng = random.Random(seed)
            width = vectors
            words = {name: rng.getrandbits(width) for name in inputs}
            sp.set("mode", "random")
            sp.set("sampled", True)
            sampled = True
        sp.set("vectors", width)

        mask = (1 << width) - 1
        net_values = simulate(network, words, width)
        ckt_values = circuit.simulate(words, width)
        for port, sig in network.outputs.items():
            expected = net_values[sig.name]
            if sig.inv:
                expected = ~expected
            actual = ckt_values[circuit.outputs[port]]
            if (expected ^ actual) & mask:
                diff = bin((expected ^ actual) & mask).count("1")
                raise VerificationError(
                    "output %r differs on %d of %d vectors" % (port, diff, width)
                )
        metrics.count("verify.vectors", width)
        metrics.count("verify.ports_checked", len(network.outputs))
        if sampled:
            return _sampled_result(width)
        return VerifyResult(width, mode="exhaustive")


def verify_network_equivalence(
    golden: BooleanNetwork,
    candidate: BooleanNetwork,
    vectors: int = 4096,
    exhaustive_limit: int = 14,
    seed: int = 2026,
    method: str = "sim",
) -> VerifyResult:
    """Check two networks compute the same outputs; returns vectors covered.

    The network-to-network counterpart of :func:`verify_equivalence`,
    used by the flow engine's checked mode to validate network passes
    (sweep, strash, refactor) individually.  Raises
    :class:`VerificationError` on the first mismatching port.  The
    ``method`` argument behaves as in :func:`verify_equivalence`.
    """
    _check_method(method)
    with span("verify.network_equivalence", network=golden.name) as sp:
        inputs = golden.inputs
        if set(candidate.inputs) != set(inputs):
            raise VerificationError(
                "input sets differ: %s vs %s"
                % (sorted(inputs), sorted(candidate.inputs))
            )
        if set(golden.outputs) != set(candidate.outputs):
            raise VerificationError(
                "output port sets differ: %s vs %s"
                % (sorted(golden.outputs), sorted(candidate.outputs))
            )
        metrics.count("verify.network_runs")

        if method == "sat" or (
            method == "auto" and len(inputs) > exhaustive_limit
        ):
            result = _sat_verify(golden, candidate, sp)
            metrics.count("verify.ports_checked", len(golden.outputs))
            return result

        if len(inputs) <= exhaustive_limit:
            words: Dict[str, int] = exhaustive_input_words(inputs)
            width = 1 << len(inputs)
            sp.set("mode", "exhaustive")
            sampled = False
        else:
            rng = random.Random(seed)
            width = vectors
            words = {name: rng.getrandbits(width) for name in inputs}
            sp.set("mode", "random")
            sp.set("sampled", True)
            sampled = True
        sp.set("vectors", width)

        mask = (1 << width) - 1
        golden_values = simulate(golden, words, width)
        cand_values = simulate(candidate, words, width)
        for port, sig in golden.outputs.items():
            expected = golden_values[sig.name] ^ (mask if sig.inv else 0)
            other = candidate.outputs[port]
            actual = cand_values[other.name] ^ (mask if other.inv else 0)
            if (expected ^ actual) & mask:
                diff = bin((expected ^ actual) & mask).count("1")
                raise VerificationError(
                    "output %r differs on %d of %d vectors" % (port, diff, width)
                )
        metrics.count("verify.vectors", width)
        metrics.count("verify.ports_checked", len(golden.outputs))
        if sampled:
            return _sampled_result(width)
        return VerifyResult(width, mode="exhaustive")


def equivalent(network: BooleanNetwork, circuit: LUTCircuit, **kwargs) -> bool:
    """Boolean-returning convenience wrapper over :func:`verify_equivalence`."""
    try:
        verify_equivalence(network, circuit, **kwargs)
    except VerificationError:
        return False
    return True
