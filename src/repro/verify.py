"""Functional verification of mapped circuits against source networks.

Exhaustive simulation is used for networks with at most
``exhaustive_limit`` primary inputs; larger networks are checked on a
configurable number of random vectors (bit-parallel, so thousands of
vectors cost one simulation pass).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.errors import VerificationError
from repro.core.lut import LUTCircuit
from repro.network.network import BooleanNetwork
from repro.network.simulate import exhaustive_input_words, simulate
from repro.obs import metrics, span


def verify_equivalence(
    network: BooleanNetwork,
    circuit: LUTCircuit,
    vectors: int = 4096,
    exhaustive_limit: int = 14,
    seed: int = 2026,
) -> int:
    """Check every output port matches; returns the number of vectors used.

    Raises :class:`VerificationError` on the first mismatching port.
    """
    with span("verify.equivalence", network=network.name) as sp:
        inputs = network.inputs
        if set(circuit.inputs) != set(inputs):
            raise VerificationError(
                "input sets differ: %s vs %s"
                % (sorted(inputs), sorted(circuit.inputs))
            )
        if set(network.outputs) - set(circuit.outputs):
            raise VerificationError(
                "missing output ports: %s"
                % sorted(set(network.outputs) - set(circuit.outputs))
            )

        if len(inputs) <= exhaustive_limit:
            words: Dict[str, int] = exhaustive_input_words(inputs)
            width = 1 << len(inputs)
            sp.set("mode", "exhaustive")
        else:
            rng = random.Random(seed)
            width = vectors
            words = {name: rng.getrandbits(width) for name in inputs}
            sp.set("mode", "random")
        sp.set("vectors", width)

        mask = (1 << width) - 1
        net_values = simulate(network, words, width)
        ckt_values = circuit.simulate(words, width)
        for port, sig in network.outputs.items():
            expected = net_values[sig.name]
            if sig.inv:
                expected = ~expected
            actual = ckt_values[circuit.outputs[port]]
            if (expected ^ actual) & mask:
                diff = bin((expected ^ actual) & mask).count("1")
                raise VerificationError(
                    "output %r differs on %d of %d vectors" % (port, diff, width)
                )
        metrics.count("verify.runs")
        metrics.count("verify.vectors", width)
        metrics.count("verify.ports_checked", len(network.outputs))
        return width


def verify_network_equivalence(
    golden: BooleanNetwork,
    candidate: BooleanNetwork,
    vectors: int = 4096,
    exhaustive_limit: int = 14,
    seed: int = 2026,
) -> int:
    """Check two networks compute the same outputs; returns vectors used.

    The network-to-network counterpart of :func:`verify_equivalence`,
    used by the flow engine's checked mode to validate network passes
    (sweep, strash, refactor) individually.  Raises
    :class:`VerificationError` on the first mismatching port.
    """
    with span("verify.network_equivalence", network=golden.name) as sp:
        inputs = golden.inputs
        if set(candidate.inputs) != set(inputs):
            raise VerificationError(
                "input sets differ: %s vs %s"
                % (sorted(inputs), sorted(candidate.inputs))
            )
        if set(golden.outputs) != set(candidate.outputs):
            raise VerificationError(
                "output port sets differ: %s vs %s"
                % (sorted(golden.outputs), sorted(candidate.outputs))
            )

        if len(inputs) <= exhaustive_limit:
            words: Dict[str, int] = exhaustive_input_words(inputs)
            width = 1 << len(inputs)
            sp.set("mode", "exhaustive")
        else:
            rng = random.Random(seed)
            width = vectors
            words = {name: rng.getrandbits(width) for name in inputs}
            sp.set("mode", "random")
        sp.set("vectors", width)

        mask = (1 << width) - 1
        golden_values = simulate(golden, words, width)
        cand_values = simulate(candidate, words, width)
        for port, sig in golden.outputs.items():
            expected = golden_values[sig.name] ^ (mask if sig.inv else 0)
            other = candidate.outputs[port]
            actual = cand_values[other.name] ^ (mask if other.inv else 0)
            if (expected ^ actual) & mask:
                diff = bin((expected ^ actual) & mask).count("1")
                raise VerificationError(
                    "output %r differs on %d of %d vectors" % (port, diff, width)
                )
        metrics.count("verify.network_runs")
        metrics.count("verify.vectors", width)
        metrics.count("verify.ports_checked", len(golden.outputs))
        return width


def equivalent(network: BooleanNetwork, circuit: LUTCircuit, **kwargs) -> bool:
    """Boolean-returning convenience wrapper over :func:`verify_equivalence`."""
    try:
        verify_equivalence(network, circuit, **kwargs)
    except VerificationError:
        return False
    return True
