"""Command-line interface.

Installed as ``chortle`` (also ``python -m repro``).  Subcommands::

    chortle map in.blif -k 4 -o out.blif          # Chortle mapping
    chortle map in.blif -k 4 --mapper mis         # MIS-style baseline
    chortle map in.blif -k 4 --mapper flowmap     # depth-optimal mapping
    chortle map in.blif -k 4 --mapper binpack     # fast bin-packing mapper
    chortle map in.blif --flow delay              # a registered flow
    chortle map in.blif --flow sweep,strash,chortle,merge   # custom flow
    chortle map in.blif --flow area --checked     # per-pass verification
    chortle flows                                 # registered flows + passes
    chortle map in.blif --trace trace.jsonl       # machine-readable spans
    chortle map in.blif --profile                 # stage timings on stderr
    chortle map in.blif --cache --jobs 4          # memo cache + parallel trees
    chortle profile in.blif -k 4                  # span tree + counters
    chortle explain 9symml -k 4                   # decision provenance report
    chortle explain in.blif --node n1 --format json   # one node, as JSON
    chortle map in.blif --explain                 # explanation alongside mapping
    chortle bench-perf --quick -o perf.json       # measured perf trajectory
    chortle stats in.blif                         # network statistics
    chortle generate 9symml -o 9symml.blif        # synthetic MCNC stand-in
    chortle verify in.blif mapped.blif            # equivalence check
    chortle verify a.blif b.blif --method sat     # formal SAT proof
    chortle verify --cell adv_add24 --mapper cutmap   # map + prove a cell
    chortle verify --cell xor_mesh --per-lut      # localize a corrupted LUT
    chortle verify --corpus --semantic -o gate.json   # adversarial SAT gate
    chortle lint in.blif                          # static network audit
    chortle lint mapped.blif --mapped --semantic  # SAT-backed CHRT4xx rules
    chortle lint mapped.blif --mapped -k 4        # audit a mapped circuit
    chortle lint --suite --fail-on error          # lint the whole QoR sweep
    chortle lint --rules                          # print the rule catalogue
    chortle map in.blif --flow area --lint        # per-stage lint gating
    chortle qor record -o run.json                # persist a QoR sweep
    chortle qor diff base.json run.json           # classify QoR changes
    chortle qor gate base.json                    # re-run suite, fail on regress
    chortle qor report run.json                   # markdown QoR table
    chortle perf top                              # self-time hotspot table
    chortle perf flame -o out.folded              # folded stacks (speedscope)
    chortle perf record --quick                   # measure + append to history
    chortle perf diff base.json cur.json          # noise-tolerant perf diff
    chortle perf gate --quick                     # fail on perf regressions
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from repro.blif import (
    blif_to_network,
    parse_blif_file,
    write_lut_circuit,
    write_network,
)
from repro.bench.mcnc import MCNC_PROFILES
from repro.errors import ReproError
from repro.flow import get_registry, mapper_names, resolve_mapper
from repro.network import network_stats
from repro.obs import (
    JsonLinesSink,
    capture,
    get_metrics,
    get_tracer,
    render_span_tree,
    span,
)
from repro.opt import factored_network_from_blif
from repro.verify import verify_equivalence


def _load_network(path: str, factor: bool, minimize: bool = False):
    model = parse_blif_file(path)
    if factor or minimize:
        return factored_network_from_blif(model, minimize=minimize)
    return blif_to_network(model)


def _cli_cache(args: argparse.Namespace):
    """The node-table cache requested by --cache / --cache-dir, or None.

    ``--cache-dir`` implies caching and pre-loads any cache file a
    previous run saved there (:func:`_save_cli_cache` writes it back
    after mapping).
    """
    cache_dir = getattr(args, "cache_dir", None)
    if not (getattr(args, "cache", False) or cache_dir):
        return None
    from repro.perf.memo import get_cache

    cache = get_cache()
    if cache_dir:
        loaded = cache.load_disk(cache_dir)
        if loaded:
            print(
                "loaded %d cached node tables from %s" % (loaded, cache_dir),
                file=sys.stderr,
            )
    return cache


def _save_cli_cache(args: argparse.Namespace, cache) -> None:
    cache_dir = getattr(args, "cache_dir", None)
    if cache is not None and cache_dir:
        cache.save_disk(cache_dir)


def _resolve_cli_mapper(args: argparse.Namespace, cache=None):
    """Resolve the mapper named by --flow / --mapper; returns (name, mapper).

    ``--flow`` takes a registered flow name or a comma-separated pass
    spec and wins over ``--mapper``; ``--checked`` turns on per-pass
    equivalence verification and therefore needs a flow (the registered
    ``area`` / ``delay`` mappers count).  ``cache`` and ``--jobs`` are
    the performance-layer options, forwarded to the chortle engine
    wherever it appears in the resolved mapper.
    """
    flow_spec = getattr(args, "flow", None)
    # --checked is an optional-value flag: None (off), or the verify
    # method "sim"/"sat"/"auto" (bare --checked means "sim").
    checked_method = getattr(args, "checked", None)
    if checked_method is True:  # legacy boolean namespaces (tests, API)
        checked_method = "sim"
    checked = bool(checked_method)
    lint = bool(getattr(args, "lint", False))
    explain = bool(getattr(args, "explain", False))
    jobs = int(getattr(args, "jobs", 1) or 1)
    if flow_spec:
        from repro.flow import FlowMapperAdapter

        config = {}
        if cache is not None:
            config["cache"] = cache
        if jobs != 1:
            config["jobs"] = jobs
        flow = get_registry().resolve(flow_spec)
        return flow.name, FlowMapperAdapter(
            flow, k=args.k, checked=checked, lint=lint, explain=explain,
            config=config, verify_method=checked_method or "sim",
        )
    if (checked or lint) and args.mapper not in get_registry():
        raise ReproError(
            "--%s requires a flow; use --flow, or a flow mapper (%s)"
            % ("checked" if checked else "lint", ", ".join(get_registry().names()))
        )
    return args.mapper, resolve_mapper(
        args.mapper, args.k, checked=checked, lint=lint, cache=cache,
        jobs=jobs, explain=explain, verify_method=checked_method or "sim",
    )


@contextlib.contextmanager
def _trace_sink(path: Optional[str]):
    """Attach a JSON-lines sink to the global tracer for the duration."""
    if not path:
        yield None
        return
    try:
        sink = JsonLinesSink(path)
    except OSError as exc:
        raise ReproError("cannot write trace file %r: %s" % (path, exc)) from exc
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        yield sink
    finally:
        tracer.remove_sink(sink)
        sink.close()


def _print_stage_table(sink, stream=None) -> None:
    """Per-stage timing table: self time (hottest first) plus totals.

    Self time — a stage's duration minus its children's — is the column
    that attributes cost; inclusive wrappers such as ``cli.map`` sink to
    the bottom instead of dominating the table.
    """
    from repro.obs.traceview import aggregate_by_name, build_span_tree

    stream = stream if stream is not None else sys.stderr
    stats = aggregate_by_name(build_span_tree(sink.records))
    if not stats:
        print("no spans recorded", file=stream)
        return
    width = max(len(stat.name) for stat in stats)
    print(
        "%-*s %10s %10s %7s" % (width, "stage", "self", "total", "count"),
        file=stream,
    )
    for stat in stats:
        print(
            "%-*s %8.3fms %8.3fms %7d"
            % (
                width,
                stat.name,
                stat.self_seconds * 1e3,
                stat.total_seconds * 1e3,
                stat.count,
            ),
            file=stream,
        )


def _cmd_map(args: argparse.Namespace) -> int:
    net = _load_network(args.input, args.factor, getattr(args, "minimize", False))
    cache = _cli_cache(args)
    mapper_name, mapper = _resolve_cli_mapper(args, cache=cache)
    counters_before = get_metrics().counters()
    # Timing is routed through the tracer: the run is wrapped in one
    # span and the elapsed time read back from the captured record.
    with _trace_sink(args.trace), capture() as sink:
        with span("cli.map", mapper=mapper_name, k=args.k):
            circuit = mapper.map(net)
        if args.verify:
            vectors = verify_equivalence(net, circuit)
            print(
                "verified against %d input vectors" % vectors,
                file=sys.stderr,
            )
    elapsed = sink.by_name("cli.map")[0].duration
    _save_cli_cache(args, cache)
    lint_failed = False
    if getattr(args, "lint", False):
        lint_failed = _report_map_lint(getattr(mapper, "diagnostics", []))
    if getattr(args, "explain", False):
        _report_map_explain(mapper, mapper_name, args)
    if args.profile:
        _print_stage_table(sink)
    text = write_lut_circuit(circuit)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    if args.verilog:
        from repro.verilog import write_verilog_file

        write_verilog_file(circuit, args.verilog)
    if args.report or args.json_report:
        from repro.report import build_report

        report = build_report(
            net,
            circuit,
            args.k,
            mapper=mapper_name,
            seconds=elapsed,
            pack_blocks=args.clb,
            counters=get_metrics().counter_delta(counters_before) or None,
        )
        print(
            report.to_json() if args.json_report else report.to_text(),
            file=sys.stderr,
        )
    else:
        print(
            "%s: %d LUTs (K=%d, %d counting inverters), depth %d, %.3fs"
            % (
                mapper_name,
                circuit.cost,
                args.k,
                circuit.num_luts,
                circuit.depth(),
                elapsed,
            ),
            file=sys.stderr,
        )
    return 1 if lint_failed else 0


def _report_map_explain(mapper, mapper_name: str, args: argparse.Namespace) -> None:
    """Print/save the decision provenance a ``map --explain`` run recorded."""
    from repro.obs.explain import render_explanation

    explanation = getattr(mapper, "explanation", None)
    if explanation is None:
        print(
            "explain: n/a (mapper %r records no decisions)" % mapper_name,
            file=sys.stderr,
        )
        return
    explain_json = getattr(args, "explain_json", None)
    if explain_json:
        explanation.save(explain_json)
        print("wrote explanation to %s" % explain_json, file=sys.stderr)
    print(render_explanation(explanation), file=sys.stderr)


def _report_map_lint(diagnostics) -> bool:
    """Print per-stage lint findings; True when any is error-severity."""
    from repro.analysis import ERROR, at_least, render_text

    if not diagnostics:
        print("lint: clean (no diagnostics)", file=sys.stderr)
        return False
    print(render_text(diagnostics), file=sys.stderr)
    return any(at_least(d.severity, ERROR) for d in diagnostics)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Map with tracing on and print the span tree + counter summary."""
    net = _load_network(args.input, args.factor, getattr(args, "minimize", False))
    cache = _cli_cache(args)
    mapper_name, mapper = _resolve_cli_mapper(args, cache=cache)
    registry = get_metrics()
    counters_before = registry.counters()
    # span() must be evaluated after capture() attaches its sink, or it
    # resolves to the no-op span and the root never reaches the tree.
    with _trace_sink(args.trace), capture() as sink, span(
        "cli.profile", mapper=mapper_name, k=args.k
    ):
        circuit = mapper.map(net)
    _save_cli_cache(args, cache)
    print(
        "%s: %d LUTs (K=%d), depth %d"
        % (mapper_name, circuit.cost, args.k, circuit.depth())
    )
    print()
    print("span tree:")
    records = sink.records
    if not args.trees:
        records = [r for r in records if r.name != "chortle.map_tree"]
    print(render_span_tree(records))
    print()
    print("counters:")
    delta = registry.counter_delta(counters_before)
    if not delta:
        print("  (none)")
    for name, value in sorted(delta.items()):
        print("  %-32s %d" % (name, value))
    print()
    print("stage self time (hottest first):")
    _print_stage_table(sink, stream=sys.stdout)
    profile = circuit.tree_profile()
    print()
    print("largest trees (cost-counted LUTs, from per-LUT provenance):")
    if profile:
        worst = sorted(profile.items(), key=lambda kv: (-kv[1], kv[0]))
        for tree, luts in worst[:10]:
            print("  %-32s %d" % (tree, luts))
    else:
        print("  n/a (mapper records no provenance)")
    return 0


def _explain_network(spec: str):
    """The network named by an explain input: a BLIF path or cell name."""
    import os

    if os.path.exists(spec):
        return _load_network(spec, factor=False)
    from repro.bench.adversarial import ADVERSARIAL_PRESETS, resolve_cell

    if spec in MCNC_PROFILES or spec in ADVERSARIAL_PRESETS:
        return resolve_cell(spec)
    raise ReproError(
        "explain input %r is neither a readable BLIF file nor a known "
        "cell (MCNC profiles: %s; adversarial presets: %s)"
        % (
            spec,
            ", ".join(sorted(MCNC_PROFILES)),
            ", ".join(sorted(ADVERSARIAL_PRESETS)),
        )
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    """Map with decision recording on and render the explanation."""
    from repro.obs.explain import render_explanation

    net = _explain_network(args.input)
    mapper_name, mapper = _resolve_cli_mapper(args)
    circuit = mapper.map(net)
    explanation = getattr(mapper, "explanation", None)
    if explanation is None:
        print(
            "%s: %d LUTs (K=%d), depth %d"
            % (mapper_name, circuit.cost, args.k, circuit.depth()),
            file=sys.stderr,
        )
        print(
            "explain: n/a (mapper %r records no decisions)" % mapper_name,
            file=sys.stderr,
        )
        return 1
    if args.node is not None and explanation.filter_node(args.node).trees == []:
        known = sorted(
            {d.node for tree in explanation.trees for d in tree.nodes}
        )
        raise ReproError(
            "no decision recorded for node %r in %s (%d recorded nodes; "
            "e.g. %s)"
            % (args.node, explanation.circuit, len(known),
               ", ".join(known[:5]) or "none")
        )
    if args.format == "json":
        exp = (
            explanation
            if args.node is None
            else explanation.filter_node(args.node)
        )
        text = exp.to_json() + "\n"
    else:
        text = render_explanation(explanation, node=args.node) + "\n"
    if args.output:
        _write_text(args.output, text)
        print("wrote %s" % args.output, file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_flows(args: argparse.Namespace) -> int:
    """List the registered flows and the passes a custom spec can use."""
    from repro.flow import PASSES

    registry = get_registry()
    width = max(len(name) for name in registry.names())
    print("registered flows:")
    for flow in registry.flows():
        print("  %-*s  %s" % (width, flow.name, flow.spec))
        if flow.description:
            print("  %-*s    %s" % (width, "", flow.description))
    print()
    print("passes for custom --flow specs (comma-separated):")
    for name in sorted(PASSES):
        p = PASSES[name]
        print(
            "  %-14s %s -> %s" % (name, p.input_domain, p.output_domain)
        )
    return 0


def _cmd_mappers(args: argparse.Namespace) -> int:
    """List every resolvable mapper with its capability flags."""
    from repro.flow import mapper_capabilities

    rows = mapper_capabilities()
    width = max(len(row.name) for row in rows)
    print(
        "%-*s  %-5s  %-10s  %-5s  %-7s  %s"
        % (width, "mapper", "kind", "provenance", "cache", "K", "description")
    )
    for row in rows:
        lo, hi = row.k_range
        k_range = "%d-%s" % (lo, hi if hi is not None else "")
        print(
            "%-*s  %-5s  %-10s  %-5s  %-7s  %s"
            % (
                width,
                row.name,
                row.kind,
                "yes" if row.records_provenance else "no",
                "yes" if row.cache_aware else "no",
                k_range,
                row.description,
            )
        )
    return 0


def _mapped_circuit_from_blif(path: str):
    """Parse an already-mapped BLIF file (one table per LUT) as a circuit."""
    from repro.core.lut import LUTCircuit

    model = parse_blif_file(path)
    circuit = LUTCircuit(model.name)
    for name in model.inputs:
        circuit.add_input(name)
    for table in model.tables:
        circuit.add_lut(table.output, tuple(table.inputs), table.truth_table())
    for out in model.outputs:
        circuit.set_output(out, out)
    return circuit


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Timing and wiring analysis of an already-mapped BLIF circuit."""
    from repro.analysis import analyze_timing, analyze_wiring

    circuit = _mapped_circuit_from_blif(args.input)
    timing = analyze_timing(circuit)
    wiring = analyze_wiring(circuit)
    print("%s: %d LUTs (%d counted), depth %d" % (
        circuit.name, circuit.num_luts, circuit.cost, timing.depth))
    print("critical path (port %r): %s" % (
        timing.critical_port, " -> ".join(timing.critical_path)))
    print("nets: %d, pins: %d, max fanout: %d, avg fanout: %.2f" % (
        wiring.num_nets, wiring.total_pins, wiring.max_fanout,
        wiring.average_fanout))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Rule-based static analysis of networks, circuits, and flows."""
    from repro.analysis import (
        FlowArtifacts,
        LintContext,
        all_rules,
        apply_baseline,
        at_least,
        lint_circuit,
        lint_flow,
        lint_network,
        load_baseline,
        render_json,
        render_text,
    )
    from repro.analysis.suite import lint_suite

    if args.rules:
        width = max(len(r.code) for r in all_rules())
        for rule in all_rules():
            print(
                "%-*s %-5s %-8s %-18s %s"
                % (width, rule.code, rule.severity, rule.domain, rule.name,
                   rule.summary)
            )
        return 0
    if not (args.files or args.cell or args.suite or args.spec):
        raise ReproError(
            "nothing to lint: give BLIF files, --cell, --suite, or --spec "
            "(or --rules for the catalogue)"
        )
    diagnostics = []
    for path in args.files:
        if args.mapped:
            circuit = _mapped_circuit_from_blif(path)
            ctx = LintContext(k=args.k, subject=path)
            diagnostics.extend(lint_circuit(circuit, ctx))
            if args.semantic:
                from repro.analysis import lint_semantic

                diagnostics.extend(lint_semantic(circuit, ctx))
        else:
            net = _load_network(path, factor=False)
            diagnostics.extend(
                lint_network(net, LintContext(subject=path))
            )
    if args.spec:
        diagnostics.extend(
            lint_flow(FlowArtifacts(name="cli", spec=args.spec))
        )
    if args.cell or args.suite:
        ks = tuple(args.ks) if args.ks else ((args.k,) if args.cell else (2, 3, 4, 5))
        diagnostics.extend(
            lint_suite(
                circuits=args.cell or None,
                mappers=tuple(args.mappers),
                ks=ks,
                jobs=args.jobs,
                progress=bool(getattr(args, "progress", False)),
                semantic=bool(args.semantic),
            )
        )
    baseline = load_baseline(args.baseline) if args.baseline else None
    kept, suppressed = apply_baseline(diagnostics, baseline)
    report = (
        render_json(kept, suppressed=suppressed)
        if args.format == "json"
        else render_text(kept, suppressed=suppressed)
    )
    if args.output:
        _write_text(args.output, report + "\n")
        print("wrote %s" % args.output, file=sys.stderr)
    else:
        print(report)
    gating = [d for d in kept if at_least(d.severity, args.fail_on)]
    return 1 if gating else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    net = _load_network(args.input, args.factor)
    stats = network_stats(net)
    print(stats)
    print("fanin histogram: %s" % dict(sorted(stats.fanin_histogram.items())))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bench.adversarial import resolve_cell

    net = resolve_cell(args.profile)
    text = write_network(net)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    print(str(network_stats(net)), file=sys.stderr)
    return 0


#: Mappers the adversarial corpus gate sweeps by default: every
#: registered algorithmic mapper that targets arbitrary K.
CORPUS_MAPPERS = ("chortle", "mis", "cutmap", "flowmap", "binpack")

_AUTO_EXHAUSTIVE_LIMIT = 14


def _format_counterexample(vector) -> str:
    if not vector:
        return "(none)"
    return " ".join("%s=%d" % (n, vector[n]) for n in sorted(vector))


def _verify_pair(golden, candidate, method: str) -> dict:
    """Pairwise equivalence verdict as a plain dict (text/JSON agnostic).

    ``sat`` always proves; ``auto`` simulates exhaustively up to the
    input limit and proves above it; ``sim`` is the historical
    simulation path, whose above-limit verdict is a flagged sample.
    """
    from repro.core.lut import LUTCircuit
    from repro.errors import VerificationError
    from repro.verify import verify_equivalence as _verify_ckt
    from repro.verify import verify_network_equivalence as _verify_net

    num_inputs = len(golden.inputs)
    if method == "sat" or (
        method == "auto" and num_inputs > _AUTO_EXHAUSTIVE_LIMIT
    ):
        from repro.sat.miter import check_equivalence

        result = check_equivalence(golden, candidate)
        verdict = result.to_dict()
        verdict.update(inputs=num_inputs, proved=True, sampled=False)
        return verdict
    verify = _verify_ckt if isinstance(candidate, LUTCircuit) else _verify_net
    try:
        covered = verify(golden, candidate, method="sim")
    except VerificationError as exc:
        return {
            "equivalent": False,
            "method": "sim",
            "inputs": num_inputs,
            "detail": str(exc),
        }
    return {
        "equivalent": True,
        "method": covered.mode,
        "inputs": num_inputs,
        "vectors": int(covered),
        "proved": covered.proved,
        "sampled": covered.sampled,
    }


def _print_verify_verdict(verdict: dict) -> None:
    """Human-readable verdict: stdout keeps the historical one-liner."""
    if verdict["equivalent"]:
        print("equivalent")
        if verdict.get("sampled"):
            print(
                "warning: verdict is a %d-vector random sample, not a "
                "proof (use --method sat or auto)" % verdict.get("vectors", 0),
                file=sys.stderr,
            )
        else:
            how = (
                "SAT proof over %d output port(s)" % verdict["checked_outputs"]
                if verdict["method"] == "sat"
                else "exhaustive over %d vectors" % verdict.get("vectors", 0)
            )
            print("proved: %s" % how, file=sys.stderr)
        return
    print("NOT equivalent")
    if verdict.get("failing_output") is not None:
        print(
            "output %r differs (expected %d, got %d)"
            % (
                verdict["failing_output"],
                verdict["expected"],
                verdict["actual"],
            ),
            file=sys.stderr,
        )
        print(
            "counterexample: %s"
            % _format_counterexample(verdict.get("counterexample")),
            file=sys.stderr,
        )
    elif verdict.get("detail"):
        print(verdict["detail"], file=sys.stderr)


def _verify_per_lut(golden, circuit) -> dict:
    """Per-LUT cone verdict as a dict, printed alongside the whole check."""
    from repro.sat.miter import check_per_lut

    result = check_per_lut(golden, circuit)
    verdict = result.to_dict()
    if result.equivalent:
        print(
            "per-LUT: %d cone(s) proved (%d inverted, %d skipped)"
            % (
                result.checked_luts,
                len(result.inverted_luts),
                result.skipped_luts,
            ),
            file=sys.stderr,
        )
    else:
        print(
            "per-LUT: LUT %r is corrupted (expected %d, got %d)"
            % (result.failing_lut, result.expected, result.actual),
            file=sys.stderr,
        )
        print(
            "counterexample: %s"
            % _format_counterexample(result.counterexample),
            file=sys.stderr,
        )
    return verdict


def _verify_corpus(args: argparse.Namespace) -> int:
    """The sat-gate sweep: adversarial corpus x mappers, formally checked.

    Every cell must SAT-prove equivalent; with ``--semantic`` every
    mapped circuit additionally runs the CHRT4xx rules and any
    error-severity finding fails the gate.  Writes the row-per-cell JSON
    artifact to ``-o`` and exits 1 on the first-class failures only
    (inequivalence, semantic errors), never on warnings.
    """
    import json
    import time

    from repro.bench.adversarial import ADVERSARIAL_PRESETS, resolve_cell
    from repro.flow.mappers import supports_k
    from repro.sat.miter import check_equivalence

    cells = list(args.cell or ADVERSARIAL_PRESETS)
    rows = []
    failures = 0
    for name in cells:
        net = resolve_cell(name)
        for mapper_name in args.mappers:
            if not supports_k(mapper_name, args.k):
                continue
            started = time.perf_counter()
            circuit = resolve_mapper(mapper_name, args.k).map(net)
            result = check_equivalence(net, circuit)
            row = {
                "cell": name,
                "mapper": mapper_name,
                "k": args.k,
                "inputs": len(net.inputs),
                "luts": circuit.cost,
                "seconds": round(time.perf_counter() - started, 4),
                **result.to_dict(),
            }
            if args.semantic:
                from repro.analysis import ERROR, at_least, lint_mapping

                diags = lint_mapping(
                    net, circuit, k=args.k, semantic=True,
                    subject="%s[k=%d,%s]" % (name, args.k, mapper_name),
                )
                errors = [d for d in diags if at_least(d.severity, ERROR)]
                row["semantic_findings"] = len(diags)
                row["semantic_errors"] = len(errors)
                for diag in errors:
                    print("SEMANTIC %s" % diag, file=sys.stderr)
            ok = result.equivalent and not row.get("semantic_errors")
            if not ok:
                failures += 1
            print(
                "%-8s %-16s %-9s %3d in %4d LUTs %7.3fs%s"
                % (
                    "OK" if ok else "FAIL",
                    name,
                    mapper_name,
                    row["inputs"],
                    row["luts"],
                    row["seconds"],
                    ""
                    if result.equivalent
                    else "  output %r differs" % result.failing_output,
                )
            )
            rows.append(row)
    summary = {
        "k": args.k,
        "cells": cells,
        "mappers": list(args.mappers),
        "checked": len(rows),
        "failures": failures,
        "semantic": bool(args.semantic),
        "rows": rows,
    }
    if args.output:
        _write_text(args.output, json.dumps(summary, indent=2) + "\n")
        print("wrote %s" % args.output, file=sys.stderr)
    print(
        "sat gate: %d cell(s) checked, %d failure(s)" % (len(rows), failures)
    )
    return 1 if failures else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Formal/simulated equivalence checking: files, cells, or the corpus."""
    import json

    if args.corpus:
        return _verify_corpus(args)
    if args.cell:
        if args.files:
            raise ReproError("--cell and positional BLIF files are exclusive")
        if len(args.cell) != 1:
            raise ReproError("pairwise verify takes exactly one --cell")
        from repro.bench.adversarial import resolve_cell

        golden = resolve_cell(args.cell[0])
        candidate = resolve_mapper(args.mapper, args.k).map(golden)
    elif len(args.files) == 2:
        golden = _load_network(args.files[0], factor=False)
        if args.per_lut:
            candidate = _mapped_circuit_from_blif(args.files[1])
        else:
            candidate = _load_network(args.files[1], factor=False)
    else:
        raise ReproError(
            "verify needs two BLIF files, --cell NAME, or --corpus"
        )
    verdict = _verify_pair(golden, candidate, args.method)
    if args.format == "json":
        payload = dict(verdict)
    else:
        _print_verify_verdict(verdict)
        payload = None
    if args.per_lut:
        per_lut = _verify_per_lut(golden, candidate)
        if payload is not None:
            payload["per_lut"] = per_lut
        if not per_lut["equivalent"]:
            verdict = dict(verdict, equivalent=False)
    if payload is not None:
        text = json.dumps(payload, indent=2)
        if args.output:
            _write_text(args.output, text + "\n")
        else:
            print(text)
    return 0 if verdict["equivalent"] else 1


def _utc_timestamp() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _record_suite(args: argparse.Namespace):
    """Run the benchmark sweep described by the qor suite options."""
    from repro.bench.runner import run_suite

    result = run_suite(
        circuits=args.circuits or None,
        mappers=tuple(args.mappers),
        ks=tuple(args.ks),
        verify=args.verify,
        jobs=getattr(args, "jobs", 1),
        cache=getattr(args, "cache", False),
        progress=bool(getattr(args, "progress", False)),
    )
    return result.to_records(
        created_at=args.timestamp or _utc_timestamp(), label=args.label
    )


def _write_text(path: Optional[str], text: str) -> None:
    if not path:
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as exc:
        raise ReproError("cannot write %r: %s" % (path, exc)) from exc


def _finish_diff(diff, args: argparse.Namespace) -> int:
    """Print/record a QoR diff and turn it into an exit status."""
    _write_text(getattr(args, "markdown", None), diff.to_markdown())
    for cell in diff.regressions:
        print("REGRESSED %s" % cell.describe())
    for cell in diff.improvements:
        print("improved  %s" % cell.describe())
    for key in diff.removed:
        print("MISSING   (%s, K=%d, %s): cell absent from current run" % key)
    n_reg = len(diff.regressions)
    n_imp = len(diff.improvements)
    print(
        "qor diff: %d regressed, %d improved, %d unchanged (%d cells); gate %s"
        % (
            n_reg,
            n_imp,
            len(diff.cells) - n_reg - n_imp,
            len(diff.cells),
            "PASS" if diff.passes_gate() else "FAIL",
        )
    )
    return 0 if diff.passes_gate() else 1


def _cmd_qor_record(args: argparse.Namespace) -> int:
    record = _record_suite(args)
    record.save(args.output)
    print("wrote %s: %s" % (args.output, record.describe()), file=sys.stderr)
    return 0


def _cmd_qor_diff(args: argparse.Namespace) -> int:
    from repro.obs.qor import RunRecord
    from repro.obs.qordiff import diff_records

    baseline = RunRecord.load(args.baseline)
    current = RunRecord.load(args.current)
    return _finish_diff(diff_records(baseline, current), args)


def _cmd_qor_gate(args: argparse.Namespace) -> int:
    from repro.obs.qor import RunRecord
    from repro.obs.qordiff import diff_records

    baseline = RunRecord.load(args.baseline)
    current = _record_suite(args)
    if args.output:
        current.save(args.output)
        print(
            "wrote %s: %s" % (args.output, current.describe()), file=sys.stderr
        )
    return _finish_diff(diff_records(baseline, current), args)


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    """Measure the perf trajectory and write the BENCH_perf.json payload."""
    from repro.perf.benchperf import (
        render_bench_perf,
        run_bench_perf,
        save_bench_perf,
    )

    result = run_bench_perf(
        circuits=args.circuits or None,
        ks=tuple(args.ks) if args.ks else None,
        mappers=tuple(args.mappers),
        jobs=args.jobs,
        quick=args.quick,
        created_at=args.timestamp or _utc_timestamp(),
        warm_tolerance=args.warm_tolerance,
        cache_dir=args.cache_dir,
        progress=args.progress,
        matrix=not args.no_matrix,
    )
    if args.output:
        save_bench_perf(result, args.output)
        print("wrote %s" % args.output, file=sys.stderr)
    print(render_bench_perf(result))
    if args.gate and not result["gate"]["pass"]:
        return 1
    return 0


def _cmd_qor_report(args: argparse.Namespace) -> int:
    from repro.obs.qor import RunRecord
    from repro.obs.qordiff import render_record

    text = render_record(RunRecord.load(args.record))
    if args.output:
        _write_text(args.output, text)
    else:
        sys.stdout.write(text)
    return 0


def _perf_trace_records(args: argparse.Namespace):
    """Span records for ``perf top|flame``: a trace file, or a traced run.

    Without ``--trace`` the requested suite is run serially under one
    ``perf.suite`` root span, so every span nests under a single root
    and the self times telescope to the run's wall clock.
    """
    from repro.obs.traceview import load_trace

    if getattr(args, "trace", None):
        return load_trace(args.trace)
    from repro.bench.runner import run_suite

    # capture() must attach its sink before span() is evaluated, or the
    # tracer hands back the no-op span and the root never materializes.
    with capture() as sink, span(
        "perf.suite", mappers=",".join(args.mappers), ks=str(list(args.ks))
    ):
        run_suite(
            circuits=args.circuits or None,
            mappers=tuple(args.mappers),
            ks=tuple(args.ks),
            jobs=1,
            cache=getattr(args, "cache", False),
            progress=bool(getattr(args, "progress", False)),
        )
    return sink.records


def _cmd_perf_top(args: argparse.Namespace) -> int:
    """Self-time hotspot table plus the critical span path."""
    from repro.obs.traceview import (
        build_span_tree,
        critical_path,
        hotspots,
        render_critical_path,
        render_hotspots,
    )

    records = _perf_trace_records(args)
    if not records:
        print("no spans recorded", file=sys.stderr)
        return 1
    stats, wall = hotspots(records, top=args.top)
    print(render_hotspots(stats, wall))
    print()
    print(render_critical_path(critical_path(build_span_tree(records))))
    return 0


def _cmd_perf_flame(args: argparse.Namespace) -> int:
    """Folded stacks for ``flamegraph.pl`` / speedscope."""
    from repro.obs.traceview import folded_stacks

    records = _perf_trace_records(args)
    lines = folded_stacks(records)
    text = "\n".join(lines) + "\n" if lines else ""
    if args.output:
        _write_text(args.output, text)
        print(
            "wrote %d folded stacks to %s" % (len(lines), args.output),
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


def _perf_measure(args: argparse.Namespace):
    """Run bench-perf with the measure options and freeze a PerfRecord."""
    from repro.obs.perfrec import PerfRecord
    from repro.perf.benchperf import run_bench_perf

    payload = run_bench_perf(
        jobs=args.jobs,
        quick=args.quick,
        created_at=args.timestamp or _utc_timestamp(),
        progress=bool(getattr(args, "progress", False)),
    )
    return PerfRecord.from_bench(payload, label=args.label)


def _load_perf_record(path: str):
    """One perf record from ``path``.

    Accepts a saved record, a raw ``BENCH_perf.json``-shaped payload,
    or a history file (whose newest record wins), so any perf artifact
    the repo produces is a valid diff input.
    """
    from repro.errors import PerfError
    from repro.obs.perfrec import PerfHistory, PerfRecord

    try:
        return PerfRecord.load(path)
    except PerfError:
        pass
    record = PerfHistory.load(path).latest()
    if record is None:
        raise PerfError(
            "%r holds neither a perf record nor a non-empty perf history"
            % path
        )
    return record


def _finish_perf_diff(diff, args: argparse.Namespace, history=None,
                      current=None) -> int:
    """Print/record a perf diff and turn it into an exit status."""
    markdown = getattr(args, "markdown", None)
    if markdown:
        _write_text(markdown, diff.to_markdown(history, current))
        print("wrote %s" % markdown, file=sys.stderr)
    for note in diff.notes:
        print("note: %s" % note)
    for cell in diff.regressions:
        print("REGRESSED %s" % cell.describe())
    for cell in diff.improvements:
        print("improved  %s" % cell.describe())
    n_reg = len(diff.regressions)
    n_imp = len(diff.improvements)
    print(
        "perf diff: %d regressed, %d improved, %d unchanged (%d metrics); "
        "gate %s"
        % (
            n_reg,
            n_imp,
            len(diff.cells) - n_reg - n_imp,
            len(diff.cells),
            "PASS" if diff.passes_gate() else "FAIL",
        )
    )
    return 0 if diff.passes_gate() else 1


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from repro.obs.perfrec import PerfHistory

    record = _perf_measure(args)
    if args.output:
        record.save(args.output)
        print(
            "wrote %s: %s" % (args.output, record.describe()), file=sys.stderr
        )
    if not args.no_append:
        history = PerfHistory.load(args.history)
        history.append(record)
        history.save(args.history)
        print(
            "appended to %s (%d records): %s"
            % (args.history, len(history.records), record.describe()),
            file=sys.stderr,
        )
    return 0


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    from repro.obs.perfdiff import diff_perf_records

    baseline = _load_perf_record(args.baseline)
    current = _load_perf_record(args.current)
    diff = diff_perf_records(baseline, current)
    return _finish_perf_diff(diff, args, current=current)


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    """Measure (or load) a record and gate it against the history."""
    from repro.errors import PerfError
    from repro.obs.perfdiff import diff_perf_records
    from repro.obs.perfrec import PerfHistory, PerfRecord

    history = PerfHistory.load(args.history)
    if args.current:
        current = PerfRecord.load(args.current)
    else:
        current = _perf_measure(args)
    if args.output:
        current.save(args.output)
        print(
            "wrote %s: %s" % (args.output, current.describe()), file=sys.stderr
        )
    baseline, env_matched = history.baseline_for(current)
    if baseline is None:
        raise PerfError(
            "perf history %r has no records to gate against" % args.history
        )
    if not env_matched:
        print(
            "note: no history record matches this machine shape; gating "
            "portable ratios only",
            file=sys.stderr,
        )
    diff = diff_perf_records(baseline, current)
    return _finish_perf_diff(diff, args, history=history, current=current)


def _add_perf_options(p: argparse.ArgumentParser) -> None:
    """The performance-layer flags shared by ``map`` and ``profile``."""
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="map forest trees on N worker threads (default 1: serial)",
    )
    p.add_argument(
        "--cache",
        action="store_true",
        help="memoize node tables in the shared structural cache "
        "(results are bit-identical to uncached mapping)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the node-table cache under DIR across runs "
        "(implies --cache); only load cache files you wrote yourself",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chortle",
        description="Technology mapping for lookup table-based FPGAs "
        "(Chortle, DAC 1990 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="map a BLIF network into K-input LUTs")
    p_map.add_argument("input", help="input BLIF file")
    p_map.add_argument("-k", type=int, default=4, help="LUT input count (default 4)")
    p_map.add_argument("-o", "--output", help="output BLIF file (default stdout)")
    p_map.add_argument(
        "--mapper",
        choices=mapper_names(),
        default="chortle",
        help="mapping algorithm or registered flow (default chortle)",
    )
    p_map.add_argument(
        "--flow",
        metavar="NAME_OR_SPEC",
        help="map with a registered flow or a comma-separated pass spec "
        "(e.g. 'sweep,strash,chortle,merge'); overrides --mapper",
    )
    p_map.add_argument(
        "--checked",
        nargs="?",
        const="sim",
        default=None,
        choices=["sim", "sat", "auto"],
        metavar="METHOD",
        help="verify functional equivalence after every flow pass "
        "(requires a flow); optional METHOD picks how: sim (default, "
        "exhaustive-or-random simulation), sat (formal proof), or auto "
        "(exhaustive below 14 inputs, SAT proof above)",
    )
    p_map.add_argument(
        "--lint",
        action="store_true",
        help="run the lint rules after every flow pass, attribute findings "
        "to the emitting stage, and exit nonzero on errors (requires a flow)",
    )
    p_map.add_argument(
        "--factor",
        action="store_true",
        help="algebraically factor each table before mapping (MIS-script style)",
    )
    p_map.add_argument(
        "--minimize",
        action="store_true",
        help="two-level minimize each table (implies --factor)",
    )
    p_map.add_argument(
        "--verify",
        action="store_true",
        help="simulate the mapped circuit against the input network",
    )
    p_map.add_argument(
        "--report",
        action="store_true",
        help="print a structured mapping report to stderr",
    )
    p_map.add_argument(
        "--json-report",
        action="store_true",
        help="print the mapping report as JSON to stderr",
    )
    p_map.add_argument(
        "--verilog",
        metavar="FILE",
        help="also write the mapped circuit as structural Verilog",
    )
    p_map.add_argument(
        "--clb",
        action="store_true",
        help="include XC3000-style CLB packing figures in the report",
    )
    p_map.add_argument(
        "--explain",
        action="store_true",
        help="record the DP's decisions while mapping and print the "
        "explanation (area/depth attribution, per-node choices) to stderr",
    )
    p_map.add_argument(
        "--explain-json",
        metavar="FILE",
        help="with --explain: also save the explanation as schema-versioned "
        "JSON to FILE",
    )
    p_map.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSON-lines trace of mapping spans to FILE",
    )
    p_map.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing table to stderr",
    )
    _add_perf_options(p_map)
    p_map.set_defaults(func=_cmd_map)

    p_profile = sub.add_parser(
        "profile", help="map with tracing on; print span tree and counters"
    )
    p_profile.add_argument("input", help="input BLIF file")
    p_profile.add_argument(
        "-k", type=int, default=4, help="LUT input count (default 4)"
    )
    p_profile.add_argument(
        "--mapper",
        choices=mapper_names(),
        default="area",
        help="mapping flow to profile (default: the composed area flow)",
    )
    p_profile.add_argument(
        "--flow",
        metavar="NAME_OR_SPEC",
        help="profile a registered flow or comma-separated pass spec",
    )
    p_profile.add_argument(
        "--checked",
        nargs="?",
        const="sim",
        default=None,
        choices=["sim", "sat", "auto"],
        metavar="METHOD",
        help="verify functional equivalence after every flow pass "
        "(method: sim, sat, or auto; bare --checked means sim)",
    )
    p_profile.add_argument("--factor", action="store_true")
    p_profile.add_argument("--minimize", action="store_true")
    p_profile.add_argument(
        "--trace",
        metavar="FILE",
        help="also write the JSON-lines trace to FILE",
    )
    p_profile.add_argument(
        "--trees",
        action="store_true",
        help="include one span per mapped tree (verbose)",
    )
    _add_perf_options(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_explain = sub.add_parser(
        "explain",
        help="map with decision recording on; print the explanation "
        "(who pays area/depth, per-node DP choices)",
    )
    p_explain.add_argument(
        "input",
        help="input BLIF file, or an MCNC profile name (e.g. 9symml)",
    )
    p_explain.add_argument(
        "-k", type=int, default=4, help="LUT input count (default 4)"
    )
    p_explain.add_argument(
        "--mapper",
        choices=mapper_names(),
        default="chortle",
        help="mapper or flow to explain (default chortle; mappers without "
        "decision recording report n/a)",
    )
    p_explain.add_argument(
        "--flow",
        metavar="NAME_OR_SPEC",
        help="explain a registered flow or comma-separated pass spec; "
        "overrides --mapper",
    )
    p_explain.add_argument(
        "--node",
        metavar="NAME",
        help="drill down to the decision records for one tree node",
    )
    p_explain.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default text)",
    )
    p_explain.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="map forest trees on N worker threads (records are "
        "bit-identical to serial)",
    )
    p_explain.add_argument(
        "-o", "--output", help="write the explanation to this file"
    )
    p_explain.set_defaults(func=_cmd_explain, explain=True)

    p_perf = sub.add_parser(
        "bench-perf",
        help="time the benchmark suite serial/cached/warm/parallel; "
        "emit the BENCH_perf.json trajectory",
    )
    p_perf.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized subset (4 circuits, K in {3,4}) instead of the "
        "full Table 1-4 suite",
    )
    p_perf.add_argument(
        "--circuits",
        nargs="*",
        default=None,
        metavar="NAME",
        help="MCNC profile names (default: suite, or the --quick subset)",
    )
    p_perf.add_argument(
        "--ks",
        nargs="+",
        type=int,
        default=None,
        metavar="K",
        help="LUT input counts to sweep (default: 2 3 4 5, or 3 4 with "
        "--quick)",
    )
    p_perf.add_argument(
        "--mappers",
        nargs="+",
        default=["chortle"],
        metavar="MAPPER",
        help="mappers to time (default: chortle)",
    )
    p_perf.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker threads for the parallel phase (default 2)",
    )
    p_perf.add_argument(
        "--no-matrix",
        action="store_true",
        help="skip the process-executor jobs x pool-reuse matrix legs",
    )
    p_perf.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="also save the warm cache to DIR and verify the disk "
        "round trip",
    )
    p_perf.add_argument(
        "--warm-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="gate: warm may be at most this fraction slower than cold "
        "(default 0.20)",
    )
    p_perf.add_argument(
        "--gate",
        action="store_true",
        help="exit nonzero if the warm-vs-cold gate or the QoR identity "
        "check fails",
    )
    p_perf.add_argument(
        "-o", "--output", help="write the JSON payload to this file"
    )
    p_perf.add_argument(
        "--timestamp",
        default=None,
        help="created_at stamp for the payload (default: now, UTC ISO-8601)",
    )
    p_perf.add_argument(
        "--progress",
        action="store_true",
        help="per-cell heartbeat lines on stderr across all four phases",
    )
    p_perf.set_defaults(func=_cmd_bench_perf)

    p_flows = sub.add_parser(
        "flows", help="list registered mapping flows and available passes"
    )
    p_flows.set_defaults(func=_cmd_flows)

    p_mappers = sub.add_parser(
        "mappers",
        help="list registered mappers with their capability flags "
        "(provenance recording, cache awareness, supported K range)",
    )
    p_mappers.set_defaults(func=_cmd_mappers)

    p_analyze = sub.add_parser(
        "analyze", help="timing/wiring analysis of a mapped BLIF circuit"
    )
    p_analyze.add_argument("input", help="mapped BLIF file (one table per LUT)")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_lint = sub.add_parser(
        "lint",
        help="rule-based static analysis of networks, circuits, and flows",
    )
    p_lint.add_argument(
        "files",
        nargs="*",
        help="BLIF files to lint (networks by default; see --mapped)",
    )
    p_lint.add_argument(
        "--mapped",
        action="store_true",
        help="treat the input files as mapped LUT circuits (one table per "
        "LUT) and run the circuit rules instead of the network rules",
    )
    p_lint.add_argument(
        "-k",
        type=int,
        default=None,
        metavar="K",
        help="LUT input bound for the circuit rules (enables CHRT201)",
    )
    p_lint.add_argument(
        "--cell",
        nargs="+",
        metavar="NAME",
        help="map the named MCNC cells (with --mappers/--ks) and lint the "
        "complete mappings",
    )
    p_lint.add_argument(
        "--suite",
        action="store_true",
        help="map and lint every cell of the Table 1-4 QoR sweep",
    )
    from repro.analysis.suite import DEFAULT_MAPPERS as _LINT_MAPPERS

    p_lint.add_argument(
        "--mappers",
        nargs="+",
        default=list(_LINT_MAPPERS),
        metavar="MAPPER",
        help="mappers for --cell/--suite (default: %s)"
        % " ".join(_LINT_MAPPERS),
    )
    p_lint.add_argument(
        "--ks",
        nargs="+",
        type=int,
        default=None,
        metavar="K",
        help="K sweep for --cell/--suite (default: 2 3 4 5 for --suite, "
        "-k for --cell)",
    )
    p_lint.add_argument(
        "--semantic",
        action="store_true",
        help="also run the SAT-backed CHRT4xx semantic rules (constant "
        "cones, context-redundant inputs, duplicate-function pairs) on "
        "every linted circuit",
    )
    p_lint.add_argument(
        "--spec",
        metavar="FLOWSPEC",
        help="also lint a flow spec (e.g. 'sweep,strash,chortle') for "
        "composability",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default text)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=["info", "warn", "error"],
        default="error",
        help="exit nonzero when any finding reaches this severity "
        "(default error)",
    )
    p_lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppression baseline JSON "
        "(e.g. benchmarks/baselines/lint_baseline.json)",
    )
    p_lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan --cell/--suite cells across N worker processes",
    )
    p_lint.add_argument(
        "--progress",
        action="store_true",
        help="per-cell heartbeat lines on stderr while --cell/--suite "
        "audits run",
    )
    p_lint.add_argument(
        "-o", "--output", help="write the report to this file instead of stdout"
    )
    p_lint.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_stats = sub.add_parser("stats", help="print network statistics")
    p_stats.add_argument("input", help="input BLIF file")
    p_stats.add_argument("--factor", action="store_true")
    p_stats.set_defaults(func=_cmd_stats)

    p_gen = sub.add_parser(
        "generate",
        help="emit a synthetic MCNC-89 stand-in or adversarial circuit "
        "as BLIF",
    )
    from repro.bench.adversarial import ADVERSARIAL_PRESETS as _ADV_PRESETS

    p_gen.add_argument(
        "profile",
        choices=sorted(MCNC_PROFILES) + sorted(_ADV_PRESETS),
        help="benchmark profile or adversarial preset",
    )
    p_gen.add_argument("-o", "--output", help="output BLIF file (default stdout)")
    p_gen.set_defaults(func=_cmd_generate)

    p_verify = sub.add_parser(
        "verify",
        help="prove two BLIF files (or a cell and its mapping) equivalent",
    )
    p_verify.add_argument(
        "files",
        nargs="*",
        metavar="BLIF",
        help="golden and candidate BLIF files (exactly two)",
    )
    p_verify.add_argument(
        "--cell",
        nargs="+",
        metavar="NAME",
        help="instead of files: map the named MCNC/adversarial cell with "
        "--mapper and verify the mapping (one cell pairwise; with "
        "--corpus, restrict the sweep to these cells)",
    )
    p_verify.add_argument(
        "--mapper",
        choices=mapper_names(),
        default="chortle",
        help="mapper for --cell/--corpus (default chortle)",
    )
    p_verify.add_argument(
        "-k", type=int, default=4, help="LUT input count (default 4)"
    )
    p_verify.add_argument(
        "--method",
        choices=["sim", "sat", "auto"],
        default="auto",
        help="sim (historical simulation; above 14 inputs a flagged "
        "random sample), sat (always a formal proof), or auto (default: "
        "exhaustive below the limit, SAT proof above — always a proof)",
    )
    p_verify.add_argument(
        "--per-lut",
        action="store_true",
        help="also check per-LUT cones (MEC-style): localizes the first "
        "corrupted LUT with a counterexample; with files, the candidate "
        "is parsed as a mapped circuit",
    )
    p_verify.add_argument(
        "--corpus",
        action="store_true",
        help="SAT-verify the adversarial corpus across --mappers at -k "
        "(the CI sat gate); exits 1 on any failure",
    )
    p_verify.add_argument(
        "--mappers",
        nargs="+",
        default=list(CORPUS_MAPPERS),
        metavar="MAPPER",
        help="mappers for --corpus (default: %s)" % " ".join(CORPUS_MAPPERS),
    )
    p_verify.add_argument(
        "--semantic",
        action="store_true",
        help="with --corpus: also run the SAT-backed CHRT4xx semantic "
        "lint rules on every mapped circuit; error findings fail the gate",
    )
    p_verify.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="verdict format (default text)",
    )
    p_verify.add_argument(
        "-o", "--output", help="write the JSON verdict/artifact to this file"
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_qor = sub.add_parser(
        "qor", help="persistent QoR run records, baseline diffing, gating"
    )
    qor_sub = p_qor.add_subparsers(dest="qor_command", required=True)

    def add_suite_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--circuits",
            nargs="*",
            default=None,
            metavar="NAME",
            help="MCNC profile names (default: the Table 1-4 suite)",
        )
        p.add_argument(
            "--mappers",
            nargs="+",
            default=["chortle", "mis"],
            metavar="MAPPER",
            help="mappers to sweep (default: chortle mis)",
        )
        p.add_argument(
            "--ks",
            nargs="+",
            type=int,
            default=[2, 3, 4, 5],
            metavar="K",
            help="LUT input counts to sweep (default: 2 3 4 5)",
        )
        p.add_argument(
            "--verify",
            action="store_true",
            help="simulate every mapped circuit against its source",
        )
        p.add_argument("--label", default="", help="free-form record label")
        p.add_argument(
            "--timestamp",
            default=None,
            help="created_at stamp for the record (default: now, UTC ISO-8601)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="fan suite cells across N worker processes "
            "(deterministic, QoR-identical to serial)",
        )
        p.add_argument(
            "--cache",
            action="store_true",
            help="memoize node tables during the sweep (bit-identical)",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="per-cell heartbeat lines on stderr while the suite runs",
        )

    q_record = qor_sub.add_parser(
        "record", help="run the suite and save a QoR run record"
    )
    add_suite_options(q_record)
    q_record.add_argument(
        "-o", "--output", required=True, help="output run-record JSON file"
    )
    q_record.set_defaults(func=_cmd_qor_record)

    q_diff = qor_sub.add_parser(
        "diff", help="diff two run records; nonzero exit on gated regressions"
    )
    q_diff.add_argument("baseline", help="baseline run-record JSON file")
    q_diff.add_argument("current", help="current run-record JSON file")
    q_diff.add_argument(
        "--markdown", metavar="FILE", help="also write the markdown dashboard"
    )
    q_diff.set_defaults(func=_cmd_qor_diff)

    q_gate = qor_sub.add_parser(
        "gate", help="re-run the suite and diff it against a baseline record"
    )
    q_gate.add_argument("baseline", help="baseline run-record JSON file")
    add_suite_options(q_gate)
    q_gate.add_argument(
        "-o", "--output", help="also save the fresh run record to this file"
    )
    q_gate.add_argument(
        "--markdown", metavar="FILE", help="also write the markdown dashboard"
    )
    q_gate.set_defaults(func=_cmd_qor_gate)

    q_report = qor_sub.add_parser(
        "report", help="render one run record as a markdown QoR table"
    )
    q_report.add_argument("record", help="run-record JSON file")
    q_report.add_argument(
        "-o", "--output", help="write the markdown to this file (default stdout)"
    )
    q_report.set_defaults(func=_cmd_qor_report)

    from repro.obs.perfrec import DEFAULT_HISTORY_PATH

    p_perfobs = sub.add_parser(
        "perf",
        help="perf observatory: hotspots, flame graphs, records, gating",
    )
    perf_sub = p_perfobs.add_subparsers(dest="perf_command", required=True)

    def add_trace_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="analyze an existing --trace JSONL file instead of "
            "running the suite",
        )
        p.add_argument(
            "--circuits",
            nargs="*",
            default=None,
            metavar="NAME",
            help="MCNC profile names (default: the Table 1-4 suite)",
        )
        p.add_argument(
            "--ks",
            nargs="+",
            type=int,
            default=[4],
            metavar="K",
            help="LUT input counts to sweep (default: 4)",
        )
        p.add_argument(
            "--mappers",
            nargs="+",
            default=["chortle"],
            metavar="MAPPER",
            help="mappers to trace (default: chortle)",
        )
        p.add_argument(
            "--cache",
            action="store_true",
            help="memoize node tables during the traced run",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="heartbeat lines on stderr while the suite runs",
        )

    def add_measure_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--quick",
            action="store_true",
            help="CI-sized bench-perf subset instead of the full suite",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=2,
            metavar="N",
            help="worker threads for the parallel phase (default 2)",
        )
        p.add_argument("--label", default="", help="free-form record label")
        p.add_argument(
            "--timestamp",
            default=None,
            help="created_at stamp (default: now, UTC ISO-8601)",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="per-cell heartbeat lines on stderr while measuring",
        )
        p.add_argument(
            "--history",
            default=DEFAULT_HISTORY_PATH,
            metavar="FILE",
            help="perf history file (default: %s)" % DEFAULT_HISTORY_PATH,
        )

    pf_top = perf_sub.add_parser(
        "top",
        help="run the suite under one traced root; print the self-time "
        "hotspot table and critical path",
    )
    add_trace_options(pf_top)
    pf_top.add_argument(
        "-n",
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="rows in the hotspot table (default 15)",
    )
    pf_top.set_defaults(func=_cmd_perf_top)

    pf_flame = perf_sub.add_parser(
        "flame",
        help="emit folded stacks (self time per unique span stack) for "
        "flamegraph.pl or speedscope",
    )
    add_trace_options(pf_flame)
    pf_flame.add_argument(
        "-o", "--output", help="write the folded stacks to this file"
    )
    pf_flame.set_defaults(func=_cmd_perf_flame)

    pf_record = perf_sub.add_parser(
        "record",
        help="measure the perf trajectory and append it to the history",
    )
    add_measure_options(pf_record)
    pf_record.add_argument(
        "--no-append",
        action="store_true",
        help="do not append the record to the history file",
    )
    pf_record.add_argument(
        "-o", "--output", help="also save the record to this file"
    )
    pf_record.set_defaults(func=_cmd_perf_record)

    pf_diff = perf_sub.add_parser(
        "diff",
        help="diff two perf records; nonzero exit on gated regressions",
    )
    pf_diff.add_argument(
        "baseline", help="baseline record, bench payload, or history file"
    )
    pf_diff.add_argument(
        "current", help="current record, bench payload, or history file"
    )
    pf_diff.add_argument(
        "--markdown", metavar="FILE", help="also write the markdown dashboard"
    )
    pf_diff.set_defaults(func=_cmd_perf_diff)

    pf_gate = perf_sub.add_parser(
        "gate",
        help="measure (or load --current) and diff against the history's "
        "best-matching baseline; nonzero exit on regressions",
    )
    add_measure_options(pf_gate)
    pf_gate.add_argument(
        "--current",
        metavar="FILE",
        help="gate this pre-measured record/payload instead of re-measuring",
    )
    pf_gate.add_argument(
        "-o", "--output", help="also save the fresh record to this file"
    )
    pf_gate.add_argument(
        "--markdown", metavar="FILE", help="also write the markdown dashboard"
    )
    pf_gate.set_defaults(func=_cmd_perf_gate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
