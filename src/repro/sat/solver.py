"""A small CDCL SAT solver: watched literals, first-UIP learning, restarts.

Literals use the DIMACS convention — variable ``v`` is the positive
literal ``v`` and its negation is ``-v``; variables are allocated
densely from 1 via :meth:`CdclSolver.new_var`.  The solver is
incremental: clauses may be added between :meth:`CdclSolver.solve`
calls, and each call takes an optional assumption list, so one miter
encoding serves every output port of an equivalence check while learned
clauses carry over.

The implementation is the textbook MiniSat loop — two-watched-literal
propagation, first-UIP conflict analysis with non-recursive clause
minimization, VSIDS branching with phase saving, and Luby restarts —
kept deliberately compact: the instances this repository solves are
mapping miters of a few thousand clauses, not competition benchmarks.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SatError

_VAR_DECAY = 0.95
_RESCALE_LIMIT = 1e100
_RESTART_BASE = 128


def luby(i: int) -> int:
    """The i-th term (1-indexed) of the Luby restart sequence."""
    if i < 1:
        raise SatError("luby index must be >= 1, got %d" % i)
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while (1 << k) - 1 != i:
        i -= (1 << k) - 1
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
    return 1 << (k - 1)


class SolverStats:
    """Cumulative work counters of one solver instance."""

    __slots__ = (
        "solves",
        "decisions",
        "propagations",
        "conflicts",
        "learned",
        "restarts",
    )

    def __init__(self) -> None:
        self.solves = 0
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.learned = 0
        self.restarts = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _widx(lit: int) -> int:
    """Watch-list index of a literal: 2v for v, 2v+1 for -v."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


class CdclSolver:
    """Conflict-driven clause learning over a growable variable set."""

    def __init__(self) -> None:
        self.stats = SolverStats()
        self.ok = True
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._num_problem_clauses = 0
        # Indexed by variable: +1 true, -1 false, 0 unassigned.
        self._values: List[int] = [0]
        self._levels: List[int] = [0]
        self._reasons: List[Optional[int]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._seen = bytearray(1)
        # Indexed by _widx(lit): clause indices watching that literal.
        self._watches: List[List[int]] = [[], []]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._heap: List[Tuple[float, int]] = []
        self._var_inc = 1.0
        self._model: List[int] = []

    # -- problem construction ---------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return self._num_problem_clauses

    @property
    def num_learned(self) -> int:
        return len(self._clauses) - self._num_problem_clauses

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its positive literal."""
        self._num_vars += 1
        self._values.append(0)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._heap, (0.0, self._num_vars))
        return self._num_vars

    def _check_lit(self, lit: int) -> int:
        if not isinstance(lit, int) or lit == 0:
            raise SatError("literals must be non-zero ints, got %r" % (lit,))
        if abs(lit) > self._num_vars:
            raise SatError(
                "literal %d references variable beyond %d allocated"
                % (lit, self._num_vars)
            )
        return lit

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became unsatisfiable.

        Tautologies and level-0-satisfied clauses are dropped, duplicate
        and level-0-false literals removed.  Must not be called while a
        model from a previous :meth:`solve` is still being read — adding
        clauses backtracks all search state.
        """
        if not self.ok:
            return False
        self._backtrack(0)
        seen = set()
        out: List[int] = []
        for raw in lits:
            lit = self._check_lit(raw)
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._lit_value(lit)
            if val > 0:
                return True  # already true at level 0
            if val < 0:
                continue  # already false at level 0: drop the literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            self._enqueue(out[0], None)
            if self._propagate() is not None:
                self.ok = False
                return False
            return True
        ci = len(self._clauses)
        self._clauses.append(out)
        self._num_problem_clauses += 1
        self._watches[_widx(out[0])].append(ci)
        self._watches[_widx(out[1])].append(ci)
        return True

    # -- assignment plumbing ----------------------------------------------

    def _lit_value(self, lit: int) -> int:
        """+1 when the literal is true, -1 false, 0 unassigned."""
        val = self._values[abs(lit)]
        return val if lit > 0 else -val

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self._values[var] = 1 if lit > 0 else -1
        self._levels[var] = self._decision_level
        self._reasons[var] = reason
        self._trail.append(lit)

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        mark = self._trail_lim[level]
        for lit in reversed(self._trail[mark:]):
            var = abs(lit)
            self._phase[var] = lit > 0
            self._values[var] = 0
            self._reasons[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[mark:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- propagation -------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        clauses = self._clauses
        values = self._values
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            neg = -lit
            watchers = self._watches[_widx(neg)]
            i = j = 0
            count = len(watchers)
            while i < count:
                ci = watchers[i]
                i += 1
                clause = clauses[ci]
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                fval = values[abs(first)]
                if (fval if first > 0 else -fval) > 0:
                    watchers[j] = ci
                    j += 1
                    continue
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = values[abs(other)]
                    if (oval if other > 0 else -oval) >= 0:
                        clause[1], clause[k] = other, clause[1]
                        self._watches[_widx(other)].append(ci)
                        break
                else:
                    watchers[j] = ci
                    j += 1
                    if (fval if first > 0 else -fval) < 0:
                        while i < count:  # keep the unvisited watchers
                            watchers[j] = watchers[i]
                            j += 1
                            i += 1
                        del watchers[j:]
                        self._qhead = len(self._trail)
                        return ci
                    self._enqueue(first, ci)
            del watchers[j:]
        return None

    # -- conflict analysis -------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE_LIMIT:
            inv = 1.0 / _RESCALE_LIMIT
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= inv
            self._var_inc *= inv
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _analyze(self, confl: int) -> Tuple[List[int], int]:
        """First-UIP learned clause and its backjump level."""
        learnt: List[int] = [0]  # slot 0 becomes the asserting literal
        seen = self._seen
        levels = self._levels
        counter = 0
        p_lit = 0  # 0 on the first round: take every conflict literal
        index = len(self._trail) - 1
        clause = self._clauses[confl]
        while True:
            for lit in clause:
                if lit == p_lit:
                    continue
                var = abs(lit)
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if levels[var] >= self._decision_level:
                        counter += 1
                    else:
                        learnt.append(lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            assigned = self._trail[index]
            index -= 1
            counter -= 1
            seen[abs(assigned)] = 0
            if counter == 0:
                learnt[0] = -assigned
                break
            reason = self._reasons[abs(assigned)]
            assert reason is not None
            clause = self._clauses[reason]
            p_lit = assigned

        # Non-recursive minimization: a kept literal is redundant when
        # its reason clause is entirely inside the learned clause.
        kept = [learnt[0]]
        for lit in learnt[1:]:
            reason = self._reasons[abs(lit)]
            if reason is None:
                kept.append(lit)
                continue
            for other in self._clauses[reason]:
                var = abs(other)
                if other != -lit and not seen[var] and levels[var] > 0:
                    kept.append(lit)
                    break
        for lit in learnt[1:]:
            seen[abs(lit)] = 0

        if len(kept) == 1:
            return kept, 0
        # Move the deepest remaining literal to the watch slot.
        widest = 1
        for k in range(2, len(kept)):
            if levels[abs(kept[k])] > levels[abs(kept[widest])]:
                widest = k
        kept[1], kept[widest] = kept[widest], kept[1]
        return kept, levels[abs(kept[1])]

    def _learn(self, learnt: List[int]) -> None:
        self.stats.learned += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        ci = len(self._clauses)
        self._clauses.append(learnt)
        self._watches[_widx(learnt[0])].append(ci)
        self._watches[_widx(learnt[1])].append(ci)
        self._enqueue(learnt[0], ci)

    # -- branching ---------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        heap = self._heap
        while heap:
            _, var = heapq.heappop(heap)
            if self._values[var] == 0:
                return var if self._phase[var] else -var
        return None

    # -- the search loop ---------------------------------------------------

    def solve(
        self,
        assumptions: Iterable[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> bool:
        """True when satisfiable under ``assumptions``.

        Raises :class:`SatError` when ``max_conflicts`` is exhausted
        before a verdict — callers treating SAT results as proofs must
        never silently accept a budget blowout as either answer.
        """
        assumed = [self._check_lit(a) for a in assumptions]
        self.stats.solves += 1
        if not self.ok:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self.ok = False
            return False

        restart_round = 0
        budget = _RESTART_BASE * luby(1)
        conflicts_here = 0
        total_conflicts = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                total_conflicts += 1
                if max_conflicts is not None and total_conflicts > max_conflicts:
                    self._backtrack(0)
                    raise SatError(
                        "conflict budget %d exhausted" % max_conflicts
                    )
                if self._decision_level == 0:
                    self.ok = False
                    return False
                learnt, back_level = self._analyze(confl)
                self._backtrack(back_level)
                self._learn(learnt)
                self._var_inc /= _VAR_DECAY
                continue
            if conflicts_here >= budget:
                self.stats.restarts += 1
                restart_round += 1
                budget = _RESTART_BASE * luby(restart_round + 1)
                conflicts_here = 0
                self._backtrack(0)
                continue
            decision = 0
            for lit in assumed:
                val = self._lit_value(lit)
                if val < 0:
                    # Forced false by level-0 facts and earlier
                    # assumptions alone: unsatisfiable under assumptions.
                    self._backtrack(0)
                    return False
                if val == 0:
                    decision = lit
                    break
            if decision == 0:
                picked = self._pick_branch()
                if picked is None:
                    self._model = list(self._values)
                    self._backtrack(0)
                    return True
                decision = picked
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    # -- model access ------------------------------------------------------

    def model_value(self, lit: int) -> bool:
        """The last model's value of a literal (False when unassigned)."""
        if not self._model:
            raise SatError("no model: the last solve() did not return SAT")
        self._check_lit(lit)
        val = self._model[abs(lit)]
        return (val > 0) if lit > 0 else (val < 0)
