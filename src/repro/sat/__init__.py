"""SAT-backed formal verification: CNF encoding, CDCL solving, miters.

The package splits along the classic layering:

* :mod:`repro.sat.solver` — a pure CDCL solver over DIMACS-style
  integer literals (no knowledge of networks or circuits);
* :mod:`repro.sat.cnf` — Tseitin encoding of
  :class:`~repro.network.network.BooleanNetwork` and
  :class:`~repro.core.lut.LUTCircuit` subjects into one shared CNF;
* :mod:`repro.sat.miter` — whole-circuit and per-LUT equivalence
  checking built on the two.

See docs/VERIFICATION.md for the architecture and the decision table
of when ``verify`` picks SAT over simulation.
"""

from repro.sat.cnf import (
    Encoder,
    circuit_output_lits,
    network_output_lits,
)
from repro.sat.miter import (
    EquivalenceResult,
    PerLutResult,
    check_equivalence,
    check_per_lut,
)
from repro.sat.solver import CdclSolver, SolverStats, luby

__all__ = [
    "CdclSolver",
    "Encoder",
    "EquivalenceResult",
    "PerLutResult",
    "SolverStats",
    "check_equivalence",
    "check_per_lut",
    "circuit_output_lits",
    "luby",
    "network_output_lits",
]
