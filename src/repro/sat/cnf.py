"""Tseitin CNF encoding of boolean networks and LUT circuits.

The :class:`Encoder` owns one growing CNF inside a solver and hands out
literals for named signals.  Both sides of a miter are encoded through
the *same* encoder, so primary inputs share variables by name and
structurally identical subfunctions collapse to one literal through the
strash cache — the CNF-level analogue of structural hashing, which is
what makes mapper-vs-mapper miters (mostly isomorphic logic) cheap.

Gate encodings:

* n-ary AND — ``n + 1`` clauses; OR is encoded as the AND dual so the
  two share strash entries.
* XOR — 4 clauses, with sign-canonicalized operands.
* LUT truth tables — special forms are recognized first (constant,
  wire/inverter, single minterm/maxterm, 2-input XOR, n-input parity,
  all after shrinking the table to its true support) and routed through
  the structural constructors; the general case emits one clause per
  table row (``2^k`` clauses of width ``k + 1``, fine for the K ≤ 6
  LUTs this repository maps).

Polarity lives on literals, mirroring how the network keeps inversion
on edges — there is no NOT node in either representation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.lut import LUTCircuit
from repro.errors import SatError
from repro.network.network import AND, CONST0, CONST1, INPUT, BooleanNetwork
from repro.sat.solver import CdclSolver
from repro.truth.truthtable import TruthTable

_StrashKey = Tuple[object, ...]

_PARITY_CACHE: Dict[int, int] = {}


def _parity_bits(nvars: int) -> int:
    """Truth-table bits of the odd-parity function of ``nvars`` inputs."""
    cached = _PARITY_CACHE.get(nvars)
    if cached is None:
        cached = 0
        for m in range(1 << nvars):
            if bin(m).count("1") & 1:
                cached |= 1 << m
        _PARITY_CACHE[nvars] = cached
    return cached


def _shrink_to_support(
    tt: TruthTable, lits: Sequence[int]
) -> Tuple[TruthTable, List[int]]:
    """Project a table down to the variables it actually depends on."""
    support = tt.support()
    if len(support) == tt.nvars:
        return tt, list(lits)
    bits = 0
    for mm in range(1 << len(support)):
        full = 0
        for j, var in enumerate(support):
            if (mm >> j) & 1:
                full |= 1 << var
        if tt.value(full):
            bits |= 1 << mm
    return TruthTable(len(support), bits), [lits[j] for j in support]


class Encoder:
    """Shared-variable Tseitin encoder over one solver instance."""

    def __init__(self, solver: CdclSolver):
        self.solver = solver
        self.strash_hits = 0
        self._true: Optional[int] = None
        self._strash: Dict[_StrashKey, int] = {}
        self._inputs: Dict[str, int] = {}

    # -- primitives ---------------------------------------------------------

    @property
    def inputs(self) -> Dict[str, int]:
        """Every primary-input literal handed out so far, by name."""
        return dict(self._inputs)

    def input_lit(self, name: str) -> int:
        """The literal of a primary input; shared across encodings by name."""
        lit = self._inputs.get(name)
        if lit is None:
            lit = self.solver.new_var()
            self._inputs[name] = lit
        return lit

    def true_lit(self) -> int:
        """The literal of the constant-true function (one unit clause)."""
        if self._true is None:
            self._true = self.solver.new_var()
            self.solver.add_clause([self._true])
        return self._true

    def false_lit(self) -> int:
        return -self.true_lit()

    def const_lit(self, value: bool) -> int:
        return self.true_lit() if value else self.false_lit()

    def is_true(self, lit: int) -> bool:
        """True when ``lit`` is structurally the constant-true literal."""
        return self._true is not None and lit == self._true

    def is_false(self, lit: int) -> bool:
        return self._true is not None and lit == -self._true

    # -- structural constructors ---------------------------------------------

    def lit_and(self, lits: Sequence[int]) -> int:
        """The literal of the conjunction, with folding and strashing."""
        out: List[int] = []
        seen: Set[int] = set()
        for lit in lits:
            if self.is_false(lit):
                return self.false_lit()
            if self.is_true(lit):
                continue
            if -lit in seen:
                return self.false_lit()
            if lit in seen:
                continue
            seen.add(lit)
            out.append(lit)
        if not out:
            return self.true_lit()
        if len(out) == 1:
            return out[0]
        out.sort()
        key: _StrashKey = ("and",) + tuple(out)
        cached = self._strash.get(key)
        if cached is not None:
            self.strash_hits += 1
            return cached
        y = self.solver.new_var()
        for lit in out:
            self.solver.add_clause([-y, lit])
        self.solver.add_clause([y] + [-lit for lit in out])
        self._strash[key] = y
        return y

    def lit_or(self, lits: Sequence[int]) -> int:
        """The disjunction, encoded as the AND dual (shares strash entries)."""
        return -self.lit_and([-lit for lit in lits])

    def lit_xor(self, a: int, b: int) -> int:
        """The exclusive-or of two literals (4 clauses, sign-canonical)."""
        if a == b:
            return self.false_lit()
        if a == -b:
            return self.true_lit()
        if self.is_true(a):
            return -b
        if self.is_false(a):
            return b
        if self.is_true(b):
            return -a
        if self.is_false(b):
            return a
        sign = 1
        if a < 0:
            a, sign = -a, -sign
        if b < 0:
            b, sign = -b, -sign
        if a > b:
            a, b = b, a
        key: _StrashKey = ("xor", a, b)
        cached = self._strash.get(key)
        if cached is not None:
            self.strash_hits += 1
            return sign * cached
        y = self.solver.new_var()
        self.solver.add_clause([-y, a, b])
        self.solver.add_clause([-y, -a, -b])
        self.solver.add_clause([y, -a, b])
        self.solver.add_clause([y, a, -b])
        self._strash[key] = y
        return sign * y

    def lit_lut(self, tt: TruthTable, lits: Sequence[int]) -> int:
        """The literal of an arbitrary truth table applied to ``lits``."""
        if tt.nvars != len(lits):
            raise SatError(
                "LUT table has %d variables but %d input literals"
                % (tt.nvars, len(lits))
            )
        tt, pins = _shrink_to_support(tt, lits)
        n = tt.nvars
        if n == 0:
            return self.const_lit(bool(tt.bits))
        if n == 1:
            return pins[0] if tt.bits == 0b10 else -pins[0]
        size = 1 << n
        ones = tt.count_ones()
        if ones == 1:
            m = next(iter(tt.minterms()))
            return self.lit_and(
                [pins[j] if (m >> j) & 1 else -pins[j] for j in range(n)]
            )
        if ones == size - 1:
            inv = ~tt
            m = next(iter(inv.minterms()))
            return -self.lit_and(
                [pins[j] if (m >> j) & 1 else -pins[j] for j in range(n)]
            )
        parity = _parity_bits(n)
        if tt.bits == parity or tt.bits == parity ^ ((1 << size) - 1):
            acc = pins[0]
            for lit in pins[1:]:
                acc = self.lit_xor(acc, lit)
            return acc if tt.bits == parity else -acc
        key: _StrashKey = ("lut", n, tt.bits) + tuple(pins)
        cached = self._strash.get(key)
        if cached is not None:
            self.strash_hits += 1
            return cached
        y = self.solver.new_var()
        bits = tt.bits
        for m in range(size):
            clause = [-pins[j] if (m >> j) & 1 else pins[j] for j in range(n)]
            clause.append(y if (bits >> m) & 1 else -y)
            self.solver.add_clause(clause)
        self._strash[key] = y
        return y

    # -- whole-subject encodings ----------------------------------------------

    def encode_network(self, net: BooleanNetwork) -> Dict[str, int]:
        """Encode every node; returns the node-name → literal map."""
        for name in net.inputs:
            self.input_lit(name)
        lits: Dict[str, int] = {}
        for name in net.topological_order():
            node = net.node(name)
            if node.op == INPUT:
                lits[name] = self.input_lit(name)
            elif node.op == CONST0:
                lits[name] = self.false_lit()
            elif node.op == CONST1:
                lits[name] = self.true_lit()
            else:
                fanins = [
                    -lits[sig.name] if sig.inv else lits[sig.name]
                    for sig in node.fanins
                ]
                if node.op == AND:
                    lits[name] = self.lit_and(fanins)
                else:
                    lits[name] = self.lit_or(fanins)
        return lits

    def encode_circuit(self, circuit: LUTCircuit) -> Dict[str, int]:
        """Encode every LUT; returns the wire-name → literal map."""
        lits: Dict[str, int] = {}
        for name in circuit.inputs:
            lits[name] = self.input_lit(name)
        for name in circuit.topological_order():
            lut = circuit.lut(name)
            lits[name] = self.lit_lut(lut.tt, [lits[src] for src in lut.inputs])
        return lits


def network_output_lits(
    net: BooleanNetwork, node_lits: Dict[str, int]
) -> Dict[str, int]:
    """Output-port literals of an encoded network (edge polarity applied)."""
    return {
        port: (-node_lits[sig.name] if sig.inv else node_lits[sig.name])
        for port, sig in net.outputs.items()
    }


def circuit_output_lits(
    circuit: LUTCircuit, wire_lits: Dict[str, int]
) -> Dict[str, int]:
    """Output-port literals of an encoded LUT circuit."""
    return {port: wire_lits[wire] for port, wire in circuit.outputs.items()}
