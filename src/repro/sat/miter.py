"""Miter-based formal equivalence checking, whole-circuit and per-LUT.

Both granularities encode the two subjects into one CNF through a
shared :class:`~repro.sat.cnf.Encoder` (shared primary-input variables,
cross-side strashing) and ask the CDCL solver one XOR-miter question
per compared signal, under an assumption literal so learned clauses
carry across questions:

* :func:`check_equivalence` compares output ports.  A cheap bit-parallel
  random-simulation pass runs first — an inequivalent pair almost always
  falls to simulation with a concrete counterexample before any CNF is
  built; the SAT pass then *proves* the equivalent direction, which
  simulation alone never can beyond the exhaustive input limit.
* :func:`check_per_lut` is the MEC-style fine granularity: every
  candidate LUT whose name also exists in the golden subject is checked
  cone-against-cone over the primary inputs, in topological order, so
  the first mismatch names the corrupted LUT and carries a concrete
  counterexample input vector.  A cone that matches the reference with
  inverted polarity is reported (not failed): LUT mappers legally absorb
  edge inversions into tables.

Every check feeds the ``sat.*`` counter namespace and runs under a
``sat.check`` span (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.lut import LUTCircuit
from repro.errors import VerificationError
from repro.network.network import BooleanNetwork
from repro.network.simulate import simulate
from repro.obs import metrics, span
from repro.sat.cnf import (
    Encoder,
    circuit_output_lits,
    network_output_lits,
)
from repro.sat.solver import CdclSolver

Subject = Union[BooleanNetwork, LUTCircuit]

_SIM_WIDTH = 256
_SIM_SEED = 0x5A75


@dataclass(frozen=True)
class EquivalenceResult:
    """Verdict of one whole-circuit equivalence check."""

    equivalent: bool
    checked_outputs: int
    #: "sat" when the verdict is a proof; "sim" when a random-simulation
    #: pass refuted equivalence before any CNF was built.  Both carry a
    #: concrete counterexample on mismatch, so both are conclusive.
    method: str = "sat"
    failing_output: Optional[str] = None
    counterexample: Optional[Dict[str, int]] = None
    expected: Optional[int] = None
    actual: Optional[int] = None
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "equivalent": self.equivalent,
            "checked_outputs": self.checked_outputs,
            "method": self.method,
            "failing_output": self.failing_output,
            "counterexample": self.counterexample,
            "expected": self.expected,
            "actual": self.actual,
            "stats": dict(self.stats),
        }


@dataclass(frozen=True)
class PerLutResult:
    """Verdict of one per-LUT cone-checking pass."""

    equivalent: bool
    checked_luts: int
    skipped_luts: int
    #: Cones proved equal to the reference *complemented* — legal for a
    #: LUT mapper (polarity absorbed into downstream tables), surfaced
    #: so callers can distinguish exact from inverted matches.
    inverted_luts: Tuple[str, ...] = ()
    failing_lut: Optional[str] = None
    counterexample: Optional[Dict[str, int]] = None
    expected: Optional[int] = None
    actual: Optional[int] = None
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "equivalent": self.equivalent,
            "checked_luts": self.checked_luts,
            "skipped_luts": self.skipped_luts,
            "inverted_luts": list(self.inverted_luts),
            "failing_lut": self.failing_lut,
            "counterexample": self.counterexample,
            "expected": self.expected,
            "actual": self.actual,
            "stats": dict(self.stats),
        }


# -- subject plumbing ---------------------------------------------------------


def _subject_inputs(subject: Subject) -> Tuple[str, ...]:
    return subject.inputs


def _output_words(
    subject: Subject, words: Dict[str, int], width: int
) -> Dict[str, int]:
    """Bit-parallel output-port words of either subject kind."""
    mask = (1 << width) - 1
    if isinstance(subject, LUTCircuit):
        values = subject.simulate(words, width)
        return {port: values[wire] for port, wire in subject.outputs.items()}
    values = simulate(subject, words, width)
    out: Dict[str, int] = {}
    for port, sig in subject.outputs.items():
        word = values[sig.name]
        out[port] = (~word & mask) if sig.inv else word
    return out


def _check_interfaces(golden: Subject, candidate: Subject) -> List[str]:
    """Validate shared inputs/ports; returns the ports to compare."""
    if set(golden.inputs) != set(candidate.inputs):
        raise VerificationError(
            "input sets differ: %s vs %s"
            % (sorted(golden.inputs), sorted(candidate.inputs))
        )
    missing = set(golden.outputs) - set(candidate.outputs)
    if missing:
        raise VerificationError("missing output ports: %s" % sorted(missing))
    return sorted(golden.outputs)


def _encode(encoder: Encoder, subject: Subject) -> Dict[str, int]:
    if isinstance(subject, LUTCircuit):
        return encoder.encode_circuit(subject)
    return encoder.encode_network(subject)


def _encode_outputs(encoder: Encoder, subject: Subject) -> Dict[str, int]:
    lits = _encode(encoder, subject)
    if isinstance(subject, LUTCircuit):
        return circuit_output_lits(subject, lits)
    return network_output_lits(subject, lits)


def _model_vector(solver: CdclSolver, encoder: Encoder) -> Dict[str, int]:
    return {
        name: int(solver.model_value(lit))
        for name, lit in sorted(encoder.inputs.items())
    }


def _finish_stats(solver: CdclSolver, encoder: Encoder) -> Dict[str, int]:
    stats = solver.stats
    metrics.count("sat.solves", stats.solves)
    metrics.count("sat.conflicts", stats.conflicts)
    metrics.count("sat.decisions", stats.decisions)
    metrics.count("sat.propagations", stats.propagations)
    metrics.count("sat.learned", stats.learned)
    metrics.count("sat.restarts", stats.restarts)
    return {
        "vars": solver.num_vars,
        "clauses": solver.num_clauses,
        "strash_hits": encoder.strash_hits,
        **stats.to_dict(),
    }


# -- whole-circuit checking ---------------------------------------------------


def _simulation_counterexample(
    golden: Subject, candidate: Subject, ports: List[str]
) -> Optional[EquivalenceResult]:
    """A random-vector refutation, or None when simulation finds nothing."""
    inputs = _subject_inputs(golden)
    if not inputs:
        return None
    rng = random.Random(_SIM_SEED)
    words = {name: rng.getrandbits(_SIM_WIDTH) for name in inputs}
    golden_words = _output_words(golden, words, _SIM_WIDTH)
    cand_words = _output_words(candidate, words, _SIM_WIDTH)
    mask = (1 << _SIM_WIDTH) - 1
    for port in ports:
        diff = (golden_words[port] ^ cand_words[port]) & mask
        if not diff:
            continue
        bit = (diff & -diff).bit_length() - 1
        metrics.count("sat.sim_refutations")
        return EquivalenceResult(
            equivalent=False,
            checked_outputs=len(ports),
            method="sim",
            failing_output=port,
            counterexample={n: (words[n] >> bit) & 1 for n in inputs},
            expected=(golden_words[port] >> bit) & 1,
            actual=(cand_words[port] >> bit) & 1,
        )
    return None


def check_equivalence(
    golden: Subject,
    candidate: Subject,
    use_simulation: bool = True,
    max_conflicts: Optional[int] = None,
) -> EquivalenceResult:
    """Prove or refute output-port equivalence of two subjects.

    Subjects may be networks or LUT circuits in any combination; they
    must share input names, and every golden port must exist in the
    candidate.  The returned verdict is always conclusive: equivalence
    is an UNSAT proof per port, inequivalence carries a counterexample.
    """
    with span(
        "sat.check",
        golden=golden.name,
        candidate=candidate.name,
        granularity="whole",
    ) as sp:
        metrics.count("sat.checks")
        ports = _check_interfaces(golden, candidate)
        if use_simulation:
            refuted = _simulation_counterexample(golden, candidate, ports)
            if refuted is not None:
                sp.set("result", "counterexample-sim")
                return refuted
        solver = CdclSolver()
        encoder = Encoder(solver)
        golden_out = _encode_outputs(encoder, golden)
        cand_out = _encode_outputs(encoder, candidate)
        for port in ports:
            miter = encoder.lit_xor(golden_out[port], cand_out[port])
            if encoder.is_false(miter):
                continue  # strash collapsed both sides to one literal
            if encoder.is_true(miter):
                satisfiable = True  # proven complements: all vectors differ
            else:
                satisfiable = solver.solve([miter], max_conflicts=max_conflicts)
            if satisfiable:
                if encoder.is_true(miter):
                    vector = {name: 0 for name in sorted(encoder.inputs)}
                    expected = _output_words(
                        golden, {n: 0 for n in golden.inputs}, 1
                    )[port] & 1
                    actual = expected ^ 1
                else:
                    vector = _model_vector(solver, encoder)
                    expected = int(solver.model_value(golden_out[port]))
                    actual = int(solver.model_value(cand_out[port]))
                sp.set("result", "counterexample-sat")
                return EquivalenceResult(
                    equivalent=False,
                    checked_outputs=len(ports),
                    failing_output=port,
                    counterexample=vector,
                    expected=expected,
                    actual=actual,
                    stats=_finish_stats(solver, encoder),
                )
        sp.set("result", "equivalent")
        metrics.count("sat.proofs")
        return EquivalenceResult(
            equivalent=True,
            checked_outputs=len(ports),
            stats=_finish_stats(solver, encoder),
        )


# -- per-LUT cone checking ----------------------------------------------------


def check_per_lut(
    golden: Subject,
    candidate: LUTCircuit,
    max_conflicts: Optional[int] = None,
) -> PerLutResult:
    """MEC-style cone checking: localize the first mismatching LUT.

    Every candidate LUT whose name exists in the golden subject (a
    network node or a golden-circuit wire) is compared against that
    reference cone over the shared primary inputs.  LUTs with no golden
    namesake — synthetic decomposition wires — are skipped and counted.
    """
    with span(
        "sat.check",
        golden=golden.name,
        candidate=candidate.name,
        granularity="per-lut",
    ) as sp:
        metrics.count("sat.checks")
        if set(golden.inputs) != set(candidate.inputs):
            raise VerificationError(
                "input sets differ: %s vs %s"
                % (sorted(golden.inputs), sorted(candidate.inputs))
            )
        solver = CdclSolver()
        encoder = Encoder(solver)
        reference = _encode(encoder, golden)
        wires = encoder.encode_circuit(candidate)
        checked = skipped = 0
        inverted: List[str] = []
        for name in candidate.topological_order():
            ref_lit = reference.get(name)
            if ref_lit is None:
                skipped += 1
                continue
            checked += 1
            cand_lit = wires[name]
            miter = encoder.lit_xor(ref_lit, cand_lit)
            if encoder.is_false(miter):
                continue
            if encoder.is_true(miter):
                inverted.append(name)
                continue
            if not solver.solve([miter], max_conflicts=max_conflicts):
                continue  # proved equal
            vector = _model_vector(solver, encoder)
            expected = int(solver.model_value(ref_lit))
            actual = int(solver.model_value(cand_lit))
            if not solver.solve([-miter], max_conflicts=max_conflicts):
                inverted.append(name)  # proved complement
                continue
            sp.set("result", "corrupted")
            sp.set("failing_lut", name)
            metrics.count("sat.lut_mismatches")
            return PerLutResult(
                equivalent=False,
                checked_luts=checked,
                skipped_luts=skipped,
                inverted_luts=tuple(inverted),
                failing_lut=name,
                counterexample=vector,
                expected=expected,
                actual=actual,
                stats=_finish_stats(solver, encoder),
            )
        sp.set("result", "equivalent")
        sp.set("checked_luts", checked)
        metrics.count("sat.lut_cones_checked", checked)
        return PerLutResult(
            equivalent=True,
            checked_luts=checked,
            skipped_luts=skipped,
            inverted_luts=tuple(inverted),
            stats=_finish_stats(solver, encoder),
        )
