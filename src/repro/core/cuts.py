"""Per-node K-feasible cut enumeration with priority-cut pruning.

Chortle's forest partition severs the DAG at every multi-fanout point,
so reconvergent logic (the XOR patterns the paper concedes to MIS at
K=2) is mapped piecewise.  Cut enumeration works on the *whole* DAG
instead: for every node of a two-input subject graph it computes a set
of K-feasible cuts — leaf sets of at most ``cut_size`` signals that
separate the node from the primary inputs — by merging the fanins' cut
sets bottom-up.

Exhaustive cut sets grow exponentially, so this module implements the
standard *priority cuts* pruning (Mishchenko et al.; the
``cut_size``/``priority_size`` knob pair of iMap's ``klut_mapping``):

* **dominance filtering** — a cut whose leaf set contains another cut's
  leaf set is never better and is dropped;
* **priority pruning** — per node only the ``priority_size`` best cuts
  survive, ranked by the mapping objective (area flow, then depth, then
  leaf count), plus the trivial cut ``{node}`` so parents can always
  fall back to reading the node as a wire.

Cuts carry the two costs cover selection needs:

* ``depth`` — LUT levels if this cut is realized as one lookup table
  over its leaves (1 + the deepest leaf's best depth);
* ``area_flow`` — the fanout-amortized area estimate
  ``(1 + sum(leaf area flows)) / fanout(node)``, the classic area-flow
  relaxation of exact area over a DAG.

Leaf sets are represented as bitsets over a dense topological node
numbering, so feasibility (``popcount <= K``) and dominance
(``a & ~b == 0``) are single integer operations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.network.network import BooleanNetwork
from repro.obs import metrics

#: The supported cut widths.  Two is the smallest meaningful lookup
#: table; six is where exhaustive-ish enumeration under priority pruning
#: stops being cheap (and where commercial LUT architectures stop).
MIN_CUT_SIZE = 2
MAX_CUT_SIZE = 6

#: Default number of cuts kept per node (iMap defaults to 10 within a
#: recommended [6, 20]; 12 buys a little extra quality on reconvergent
#: MCNC profiles for negligible runtime).
DEFAULT_PRIORITY_SIZE = 12


class Cut(NamedTuple):
    """One K-feasible cut of a node.

    ``leaves`` is the sorted tuple of leaf signal names; ``mask`` the
    same set as a bitset over the enumeration's node numbering;
    ``depth`` and ``area_flow`` are the costs of realizing the node as
    one LUT over these leaves.
    """

    leaves: Tuple[str, ...]
    mask: int
    depth: int
    area_flow: float

    @property
    def size(self) -> int:
        return len(self.leaves)


class NodeCuts(NamedTuple):
    """The enumeration result for one node.

    ``cuts`` are the retained non-trivial cuts, best first under the
    enumeration's ranking; ``best`` is ``cuts[0]`` (the representative
    whose costs the node contributes when it appears as a *leaf* of a
    parent's cut); ``trivial`` is the ``{node}`` self-cut parents merge
    against.
    """

    cuts: Tuple[Cut, ...]
    best: Cut
    trivial: Cut


def _rank_key(mode: str) -> Callable[[Cut], Tuple[Any, ...]]:
    """The cut ordering for ``mode``: what 'best' means per node."""
    if mode == "depth":
        return lambda cut: (cut.depth, cut.area_flow, cut.size, cut.leaves)
    return lambda cut: (cut.area_flow, cut.depth, cut.size, cut.leaves)


def check_cut_size(k: int) -> None:
    """Validate a cut width; raises :class:`MappingError` outside 2..6."""
    if not (MIN_CUT_SIZE <= k <= MAX_CUT_SIZE):
        raise MappingError(
            "cut_size must be between %d and %d, got %d"
            % (MIN_CUT_SIZE, MAX_CUT_SIZE, k)
        )


def enumerate_cuts(
    net: BooleanNetwork,
    k: int,
    priority_size: int = DEFAULT_PRIORITY_SIZE,
    mode: str = "area",
    fanout_est: Optional[Dict[str, int]] = None,
) -> Dict[str, NodeCuts]:
    """Priority-pruned K-feasible cuts for every node of a subject graph.

    ``net`` must be two-input-decomposed (every gate fanin count <= 2;
    see :func:`repro.baseline.subject.decompose_to_binary`).  ``mode``
    selects the ranking: ``area`` (area flow first) or ``depth`` (depth
    first).  ``fanout_est`` overrides the structural fanout counts used
    to amortize area flow — the area-recovery iterations of
    :class:`~repro.core.cut_mapper.CutMapper` pass the reference counts
    of the previous cover so shared logic is only discounted where the
    cover actually shares it.

    Returns a dict from node name to :class:`NodeCuts`; primary inputs
    and constants get only their trivial self-cut (depth 0, area 0).
    """
    check_cut_size(k)
    if priority_size < 1:
        raise MappingError(
            "priority_size must be positive, got %d" % priority_size
        )
    if mode not in ("area", "depth"):
        raise MappingError("cut mode must be 'area' or 'depth', got %r" % mode)
    rank = _rank_key(mode)
    fanouts = net.fanout_counts()
    if fanout_est is not None:
        fanouts = dict(fanouts)
        fanouts.update(fanout_est)

    order = net.topological_order()
    bit: Dict[str, int] = {name: i for i, name in enumerate(order)}
    # Per-node costs of the *best retained realization* — what the node
    # contributes when it appears as a leaf of a parent's cut.  Making
    # cut costs a function of the leaf set alone (rather than of the
    # fanin cut pair that first produced it) keeps dedup-by-mask exact.
    leaf_depth: Dict[str, int] = {}
    leaf_flow: Dict[str, float] = {}
    result: Dict[str, NodeCuts] = {}
    candidates_total = 0

    for name in order:
        node = net.node(name)
        self_mask = 1 << bit[name]
        if not node.is_gate:
            trivial = Cut((name,), self_mask, 0, 0.0)
            leaf_depth[name] = 0
            leaf_flow[name] = 0.0
            result[name] = NodeCuts((), trivial, trivial)
            continue
        if node.fanin_count > 2:
            raise MappingError(
                "cut enumeration needs a two-input subject graph; gate %r "
                "has %d fanins (run decompose_to_binary first)"
                % (name, node.fanin_count)
            )
        share = max(1, fanouts.get(name, 1))
        fanin_lists = [
            _leaf_candidates(result[s.name]) for s in node.fanins
        ]
        if len(fanin_lists) == 1:
            masks = [c.mask for c in fanin_lists[0]]
        else:
            masks = [
                a.mask | b.mask
                for a in fanin_lists[0]
                for b in fanin_lists[1]
            ]
        candidates_total += len(masks)
        merged: List[Cut] = []
        seen_masks = set()
        for mask in masks:
            if mask.bit_count() > k or mask in seen_masks:
                continue
            seen_masks.add(mask)
            leaves = _mask_leaves(mask, order)
            depth = 1 + max(leaf_depth[leaf] for leaf in leaves)
            flow = (1.0 + sum(leaf_flow[leaf] for leaf in leaves)) / share
            merged.append(Cut(leaves, mask, depth, flow))
        if not merged:
            raise MappingError(
                "no %d-feasible cut for gate %r (subject graph malformed?)"
                % (k, name)
            )
        merged.sort(key=rank)
        kept = _dominance_filter(merged, priority_size)
        best = kept[0]
        leaf_depth[name] = best.depth
        leaf_flow[name] = best.area_flow
        # The trivial self-cut: parents may always read this node as a
        # wire; its leaf costs are the node's best realization costs.
        trivial = Cut((name,), self_mask, best.depth, best.area_flow)
        result[name] = NodeCuts(tuple(kept), best, trivial)

    metrics.count("cuts.nodes_enumerated", len(order))
    metrics.count("cuts.candidates", candidates_total)
    metrics.count(
        "cuts.kept", sum(len(nc.cuts) for nc in result.values())
    )
    return result


def _mask_leaves(mask: int, order: Sequence[str]) -> Tuple[str, ...]:
    """The leaf-name tuple of a bitset cut, in topological-index order."""
    leaves = []
    while mask:
        low = mask & -mask
        leaves.append(order[low.bit_length() - 1])
        mask ^= low
    return tuple(leaves)


def _leaf_candidates(nc: NodeCuts) -> List[Cut]:
    """The cut list a *parent* merges against: retained cuts, then the
    trivial self-cut.  For leaves (PIs, constants) only the self-cut."""
    if not nc.cuts:
        return [nc.trivial]
    out = list(nc.cuts)
    out.append(nc.trivial)
    return out


def _dominance_filter(ranked: Sequence[Cut], priority_size: int) -> List[Cut]:
    """Drop dominated cuts, keep the ``priority_size`` best survivors.

    A cut ``a`` dominates ``b`` when ``a``'s leaves are a subset of
    ``b``'s: any cover using ``b`` could use ``a`` at no worse cost.
    ``ranked`` must already be sorted best-first; scanning in that order
    means every kept cut only needs checking against better ones.
    """
    kept: List[Cut] = []
    for cut in ranked:
        dominated = False
        for better in kept:
            if better.mask & ~cut.mask == 0:
                dominated = True
                break
        if not dominated:
            kept.append(cut)
            if len(kept) >= priority_size:
                break
    return kept


def cut_cover_stats(cuts: Dict[str, NodeCuts]) -> Dict[str, int]:
    """Summary counters for one enumeration (observability hook)."""
    gate_nodes = [nc for nc in cuts.values() if nc.cuts]
    return {
        "nodes": len(cuts),
        "gates": len(gate_nodes),
        "cuts_kept": sum(len(nc.cuts) for nc in gate_nodes),
        "max_cuts": max((len(nc.cuts) for nc in gate_nodes), default=0),
    }
