"""Lookup-table circuits: the output of technology mapping.

A :class:`LUT` is a named K-or-fewer-input lookup table holding an
explicit truth table; a :class:`LUTCircuit` is a DAG of LUTs over the
original network's primary inputs.  Inversions never appear on wires —
a lookup table absorbs any input polarity into its contents — so wires
are plain names.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import NetworkError
from repro.truth.truthtable import TruthTable


class LUTProvenance(NamedTuple):
    """Where a lookup table came from: the mapping decision that emitted it.

    ``tree`` is the root node of the fanout-free tree whose decomposition
    produced this table (for DAG-cover mappers: the pre-decomposition
    origin node); ``op`` is the operation of the (possibly virtual)
    node the table realizes; ``placements`` are the placement kinds of the
    root table's inputs (``ext`` / ``wire`` / ``merged`` for the tree
    mappers, ``cut`` — one per cut leaf — for the cut mapper), i.e. the
    shape of the winning utilization division; ``root`` marks the
    tree-root table itself.
    """

    tree: str
    op: str
    placements: Tuple[str, ...]
    root: bool

    @property
    def merged(self) -> int:
        """Child root tables absorbed into this table by the decomposition."""
        return sum(1 for kind in self.placements if kind == "merged")


class LUT(NamedTuple):
    """A single lookup table: ``output = tt(inputs[0], inputs[1], ...)``."""

    name: str
    inputs: Tuple[str, ...]
    tt: TruthTable
    provenance: Optional[LUTProvenance] = None

    @property
    def utilization(self) -> int:
        """Number of inputs actually wired (Definition 3 in the paper)."""
        return len(self.inputs)


class LUTCircuit:
    """A circuit of K-input lookup tables implementing a boolean network."""

    def __init__(self, name: str = "mapped"):
        self.name = name
        self._inputs: List[str] = []
        self._luts: Dict[str, LUT] = {}
        self._outputs: Dict[str, str] = {}

    # -- construction -----------------------------------------------------

    def add_input(self, name: str) -> str:
        if name in self._luts or name in self._inputs:
            raise NetworkError("duplicate signal name %r" % name)
        self._inputs.append(name)
        return name

    def add_lut(
        self,
        name: str,
        inputs: Iterable[str],
        tt: TruthTable,
        provenance: Optional[LUTProvenance] = None,
    ) -> str:
        if name in self._luts or name in self._inputs:
            raise NetworkError("duplicate signal name %r" % name)
        inputs = tuple(inputs)
        if tt.nvars != len(inputs):
            raise NetworkError(
                "LUT %r has %d inputs but a %d-variable table"
                % (name, len(inputs), tt.nvars)
            )
        if len(set(inputs)) != len(inputs):
            raise NetworkError("LUT %r has duplicate input wires" % name)
        self._luts[name] = LUT(name, inputs, tt, provenance)
        return name

    def set_output(self, port: str, signal: str) -> None:
        if not port:
            raise NetworkError("output port names must be non-empty")
        self._outputs[port] = signal

    def fresh_name(self, stem: str) -> str:
        if stem not in self._luts and stem not in self._inputs:
            return stem
        i = 0
        while True:
            cand = "%s_%d" % (stem, i)
            if cand not in self._luts and cand not in self._inputs:
                return cand
            i += 1

    # -- accessors ----------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Dict[str, str]:
        return dict(self._outputs)

    def luts(self) -> Iterator[LUT]:
        return iter(self._luts.values())

    def lut(self, name: str) -> LUT:
        try:
            return self._luts[name]
        except KeyError:
            raise NetworkError("no LUT named %r" % name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._luts or name in self._inputs

    @property
    def num_luts(self) -> int:
        """All lookup tables, including inverters/buffers and constants."""
        return len(self._luts)

    @property
    def cost(self) -> int:
        """LUTs with two or more inputs.

        This is the paper's area accounting: single-input tables are
        inverters or buffers, which "a simple post-processor could easily
        merge... into the lookup tables", and are not counted as logic
        blocks for either mapper.
        """
        return sum(1 for lut in self._luts.values() if len(lut.inputs) >= 2)

    def utilization_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for lut in self._luts.values():
            u = lut.utilization
            hist[u] = hist.get(u, 0) + 1
        return hist

    def tree_profile(self) -> Dict[str, int]:
        """Cost-counted LUTs per source tree, from per-LUT provenance.

        Only tables carrying provenance (i.e. emitted by a tree
        decomposition) contribute, under the same >=2-input accounting as
        :attr:`cost` — so ``sum(tree_profile().values()) == cost`` for a
        circuit mapped entirely by the Chortle flow, and the dict is empty
        for mappers that do not record provenance.
        """
        profile: Dict[str, int] = {}
        for lut in self._luts.values():
            if lut.provenance is not None and len(lut.inputs) >= 2:
                tree = lut.provenance.tree
                profile[tree] = profile.get(tree, 0) + 1
        return profile

    # -- structure ------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """LUT names, each after all of its fanin LUTs."""
        state: Dict[str, int] = {}
        order: List[str] = []
        for root in self._luts:
            if state.get(root) == 1:
                continue
            stack = [(root, 0)]
            while stack:
                name, phase = stack.pop()
                if name in self._luts:
                    if phase == 0:
                        st = state.get(name)
                        if st == 1:
                            continue
                        if st == 0:
                            raise NetworkError("cycle through LUT %r" % name)
                        state[name] = 0
                        stack.append((name, 1))
                        for src in self._luts[name].inputs:
                            if src in self._luts and state.get(src) != 1:
                                stack.append((src, 0))
                    else:
                        if state.get(name) != 1:
                            state[name] = 1
                            order.append(name)
        return order

    def depth(self) -> int:
        """Longest path from inputs to outputs in LUT levels."""
        level: Dict[str, int] = {name: 0 for name in self._inputs}
        for name in self.topological_order():
            lut = self._luts[name]
            fanin_levels = [level.get(src, 0) for src in lut.inputs]
            level[name] = 1 + max(fanin_levels) if fanin_levels else 0
        if not self._outputs:
            return 0
        return max(level.get(sig, 0) for sig in self._outputs.values())

    def validate(self, k: Optional[int] = None) -> None:
        """Check wire integrity, acyclicity, and (optionally) the K bound."""
        for lut in self._luts.values():
            for src in lut.inputs:
                if src not in self:
                    raise NetworkError(
                        "LUT %r reads undefined wire %r" % (lut.name, src)
                    )
            if k is not None and len(lut.inputs) > k:
                raise NetworkError(
                    "LUT %r has %d inputs, exceeding K=%d"
                    % (lut.name, len(lut.inputs), k)
                )
        for port, sig in self._outputs.items():
            if sig not in self:
                raise NetworkError(
                    "output %r references undefined wire %r" % (port, sig)
                )
        self.topological_order()

    # -- evaluation ---------------------------------------------------------

    def simulate(self, input_words: Mapping[str, int], width: int) -> Dict[str, int]:
        """Bit-parallel evaluation, mirroring network simulation."""
        mask = (1 << width) - 1
        values: Dict[str, int] = {}
        for name in self._inputs:
            try:
                values[name] = input_words[name] & mask
            except KeyError:
                raise NetworkError("no value supplied for input %r" % name) from None
        for name in self.topological_order():
            lut = self._luts[name]
            words = [values[src] for src in lut.inputs]
            out = 0
            for m in lut.tt.minterms():
                term = mask
                for j, word in enumerate(words):
                    term &= word if (m >> j) & 1 else ~word & mask
                out |= term
                if out == mask:
                    break
            values[name] = out
        return values

    def __repr__(self) -> str:
        return "LUTCircuit(%r, inputs=%d, luts=%d, cost=%d)" % (
            self.name,
            len(self._inputs),
            self.num_luts,
            self.cost,
        )
