"""Mapper-agnostic covering substrate: the machinery every mapper shares.

Technology mappers differ in *how they choose* a cover — the tree DP of
:mod:`repro.core.tree_mapper`, the DAG cut covering of
:mod:`repro.core.cut_mapper`, the library matching of the MIS baseline —
but they all finish the same way: derive a truth table for each chosen
cone, materialize it as a :class:`~repro.core.lut.LUT` carrying
provenance, and plumb the output ports.  This module is that common
layer, extracted so the tree-DP and DAG-cover paths are peers rather
than the tree path being privileged:

* :func:`cone_truth_table` — bit-parallel evaluation of the cone of a
  node over an ordered leaf set (any AND/OR subject graph);
* :func:`cone_signature` — a canonical, hashable structure key for one
  cone computation, suitable for memo caching
  (:class:`~repro.perf.memo.NodeTableCache` accepts arbitrary tuple
  keys);
* :func:`emit_candidate` — materialize a tree-DP candidate as LUTs with
  per-table :class:`~repro.core.lut.LUTProvenance`;
* :func:`wire_outputs` — output-port plumbing (constants, inverters,
  buffers) shared by every mapper;
* :func:`circuit_to_network` — re-express a mapped circuit as a plain
  AND/OR network, so two *circuits* can be compared through
  :func:`repro.verify.verify_network_equivalence` (the cross-mapper
  equivalence fuzz path).

``repro.core.chortle`` re-exports :func:`wire_outputs` and
``_emit_candidate`` for backward compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.lut import LUTCircuit, LUTProvenance
from repro.core.expr import Leaf, NotExpr, OpExpr, leaf_keys, to_truth_table
from repro.errors import MappingError
from repro.network.network import AND, CONST0, CONST1, OR, BooleanNetwork, Signal
from repro.truth.truthtable import TruthTable

# -- cone evaluation ---------------------------------------------------------


def cone_gates(
    net: BooleanNetwork, root: str, leaves: Sequence[str]
) -> List[str]:
    """The gate nodes of the cone of ``root`` over ``leaves``, in a
    canonical topological order (fanins before readers).

    The order is determined purely by the cone's structure — an
    iterative post-order walk from ``root`` visiting fanins in declared
    order — so two structurally identical cones enumerate their gates
    identically (the property :func:`cone_signature` relies on).
    """
    stop: Set[str] = set(leaves)
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done
    stack: List[Tuple[str, int]] = [(root, 0)]
    while stack:
        name, phase = stack.pop()
        if phase == 0:
            if name in stop or state.get(name) == 1:
                continue
            state[name] = 0
            stack.append((name, 1))
            node = net.node(name)
            for sig in reversed(node.fanins):
                if sig.name not in stop and state.get(sig.name) != 1:
                    stack.append((sig.name, 0))
        else:
            if state.get(name) != 1:
                state[name] = 1
                order.append(name)
    return order


def cone_truth_table(
    net: BooleanNetwork, root: str, leaves: Sequence[str]
) -> TruthTable:
    """The function of ``root`` over the ordered ``leaves``, bit-parallel.

    ``leaves`` must cut every path from the primary inputs to ``root``
    (a node on a missed path raises :class:`MappingError` rather than
    silently evaluating an unbounded cone).  Variable ``j`` of the
    returned table is ``leaves[j]``.
    """
    n = len(leaves)
    width = 1 << n
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for j, leaf in enumerate(leaves):
        period = 1 << j
        block = ((1 << period) - 1) << period
        word = 0
        for start in range(0, width, 2 * period):
            word |= block << start
        values[leaf] = word

    for name in cone_gates(net, root, leaves):
        node = net.node(name)
        if node.op == CONST0:
            values[name] = 0
            continue
        if node.op == CONST1:
            values[name] = mask
            continue
        if not node.is_gate:
            raise MappingError(
                "cone of %r reaches non-gate %r outside its leaf set %r"
                % (root, name, tuple(leaves))
            )
        acc = mask if node.op == AND else 0
        for sig in node.fanins:
            word = values[sig.name]
            if sig.inv:
                word = ~word & mask
            acc = (acc & word) if node.op == AND else (acc | word)
        values[name] = acc
    if root not in values:
        raise MappingError(
            "cone of %r over %r evaluates nothing" % (root, tuple(leaves))
        )
    return TruthTable(n, values[root])


def cone_signature(
    net: BooleanNetwork, root: str, leaves: Sequence[str]
) -> tuple:
    """A canonical, hashable key for one cone-truth-table computation.

    Leaves contribute their *position* in the ordered leaf tuple, gates
    contribute their op and locally numbered fanin references — never a
    node name — so two structurally identical cones (across trees,
    networks, or circuits) share a key and therefore a cached truth
    table.  The key layout mirrors :func:`repro.perf.memo.node_signature`
    conventions: a tagged tuple, safe to mix with node-table keys in one
    :class:`~repro.perf.memo.NodeTableCache`.
    """
    ids: Dict[str, tuple] = {
        name: ("l", j) for j, name in enumerate(leaves)
    }
    parts: List[tuple] = []
    for i, name in enumerate(cone_gates(net, root, leaves)):
        node = net.node(name)
        ids[name] = ("n", i)
        parts.append(
            (node.op, tuple((ids[s.name], s.inv) for s in node.fanins))
        )
    return ("cone", len(leaves), tuple(parts))


# -- candidate emission (the tree-DP back end) -------------------------------


class _EmitFrame:
    """One in-flight candidate of the iterative emission walk."""

    __slots__ = ("cand", "name", "inv", "children", "index")

    def __init__(self, cand, name, inv):
        self.cand = cand
        self.name = name  # LUT name for emit frames, None for merged
        self.inv = inv
        self.children: list = []
        self.index = 0


def emit_candidate(cand, circuit: LUTCircuit, wire_name: str) -> int:
    """Materialize a tree-DP candidate as LUTs; returns the number emitted.

    Every emitted table is stamped with a :class:`LUTProvenance` naming
    the tree root (``wire_name``) and the placement shape of the
    candidate that produced it, so downstream QoR tooling can attribute
    per-tree area.

    The walk runs on an explicit frame stack — candidate chains grow
    with tree depth, so recursion would cap mappable circuits at the
    interpreter limit.  Wire names are assigned at discovery and child
    tables are added before their readers, the same event order as the
    recursive formulation, so emitted circuits are bit-identical.
    """
    counter = 0
    emitted = 0
    stack = [_EmitFrame(cand, wire_name, False)]
    while stack:
        frame = stack[-1]
        placements = frame.cand.placements
        if frame.index < len(placements):
            placement = placements[frame.index]
            frame.index += 1
            kind = placement[0]
            if kind == "ext":
                frame.children.append(Leaf(placement[1], placement[2]))
            elif kind == "wire":
                counter += 1
                child_name = circuit.fresh_name(
                    "%s_l%d" % (wire_name, counter)
                )
                frame.children.append(Leaf(child_name, placement[2]))
                stack.append(_EmitFrame(placement[1], child_name, False))
            else:  # merged: the child's root table folds into this one
                stack.append(_EmitFrame(placement[1], None, placement[2]))
            continue
        stack.pop()
        expr = OpExpr(frame.cand.op, frame.children)
        if frame.name is not None:
            keys = leaf_keys(expr)
            tt = to_truth_table(expr, keys)
            circuit.add_lut(
                frame.name,
                keys,
                tt,
                provenance=LUTProvenance(
                    tree=wire_name,
                    op=frame.cand.op,
                    placements=frame.cand.placement_kinds(),
                    root=frame.name == wire_name,
                ),
            )
            emitted += 1
        else:
            stack[-1].children.append(
                NotExpr(expr) if frame.inv else expr
            )
    return emitted


# -- output-port plumbing ----------------------------------------------------


def wire_outputs(net: BooleanNetwork, circuit: LUTCircuit) -> None:
    """Connect output ports, adding inverters/buffers/constants as needed.

    Single-input and zero-input tables added here are interface plumbing
    and are excluded from the cost metric (see
    :attr:`~repro.core.lut.LUTCircuit.cost`).
    """
    materialized: Dict[Tuple[str, bool], str] = {}
    for port, sig in net.outputs.items():
        node = net.node(sig.name)
        if node.op in (CONST0, CONST1):
            value = (node.op == CONST1) != sig.inv
            key = ("__const__", value)
            if key not in materialized:
                name = circuit.fresh_name(port)
                circuit.add_lut(name, (), TruthTable.const(value, 0))
                materialized[key] = name
            circuit.set_output(port, materialized[key])
        elif sig.inv:
            key = (sig.name, True)
            if key not in materialized:
                name = circuit.fresh_name(port)
                circuit.add_lut(name, (sig.name,), ~TruthTable.var(0, 1))
                materialized[key] = name
            circuit.set_output(port, materialized[key])
        else:
            circuit.set_output(port, sig.name)


# -- circuit-to-network lowering ---------------------------------------------


def circuit_to_network(circuit: LUTCircuit, name: str = "") -> BooleanNetwork:
    """Re-express a mapped circuit as a plain AND/OR boolean network.

    Each lookup table becomes its sum-of-products: one AND gate per
    minterm over the table's input wires (with inverted literals carried
    on the edges) and an OR gate collecting them.  Constant and empty
    tables become constant nodes.  The result computes exactly what the
    circuit computes, so two mapped circuits — from *different* mappers
    — can be compared through
    :func:`repro.verify.verify_network_equivalence`.
    """
    net = BooleanNetwork(name or ("%s_net" % circuit.name))
    for pi in circuit.inputs:
        net.add_input(pi)
    for lut_name in circuit.topological_order():
        lut = circuit.lut(lut_name)
        minterms = list(lut.tt.minterms())
        nvars = lut.tt.nvars
        if nvars == 0 or not minterms or len(minterms) == (1 << nvars):
            net.add_const(lut.name, bool(minterms))
            continue
        terms: List[Signal] = []
        for m in minterms:
            literals = [
                Signal(lut.inputs[j], not ((m >> j) & 1))
                for j in range(nvars)
            ]
            if len(minterms) == 1:
                net.add_gate(lut.name, AND, literals)
                terms = []
                break
            term = net.fresh_name("%s_m%d" % (lut.name, m))
            net.add_gate(term, AND, literals)
            terms.append(Signal(term))
        if terms:
            net.add_gate(lut.name, OR, terms)
    for port, sig in circuit.outputs.items():
        net.set_output(port, Signal(sig))
    net.validate()
    return net
