"""Dynamic-programming tree mapping (Section 3.1 of the paper).

For every tree node ``n`` and every utilization ``U`` in ``2..K`` the
mapper records ``minmap(n, U)``: the cheapest circuit of K-input lookup
tables implementing the subtree rooted at ``n`` whose root lookup table
uses at most ``U`` inputs.  (The paper states the table for exact
utilization; the at-most form is equivalent at the optimum and makes the
monotonicity property ``cost(minmap(n,U)) >= cost(minmap(n,K))`` hold by
construction.)

Decomposition (Section 3.1.3) is searched exhaustively: every partition
of a node's fanin set into groups, where a non-singleton group becomes an
intermediate node carrying the same operation, including multi-level
decompositions of the intermediate nodes themselves.  The search is
organized as a DP over fanin subsets:

* ``sub[S][U]`` — the best mapping of the *virtual node* ``op(S)`` over
  fanin subset ``S`` with root utilization at most ``U`` (for the full
  fanin set this is ``minmap(n, U)`` itself);
* ``F[S][u]`` — the best way to feed the items of ``S`` into an enclosing
  root lookup table using at most ``u`` of its inputs, choosing for each
  item whether it enters as a direct wire, as a merged child root table,
  or grouped with siblings under an intermediate node.

Enumerating the block containing the lowest-indexed element of ``S``
visits every set partition exactly once, so this DP reaches exactly the
mappings of the paper's exhaustive utilization-division search; the test
suite cross-checks it against a literal transliteration of the paper's
pseudo-code (:mod:`repro.core.divisions`).

Node splitting (Section 3.1.4): nodes with more fanins than
``split_threshold`` (default 10, as in the paper) are first split into
two roughly equal halves that are decomposed separately.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.errors import MappingError
from repro.core.expr import Leaf, NotExpr, OpExpr
from repro.core.forest import Tree
from repro.network.network import BooleanNetwork
from repro.obs import metrics


class MapCand:
    """A candidate mapping of a (possibly virtual) node.

    ``cost`` counts all lookup tables in the candidate including its root
    table.  ``placements`` describe the root table's inputs; see the
    placement kinds below.  ``input_depth`` is the LUT depth of the
    deepest signal feeding the root table (so the candidate's own depth
    is ``input_depth + 1``); it is tracked so equal-cost mappings can be
    tie-broken toward shallower circuits.
    """

    __slots__ = ("cost", "op", "placements", "input_depth")

    def __init__(self, cost: int, op: str, placements: Tuple, input_depth: int = 0):
        self.cost = cost
        self.op = op
        self.placements = placements
        self.input_depth = input_depth

    @property
    def depth(self) -> int:
        """LUT levels from the tree's leaves through this root table."""
        return self.input_depth + 1

    def placement_kinds(self) -> Tuple[str, ...]:
        """The root table's input placement kinds (``ext``/``wire``/``merged``).

        This is the shape of the winning utilization division — the
        provenance recorded on each emitted LUT so a QoR diff can
        attribute area changes to individual tree decompositions.
        """
        return tuple(placement[0] for placement in self.placements)

    def expr(self):
        """The root lookup table's function as an expression tree."""
        children = []
        for placement in self.placements:
            kind = placement[0]
            if kind == "ext":
                children.append(Leaf(("ext", placement[1]), placement[2]))
            elif kind == "wire":
                children.append(Leaf(("lut", placement[1]), placement[2]))
            else:  # merged
                sub = placement[1].expr()
                children.append(NotExpr(sub) if placement[2] else sub)
        return OpExpr(self.op, children)

    def __repr__(self) -> str:
        return "MapCand(cost=%d, op=%r, inputs=%d)" % (
            self.cost,
            self.op,
            len(self.placements),
        )


# Placement kinds (tuples, first element is the tag):
#   ("ext", name, inv)     external tree-leaf signal
#   ("wire", cand, inv)    a child or intermediate node realized as its own LUT
#   ("merged", cand, inv)  a child whose root LUT is absorbed into this LUT

# A node table: index u in 0..k, entry is the best MapCand with root
# utilization <= u (None where infeasible).
NodeTable = List[Optional[MapCand]]


class ExtItem(NamedTuple):
    """A fanin edge to a tree leaf."""

    name: str
    inv: bool


class TableItem(NamedTuple):
    """A fanin edge to an already-mapped child (or split-virtual) node.

    ``sig`` is the child table's structural signature — an
    :class:`repro.perf.memo.InternedSignature` from
    :func:`repro.perf.memo.node_signature` — when the table was computed
    through the memoizing path; ``None`` marks the item — and therefore
    any node table built from it — as not cacheable.
    """

    table: tuple  # actually NodeTable; tuple for hashability of the item
    inv: bool
    sig: Optional[object] = None


FaninItem = Union[ExtItem, TableItem]

# Linked list of placements used inside the F tables: (placement, rest).
_Chain = Optional[Tuple[tuple, Optional[tuple]]]


def placement_depth(placement: tuple) -> int:
    """LUT depth contributed to an enclosing root table by a placement."""
    kind = placement[0]
    if kind == "ext":
        return 0
    if kind == "wire":
        return placement[1].input_depth + 1
    return placement[1].input_depth  # merged: child root LUT is absorbed


def _chain_to_tuple(chain: _Chain) -> Tuple:
    placements = []
    while chain is not None:
        placements.append(chain[0])
        chain = chain[1]
    return tuple(placements)


class TreeMapper:
    """Maps fanout-free trees into minimum-cost circuits of K-input LUTs.

    ``recorder`` (a :class:`~repro.obs.explain.DecisionRecorder`) turns
    on decision provenance: one record per tree node naming the chosen
    utilization division, its cost/depth, the alternatives enumerated,
    and the runner-up's cost delta.  Recording is *cache-exclusive* —
    a recording mapper computes every node table fresh, never reading
    or writing the memo cache, so candidate counts are exact and the
    records (like the mapping itself) are bit-identical across serial,
    parallel, and warm-cache runs.  The recorder observes the DP; it
    never changes the mapped circuit.
    """

    def __init__(
        self, k: int, split_threshold: int = 10, cache=None, recorder=None
    ):
        if k < 2:
            raise MappingError("K must be at least 2, got %d" % k)
        if split_threshold < 2:
            raise MappingError(
                "split threshold must be at least 2, got %d" % split_threshold
            )
        self.k = k
        self.split_threshold = split_threshold
        # Optional structural memo cache (repro.perf.memo.NodeTableCache).
        # Shared across trees, networks, and K sweeps; results are
        # bit-identical to the uncached path by construction.
        self.cache = cache
        self.recorder = recorder

    # -- public API ---------------------------------------------------------

    def map_tree(
        self,
        network: BooleanNetwork,
        tree: Tree,
        order: Optional[Sequence[str]] = None,
    ) -> MapCand:
        """Optimal mapping of one fanout-free tree; returns the root candidate.

        ``order`` is an optional precomputed topological order of the
        tree's internal nodes.  Without it, each call derives the order
        from the whole network — callers mapping many trees of one
        network (:class:`~repro.core.chortle.ChortleMapper`) compute one
        network order and slice it per tree instead of paying a full
        traversal per tree.
        """
        tables: Dict[str, NodeTable] = {}
        sigs: Dict[str, Optional[object]] = {}
        recording = self.recorder is not None
        if order is None:
            internal = tree.internal
            order = [
                name
                for name in network.topological_order()
                if name in internal
            ]
        # (name, op, fanins, split, candidates) per node, in topological
        # order — the raw material for the per-node decision records.
        node_info: List[Tuple[str, str, int, bool, int]] = []
        for name in order:
            node = network.node(name)
            items: List[FaninItem] = []
            for sig in node.fanins:
                if sig.name in tables:
                    items.append(
                        TableItem(
                            tuple(tables[sig.name]), sig.inv, sigs.get(sig.name)
                        )
                    )
                else:
                    items.append(ExtItem(sig.name, sig.inv))
            if recording:
                stats = [0, 0]
                tables[name] = self.compute_node_table(node.op, items, stats)
                sigs[name] = None
                node_info.append(
                    (
                        name,
                        node.op,
                        len(items),
                        len(items) > self.split_threshold,
                        stats[0],
                    )
                )
            else:
                tables[name], sigs[name] = self.cached_node_table(node.op, items)
        root_table = tables.get(tree.root)
        if root_table is None:
            raise MappingError("tree root %r was never mapped" % tree.root)
        best = root_table[self.k]
        if best is None:
            raise MappingError("no feasible mapping for tree %r" % tree.root)
        if recording:
            self._record_tree(tree.root, tables, node_info, best)
        return best

    # -- decision recording -------------------------------------------------

    def _record_tree(
        self,
        root: str,
        tables: Dict[str, NodeTable],
        node_info: List[Tuple[str, str, int, bool, int]],
        best: MapCand,
    ) -> None:
        """Build and store one tree's decision records (recorder set).

        The per-node *chosen* entry is resolved top-down from the root
        candidate: walking the winning placement chain visits, exactly
        once per tree node, the node-table entry the emission will
        actually use — as the node's own LUT (``wire``) or absorbed into
        its parent's root table (``merged``).
        """
        from repro.obs.explain import Alternative, NodeDecision, TreeDecisions

        entry_owner: Dict[int, str] = {}
        for name, table in tables.items():
            for cand in table:
                if cand is not None:
                    entry_owner[id(cand)] = name
        chosen: Dict[str, Tuple[MapCand, str]] = {root: (best, "root")}
        stack: List[MapCand] = [best]
        while stack:
            cand = stack.pop()
            for placement in cand.placements:
                kind = placement[0]
                if kind == "ext":
                    continue
                child = placement[1]
                owner = entry_owner.get(id(child))
                if owner is not None and owner != root:
                    chosen[owner] = (child, kind)
                stack.append(child)

        decisions = []
        for name, op, fanins, split, candidates in node_info:
            table = tables[name]
            cand, placement = chosen.get(name, (table[self.k], "wire"))
            # Two table entries are the same *mapping* when cost, depth,
            # and placement shape agree — the monotonize step can leave
            # equal-content duplicates behind distinct objects, which
            # must not masquerade as runner-up ties.
            chosen_key = (cand.cost, cand.depth, cand.placement_kinds())
            alternatives = []
            seen_keys = set()
            for u in range(2, self.k + 1):
                entry = table[u]
                if entry is None:
                    continue
                key = (entry.cost, entry.depth, entry.placement_kinds())
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                alternatives.append(
                    Alternative(
                        utilization=u,
                        cost=entry.cost,
                        depth=entry.depth,
                        placements=entry.placement_kinds(),
                    )
                )
            runner_costs = [
                alt.cost
                for alt in alternatives
                if (alt.cost, alt.depth, alt.placements) != chosen_key
            ]
            decisions.append(
                NodeDecision(
                    node=name,
                    op=op,
                    fanins=fanins,
                    split=split,
                    placement=placement,
                    utilization=len(cand.placements),
                    cost=cand.cost,
                    depth=cand.depth,
                    placements=cand.placement_kinds(),
                    candidates=candidates,
                    alternatives=tuple(alternatives),
                    runner_up_delta=(
                        min(runner_costs) - cand.cost if runner_costs else None
                    ),
                )
            )
        self.recorder.record_tree(
            TreeDecisions(
                root=root, luts=best.cost, depth=best.depth, nodes=decisions
            )
        )

    # -- node table construction ------------------------------------------------

    def cached_node_table(
        self, op: str, items: Sequence[FaninItem], stats: Optional[list] = None
    ) -> Tuple[NodeTable, Optional[object]]:
        """``compute_node_table`` through the memo cache, plus the signature.

        Without a cache (or for items carrying no signature) this is
        exactly the uncached computation.  On a hit, the cached
        canonical table is rehydrated against the live ``items`` — same
        costs, depths, and placement structure, with this call's leaf
        names and child candidates substituted in.

        A ``stats`` accumulator (decision recording) forces the uncached
        path: a rehydrated table enumerates nothing, so exact candidate
        counts are only available — and the records only reproducible —
        when every table is computed fresh.
        """
        if self.cache is None or stats is not None:
            return self.compute_node_table(op, items, stats), None
        from repro.perf.memo import (
            canonicalize_table,
            node_signature,
            rehydrate_table,
        )

        sig = node_signature(op, items)
        if sig is None:
            return self.compute_node_table(op, items), None
        key = (self.k, self.split_threshold, sig)
        canon = self.cache.get(key)
        if canon is not None:
            return rehydrate_table(canon, op, items), sig
        table = self.compute_node_table(op, items)
        self.cache.put(key, canonicalize_table(table, items))
        return table, sig

    def compute_node_table(
        self, op: str, items: Sequence[FaninItem], stats: Optional[list] = None
    ) -> NodeTable:
        """``minmap(n, U)`` for all U, for a node with the given fanin items.

        ``stats`` is an optional ``[candidates, entries]`` accumulator
        (decision recording); when ``None`` — the default — the hot path
        is byte-for-byte the unrecorded computation.
        """
        items = list(items)
        if len(items) < 1:
            raise MappingError("a node must have at least one fanin")
        if len(items) == 1:
            raise MappingError(
                "single-fanin gates must be swept before mapping"
            )
        if len(items) > self.split_threshold:
            return self._split_and_map(op, items, stats)
        return self._subset_dp(op, items, stats)

    def _split_and_map(
        self, op: str, items: List[FaninItem], stats: Optional[list] = None
    ) -> NodeTable:
        """Section 3.1.4: split a wide node into two roughly equal halves."""
        metrics.count("chortle.node_splits")
        half = len(items) // 2
        left = self._table_or_passthrough(op, items[:half], stats)
        right = self._table_or_passthrough(op, items[half:], stats)
        return self._subset_dp(op, [left, right], stats)

    def _table_or_passthrough(
        self, op: str, items: List[FaninItem], stats: Optional[list] = None
    ) -> FaninItem:
        if len(items) == 1:
            return items[0]
        table, sig = self.cached_node_table(op, items, stats)
        return TableItem(tuple(table), False, sig)

    # -- the subset DP ------------------------------------------------------------
    #
    # The DP over fanin subsets is organized as two families of tables:
    #
    # * ``sub`` — per mask with >= 2 items, the node table of the virtual
    #   node ``op(mask)``; only its at-most-K entry feeds other masks
    #   (as an intermediate-node "wire" block), so strict-subset masks
    #   materialize just that one candidate and the full table is built
    #   only for the complete fanin set (the value returned).
    # * ``F`` — per mask, the best ways to feed the mask's items into an
    #   enclosing root table.  A mask is only ever read as the *rest* of
    #   a larger mask after that mask's lowest-indexed item is peeled
    #   off, so no readable mask contains item 0 — F tables for masks
    #   with bit 0 set (half of them, including the full set) are never
    #   computed, only their candidate counts are accounted.
    #
    # Both tables are preallocated flat lists indexed ``mask * (k+1) + u``
    # and the singleton options of every item (each with its precomputed
    # placement depth) are enumerated once per node rather than once per
    # mask.  The enumeration order — singletons, then blocks in
    # descending submask order, then the ascending monotonize sweep — is
    # the original recursive-helper order, so tie-breaks and therefore
    # the mapped circuits are bit-identical.

    def _subset_dp(
        self, op: str, items: List[FaninItem], stats: Optional[list] = None
    ) -> NodeTable:
        k = self.k
        k1 = k + 1
        n = len(items)
        full = (1 << n) - 1
        # [candidates considered, minmap entries] — identical arithmetic
        # to the pre-flattening kernel, including the F tables that are
        # no longer materialized (decision records pin these counts).
        acc0 = 0
        acc1 = 0

        # Singleton options per item: (consumed, cost, placement_depth,
        # placement), in wire-then-merged order.
        singles: List[List[Tuple[int, int, int, tuple]]] = []
        for item in items:
            options: List[Tuple[int, int, int, tuple]] = []
            if isinstance(item, ExtItem):
                options.append((1, 0, 0, ("ext", item.name, item.inv)))
            else:
                table = item.table
                cand = table[k]
                if cand is not None:
                    options.append(
                        (1, cand.cost, cand.input_depth + 1,
                         ("wire", cand, item.inv))
                    )
                for uc in range(2, k1):
                    cand = table[uc]
                    if cand is not None:
                        options.append(
                            (uc, cand.cost - 1, cand.input_depth,
                             ("merged", cand, item.inv))
                        )
            singles.append(options)

        # Flat tables: entry for (mask, u) lives at mask * k1 + u.
        F: List[Optional[Tuple[int, int, _Chain]]] = [None] * ((full + 1) * k1)
        F[0] = (0, 0, None)
        sub_best: List[Optional[MapCand]] = [None] * (full + 1)

        # Bucket masks by popcount in one ascending fill; int.bit_count is
        # a single CPython opcode (py >= 3.10).  Ascending mask order
        # within each bucket preserves the DP's tie-break enumeration.
        buckets: List[List[int]] = [[] for _ in range(n + 1)]
        for mask in range(1, full + 1):
            buckets[mask.bit_count()].append(mask)

        full_table: NodeTable = [None] * k1
        for p in range(1, n + 1):
            for mask in buckets[p]:
                first_bit = mask & -mask
                rest0 = mask ^ first_bit
                rest_base = rest0 * k1
                need_f = not (mask & 1)

                # Singleton blocks of the lowest-indexed item, shared by
                # the node-table and F enumerations (both start with
                # them, in the same order).
                best: List[Optional[Tuple[int, int, _Chain]]] = [None] * k1
                first_singles = singles[first_bit.bit_length() - 1]
                for consumed, cost, pdepth, placement in first_singles:
                    for u in range(consumed, k1):
                        rest_entry = F[rest_base + u - consumed]
                        if rest_entry is None:
                            continue
                        total = cost + rest_entry[0]
                        rdepth = rest_entry[1]
                        depth = pdepth if pdepth > rdepth else rdepth
                        cur = best[u]
                        # Cost first (the paper's objective); among
                        # equal-cost choices prefer the shallower circuit.
                        if (
                            cur is None
                            or total < cur[0]
                            or (total == cur[0] and depth < cur[1])
                        ):
                            best[u] = (total, depth, (placement, rest_entry[2]))

                if p == 1:
                    acc0 += len(first_singles)
                    if need_f:
                        for u in range(1, k1):
                            prev = best[u - 1]
                            cur = best[u]
                            if prev is not None and (
                                cur is None
                                or prev[0] < cur[0]
                                or (prev[0] == cur[0] and prev[1] < cur[1])
                            ):
                                best[u] = prev
                        base = mask * k1
                        F[base:base + k1] = best
                    continue

                # Non-singleton blocks: intermediate nodes over strict
                # subsets containing the first item (Section 3.1.3: an
                # intermediate node provides a single input to the root
                # lookup table, so u_i = 1), in descending submask order.
                blocks: List[Tuple[MapCand, int]] = []
                t = rest0
                while t:
                    block = first_bit | t
                    if block != mask:
                        cand = sub_best[block]
                        if cand is not None:
                            blocks.append((cand, mask ^ block))
                    t = (t - 1) & rest0

                best_f = list(best) if need_f else None
                for cand, rest_mask in blocks:
                    cost = cand.cost
                    pdepth = cand.input_depth + 1
                    placement = ("wire", cand, False)
                    rbase = rest_mask * k1
                    for u in range(1, k1):
                        rest_entry = F[rbase + u - 1]
                        if rest_entry is None:
                            continue
                        total = cost + rest_entry[0]
                        rdepth = rest_entry[1]
                        depth = pdepth if pdepth > rdepth else rdepth
                        cur = best[u]
                        if (
                            cur is None
                            or total < cur[0]
                            or (total == cur[0] and depth < cur[1])
                        ):
                            best[u] = (total, depth, (placement, rest_entry[2]))
                acc0 += len(first_singles) + len(blocks)

                # Monotonize: entry at u is the best using at most u inputs.
                for u in range(1, k1):
                    prev = best[u - 1]
                    cur = best[u]
                    if prev is not None and (
                        cur is None
                        or prev[0] < cur[0]
                        or (prev[0] == cur[0] and prev[1] < cur[1])
                    ):
                        best[u] = prev

                # Materialize the node table for this mask: every entry
                # for the full fanin set (the returned table), just the
                # at-most-K candidate for strict subsets (the only entry
                # other masks read).  Feasible-entry counts cover all u,
                # matching the old always-materializing kernel.
                if mask == full:
                    for u in range(2, k1):
                        entry = best[u]
                        if entry is None:
                            continue
                        full_table[u] = MapCand(
                            entry[0] + 1, op, _chain_to_tuple(entry[2]),
                            input_depth=entry[1],
                        )
                        acc1 += 1
                else:
                    for u in range(2, k1):
                        if best[u] is not None:
                            acc1 += 1
                    entry = best[k]
                    whole = None
                    if entry is not None:
                        whole = MapCand(
                            entry[0] + 1, op, _chain_to_tuple(entry[2]),
                            input_depth=entry[1],
                        )
                        sub_best[mask] = whole

                # The F enumeration repeats the same candidates with one
                # extra block — the whole mask as a single intermediate
                # node — considered right after the singletons.
                whole_cand = full_table[k] if mask == full else sub_best[mask]
                acc0 += len(first_singles) + len(blocks) + (
                    1 if whole_cand is not None else 0
                )
                if not need_f:
                    continue
                if whole_cand is not None:
                    cost = whole_cand.cost
                    pdepth = whole_cand.input_depth + 1
                    placement = ("wire", whole_cand, False)
                    for u in range(1, k1):
                        rest_entry = F[u - 1]  # rest mask 0
                        if rest_entry is None:
                            continue
                        total = cost + rest_entry[0]
                        rdepth = rest_entry[1]
                        depth = pdepth if pdepth > rdepth else rdepth
                        cur = best_f[u]
                        if (
                            cur is None
                            or total < cur[0]
                            or (total == cur[0] and depth < cur[1])
                        ):
                            best_f[u] = (
                                total, depth, (placement, rest_entry[2])
                            )
                for cand, rest_mask in blocks:
                    cost = cand.cost
                    pdepth = cand.input_depth + 1
                    placement = ("wire", cand, False)
                    rbase = rest_mask * k1
                    for u in range(1, k1):
                        rest_entry = F[rbase + u - 1]
                        if rest_entry is None:
                            continue
                        total = cost + rest_entry[0]
                        rdepth = rest_entry[1]
                        depth = pdepth if pdepth > rdepth else rdepth
                        cur = best_f[u]
                        if (
                            cur is None
                            or total < cur[0]
                            or (total == cur[0] and depth < cur[1])
                        ):
                            best_f[u] = (
                                total, depth, (placement, rest_entry[2])
                            )
                for u in range(1, k1):
                    prev = best_f[u - 1]
                    cur = best_f[u]
                    if prev is not None and (
                        cur is None
                        or prev[0] < cur[0]
                        or (prev[0] == cur[0] and prev[1] < cur[1])
                    ):
                        best_f[u] = prev
                base = mask * k1
                F[base:base + k1] = best_f

        metrics.count("chortle.decomp_candidates", acc0)
        metrics.count("chortle.minmap_entries", acc1)
        if stats is not None:
            stats[0] += acc0
            stats[1] += acc1
        return full_table
