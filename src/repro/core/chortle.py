"""The complete Chortle mapper: forest partitioning + tree DP + emission.

``ChortleMapper(k).map(network)`` returns a :class:`~repro.core.lut.LUTCircuit`
whose root lookup tables are named after the tree-root nodes of the input
network, so per-node functions can be compared directly during
verification.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import List

from repro.errors import MappingError
from repro.core.forest import build_forest, check_forest, tree_orders
from repro.core.lut import LUTCircuit
from repro.core.substrate import emit_candidate, wire_outputs
from repro.core.tree_mapper import MapCand, TreeMapper
from repro.network.network import BooleanNetwork
from repro.network.transform import sweep
from repro.obs import metrics, span

#: Backward-compatible aliases: emission and output plumbing moved to the
#: mapper-agnostic substrate (:mod:`repro.core.substrate`) so tree-DP and
#: DAG-cover mappers share one back end.
_emit_candidate = emit_candidate

__all__ = ["ChortleMapper", "map_network", "wire_outputs", "_emit_candidate"]


class ChortleMapper:
    """Area-minimizing technology mapper for K-input lookup tables.

    ``cache`` enables structural memoization of node tables (``True``
    for the shared process-wide cache, or an explicit
    :class:`~repro.perf.memo.NodeTableCache`); ``jobs`` maps forest
    trees concurrently (``None`` = one worker per CPU).  Both are
    QoR-neutral: the mapped circuit is bit-identical to a serial,
    uncached run.  ``executor`` selects thread workers (default; shares
    the memo cache, zero-copy) or process workers (sidesteps the GIL at
    the price of pickling the network per worker).

    ``recorder`` (a :class:`~repro.obs.explain.DecisionRecorder`) turns
    on decision provenance: the mapper records every tree-DP choice and
    exposes a built :class:`~repro.obs.explain.MappingExplanation` as
    :attr:`explanation` after each ``map`` call.  Recording is
    cache-exclusive (the memo cache is bypassed so records are exact and
    reproducible) and thread-compatible, but requires the ``thread``
    executor — worker processes cannot stream decisions back.  The
    mapped circuit is bit-identical with recording on or off.
    """

    name = "chortle"  # spec name under the common Mapper protocol

    def __init__(
        self,
        k: int = 4,
        split_threshold: int = 10,
        preprocess: bool = True,
        cache=None,
        jobs: int = 1,
        executor: str = "thread",
        recorder=None,
    ):
        if executor not in ("thread", "process"):
            raise MappingError(
                "executor must be 'thread' or 'process', got %r" % executor
            )
        if recorder is not None and executor == "process":
            raise MappingError(
                "decision recording requires the thread (or serial) "
                "executor; process workers cannot stream decisions back"
            )
        self.k = k
        self.split_threshold = split_threshold
        self.preprocess = preprocess
        from repro.perf.memo import resolve_cache

        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.executor = executor
        self.recorder = recorder
        # The explanation for the most recent map() call (recorder set).
        self.explanation = None
        self._tree_mapper = TreeMapper(
            k,
            split_threshold=split_threshold,
            cache=self.cache,
            recorder=recorder,
        )

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        """Map the network into a circuit of K-input lookup tables."""
        with span("chortle.map", network=network.name, k=self.k) as sp:
            net = sweep(network) if self.preprocess else network
            net.validate()
            for node in net.gates():
                if node.fanin_count < 2:
                    raise MappingError(
                        "gate %r has fanin %d; run sweep() or enable preprocess"
                        % (node.name, node.fanin_count)
                    )

            circuit = self._map_swept(net)
            sp.set("luts", circuit.cost)
            if self.recorder is not None:
                from repro.obs.explain import build_explanation

                self.explanation = build_explanation(
                    net, circuit, self.recorder, k=self.k, mapper=self.name
                )
            return circuit

    def _map_swept(self, net: BooleanNetwork) -> LUTCircuit:
        forest = build_forest(net)
        check_forest(forest)
        metrics.count("chortle.trees_mapped", len(forest.trees))
        if self.recorder is not None:
            # Records come back in forest order no matter which worker
            # thread finished a tree first.
            self.recorder.set_order([tree.root for tree in forest.trees])

        circuit = LUTCircuit("%s_k%d" % (net.name, self.k))
        for name in net.inputs:
            circuit.add_input(name)

        cands = self._map_trees(net, forest.trees, tree_orders(forest))
        for tree, cand in zip(forest.trees, cands):
            emitted = emit_candidate(cand, circuit, tree.root)
            if emitted != cand.cost:
                raise MappingError(
                    "internal accounting error in tree %r: predicted %d "
                    "LUTs, emitted %d" % (tree.root, cand.cost, emitted)
                )
            metrics.count("chortle.luts_emitted", emitted)
            metrics.observe("chortle.luts_per_tree", emitted)

        wire_outputs(net, circuit)
        circuit.validate(self.k)
        return circuit

    def _map_trees(self, net: BooleanNetwork, trees, orders) -> List[MapCand]:
        """Root candidates for every tree, in forest order.

        ``orders`` carries each tree's internal nodes in topological
        order, computed once per network (``tree_orders``).  With
        ``jobs > 1`` the independent tree problems are fanned across a
        ``concurrent.futures`` executor; results are collected in
        submission order, so the emitted circuit — names, LUT order,
        functions — is identical to a serial run.
        """
        jobs = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        if jobs <= 1 or len(trees) < 2:
            return [
                self._map_one_tree(net, tree, order, worker=None)
                for tree, order in zip(trees, orders)
            ]
        from repro.perf.parallel import map_trees_processes, record_task_telemetry

        jobs = min(jobs, len(trees))
        with span(
            "chortle.parallel", jobs=jobs, executor=self.executor,
            trees=len(trees),
        ) as par_sp:
            if self.executor == "process":
                return map_trees_processes(
                    net,
                    len(trees),
                    k=self.k,
                    split_threshold=self.split_threshold,
                    jobs=jobs,
                    use_shared_cache=self.cache is not None,
                )

            # Thread workers submit nothing over a pipe (pickle bytes are
            # zero by construction), but queue wait and per-tree compute
            # are still attributed so a flat speedup can be explained.
            def timed_task(tree, order, worker: int, submitted_at: float) -> MapCand:
                started_at = time.perf_counter()
                cand = self._map_one_tree(net, tree, order, worker=worker)
                record_task_telemetry(
                    queue_wait=max(0.0, started_at - submitted_at),
                    task_seconds=time.perf_counter() - started_at,
                )
                return cand

            counters_before = metrics.counters()
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="chortle-map"
            ) as pool:
                futures = [
                    pool.submit(
                        timed_task, tree, orders[i], i % jobs,
                        time.perf_counter(),
                    )
                    for i, tree in enumerate(trees)
                ]
                cands = [future.result() for future in futures]
            delta = metrics.counter_delta(counters_before)
            par_sp.set(
                "queue_wait_seconds",
                round(delta.get("perf.parallel.queue_wait_us", 0) / 1e6, 4),
            )
            par_sp.set(
                "task_seconds",
                round(delta.get("perf.parallel.task_us", 0) / 1e6, 4),
            )
            return cands

    def _map_one_tree(self, net: BooleanNetwork, tree, order, worker) -> MapCand:
        attrs = {"tree": tree.root, "nodes": tree.num_nodes}
        if worker is not None:
            attrs["worker"] = worker
        with span("chortle.map_tree", **attrs) as tree_sp:
            cand = self._tree_mapper.map_tree(net, tree, order=order)
            tree_sp.set("luts", cand.cost)
        return cand


def map_network(
    network: BooleanNetwork, k: int = 4, split_threshold: int = 10
) -> LUTCircuit:
    """Convenience wrapper around :class:`ChortleMapper`."""
    return ChortleMapper(k=k, split_threshold=split_threshold).map(network)
