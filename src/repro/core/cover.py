"""Legality checks for lookup-table covers (Section 2's conditions).

A mapped circuit is a *cover* of the boolean network.  This module checks
the conditions the paper imposes on valid covers, at the granularity our
construction makes observable:

1. every lookup table has a single output and at most K inputs;
2. the circuit is acyclic and its wires are all defined;
3. every output port of the network is driven, and the circuit's primary
   inputs are exactly the network's;
4. every network node retained as a tree root has an identically named
   lookup table computing the same boolean function (the paper's
   "at least one node in the set of sub-dags with the same boolean
   function" restriction), checked by bit-parallel simulation.
"""

from __future__ import annotations

import random

from repro.errors import VerificationError
from repro.core.lut import LUTCircuit
from repro.network.network import BooleanNetwork
from repro.network.simulate import exhaustive_input_words, simulate


def check_cover(
    network: BooleanNetwork,
    circuit: LUTCircuit,
    k: int,
    vectors: int = 256,
    seed: int = 0,
) -> None:
    """Raise :class:`VerificationError` if the cover is not valid."""
    circuit.validate(k)

    if tuple(circuit.inputs) != tuple(network.inputs):
        raise VerificationError(
            "primary inputs differ: %s vs %s"
            % (network.inputs, circuit.inputs)
        )
    missing_ports = set(network.outputs) - set(circuit.outputs)
    if missing_ports:
        raise VerificationError("undriven output ports: %s" % sorted(missing_ports))

    inputs = network.inputs
    if len(inputs) <= 12:
        words = exhaustive_input_words(inputs)
        width = 1 << len(inputs)
    else:
        rng = random.Random(seed)
        width = vectors
        words = {name: rng.getrandbits(width) for name in inputs}

    net_values = simulate(network, words, width)
    ckt_values = circuit.simulate(words, width)
    mask = (1 << width) - 1

    # Tree-root lookup tables carry the network node's name; their
    # functions must match node for node.
    for name, word in ckt_values.items():
        if name in net_values and name not in circuit.inputs:
            if word & mask != net_values[name] & mask:
                raise VerificationError(
                    "lookup table %r does not match network node %r" % (name, name)
                )

    # Output ports must match functionally.
    for port, sig in network.outputs.items():
        expected = net_values[sig.name]
        if sig.inv:
            expected = ~expected & mask
        actual = ckt_values[circuit.outputs[port]]
        if expected & mask != actual & mask:
            raise VerificationError("output port %r differs" % port)
