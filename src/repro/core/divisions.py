"""Reference implementation: the paper's exhaustive search, transliterated.

This module re-implements tree mapping exactly as Figure 4's pseudo-code
describes it — enumerate every set partition of a node's fanins into
groups (each group a single fanin or an intermediate node), and for each
partition every utilization division — without the subset-DP acceleration
used by :mod:`repro.core.tree_mapper`.  It computes costs only and is
exponential, so it is used solely as a cross-check oracle in the test
suite, pinning the fast mapper to the paper's specification.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.core.forest import Tree
from repro.network.network import BooleanNetwork

_INF = float("inf")

# Reference fanin items: ("ext",) for a leaf edge or ("table", cost_list).
RefItem = Tuple


def set_partitions(elements: Sequence) -> List[List[List]]:
    """All partitions of ``elements`` into non-empty blocks."""
    elements = list(elements)
    if not elements:
        return [[]]
    first, rest = elements[0], elements[1:]
    partitions = []
    for sub in set_partitions(rest):
        # Put `first` into each existing block, or into a new block.
        for i in range(len(sub)):
            partitions.append(sub[:i] + [[first] + sub[i]] + sub[i + 1:])
        partitions.append([[first]] + sub)
    return partitions


def _block_options(block: List[RefItem], k: int) -> List[Tuple[int, float]]:
    """(inputs consumed, cost) options for one group of a decomposition."""
    if len(block) == 1:
        item = block[0]
        if item[0] == "ext":
            return [(1, 0)]
        table = item[1]
        options: List[Tuple[int, float]] = []
        if table[k] is not None:
            options.append((1, table[k]))
        for uc in range(2, k + 1):
            if table[uc] is not None:
                options.append((uc, table[uc] - 1))
        return options
    # An intermediate node: a single input to the root lookup table.
    sub_table = exhaustive_node_costs("op", block, k)
    if sub_table[k] is None:
        return []
    return [(1, sub_table[k])]


def exhaustive_node_costs(
    op: str, items: Sequence[RefItem], k: int
) -> List[Optional[float]]:
    """minmap costs (index = utilization bound) by exhaustive enumeration."""
    items = list(items)
    if len(items) < 2:
        raise MappingError("reference mapper needs at least two fanins")
    best: List[float] = [_INF] * (k + 1)
    for partition in set_partitions(items):
        if len(partition) < 2:
            continue  # a single group is not a decomposition
        per_block = [_block_options(block, k) for block in partition]
        if any(not options for options in per_block):
            continue
        for choice in itertools.product(*per_block):
            consumed = sum(c for c, _ in choice)
            if consumed > k:
                continue
            cost = 1 + sum(c for _, c in choice)
            if cost < best[consumed]:
                best[consumed] = cost
    # Monotonize to the at-most-u convention used by the fast mapper.
    for u in range(1, k + 1):
        if best[u - 1] < best[u]:
            best[u] = best[u - 1]
    return [None if c is _INF else c for c in best]


def exhaustive_map_tree(network: BooleanNetwork, tree: Tree, k: int) -> int:
    """Minimum LUT count of a tree per the paper's exhaustive procedure."""
    tables: Dict[str, List[Optional[float]]] = {}
    for name in network.topological_order():
        if name not in tree.internal:
            continue
        node = network.node(name)
        items: List[RefItem] = []
        for sig in node.fanins:
            if sig.name in tables:
                items.append(("table", tables[sig.name]))
            else:
                items.append(("ext",))
        tables[name] = exhaustive_node_costs(node.op, items, k)
    cost = tables[tree.root][k]
    if cost is None:
        raise MappingError("no feasible mapping for tree %r" % tree.root)
    return int(cost)
