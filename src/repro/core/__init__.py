"""The Chortle technology mapper (the paper's contribution).

Public entry point::

    from repro.core import ChortleMapper
    circuit = ChortleMapper(k=4).map(network)

The mapper partitions the network into maximal fanout-free trees
(Section 3), maps each tree optimally by dynamic programming over
utilizations and utilization divisions (Section 3.1), searches all
two-level and multi-level decompositions of every node (Section 3.1.3),
and splits nodes whose fanin exceeds a threshold (Section 3.1.4).
"""

from repro.core.lut import LUT, LUTCircuit
from repro.core.forest import Forest, Tree, build_forest
from repro.core.chortle import ChortleMapper, map_network
from repro.core.cover import check_cover

__all__ = [
    "LUT",
    "LUTCircuit",
    "Tree",
    "Forest",
    "build_forest",
    "ChortleMapper",
    "map_network",
    "check_cover",
]
