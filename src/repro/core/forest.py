"""Partitioning a boolean network into maximal fanout-free trees.

Following Section 3 of the paper: every edge leaving a node with
out-degree greater than one is conceptually redirected through a new
pseudo-input, turning the DAG into a forest of maximal fanout-free trees.
Here the redirection is implicit: a *tree root* is any gate that drives
an output port or is read by other than exactly one gate; every other
gate belongs to the tree of its unique consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import MappingError
from repro.network.network import CONST0, CONST1, INPUT, BooleanNetwork


@dataclass
class Tree:
    """One maximal fanout-free tree.

    ``root`` and ``internal`` are gate nodes of the network; ``leaves``
    are the external node names referenced by the tree's fanin edges
    (primary inputs or roots of other trees).
    """

    root: str
    internal: Set[str] = field(default_factory=set)
    leaves: Set[str] = field(default_factory=set)

    @property
    def num_nodes(self) -> int:
        return len(self.internal)

    def __repr__(self) -> str:
        return "Tree(root=%r, nodes=%d, leaves=%d)" % (
            self.root,
            len(self.internal),
            len(self.leaves),
        )


@dataclass
class Forest:
    """The forest of trees covering a network, roots in topological order."""

    network: BooleanNetwork
    trees: List[Tree] = field(default_factory=list)

    @property
    def num_trees(self) -> int:
        return len(self.trees)

    def tree_of(self, root: str) -> Tree:
        for tree in self.trees:
            if tree.root == root:
                return tree
        raise MappingError("no tree rooted at %r" % root)


def tree_roots(network: BooleanNetwork) -> Set[str]:
    """Gate nodes that must become tree roots."""
    gate_uses: Dict[str, int] = {name: 0 for name in network.names()}
    for node in network.gates():
        for sig in node.fanins:
            gate_uses[sig.name] += 1
    port_driven = {sig.name for sig in network.outputs.values()}
    roots = set()
    for node in network.gates():
        if node.name in port_driven or gate_uses[node.name] != 1:
            roots.add(node.name)
    return roots


def build_forest(network: BooleanNetwork) -> Forest:
    """Split the network into maximal fanout-free trees."""
    roots = tree_roots(network)
    order = network.topological_order()
    forest = Forest(network)
    for name in order:
        if name not in roots:
            continue
        tree = Tree(root=name)
        stack = [name]
        while stack:
            cur = stack.pop()
            node = network.node(cur)
            tree.internal.add(cur)
            for sig in node.fanins:
                child = network.node(sig.name)
                if child.op == INPUT or child.op in (CONST0, CONST1):
                    tree.leaves.add(sig.name)
                elif sig.name in roots:
                    tree.leaves.add(sig.name)
                else:
                    if sig.name in tree.internal:
                        raise MappingError(
                            "node %r reached twice inside one tree; "
                            "network is not properly fanout-partitioned"
                            % sig.name
                        )
                    stack.append(sig.name)
        forest.trees.append(tree)
    return forest


def tree_orders(forest: Forest) -> List[List[str]]:
    """Per-tree topological node orders from ONE whole-network sort.

    ``TreeMapper.map_tree`` needs its tree's internal nodes in
    topological order; deriving that per tree from
    ``network.topological_order()`` is O(trees x network) — quadratic on
    tree-heavy networks.  One sort plus one slicing pass is linear, and
    each slice preserves the global order, so the DP visits nodes in
    exactly the same sequence either way.
    """
    owner: Dict[str, int] = {}
    for index, tree in enumerate(forest.trees):
        for name in tree.internal:
            owner[name] = index
    orders: List[List[str]] = [[] for _ in forest.trees]
    for name in forest.network.topological_order():
        index = owner.get(name)
        if index is not None:
            orders[index].append(name)
    return orders


def check_forest(forest: Forest) -> None:
    """Verify the forest partitions the network's gates and edges."""
    seen: Set[str] = set()
    for tree in forest.trees:
        overlap = seen & tree.internal
        if overlap:
            raise MappingError(
                "gates %s appear in more than one tree" % sorted(overlap)
            )
        seen |= tree.internal
    all_gates = {n.name for n in forest.network.gates()}
    missing = all_gates - seen
    if missing:
        raise MappingError("gates %s not covered by any tree" % sorted(missing))
