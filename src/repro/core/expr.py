"""Expression trees describing the function inside a single lookup table.

During tree mapping, the contents of a root lookup table are represented
structurally: an AND/OR expression whose leaves are either external
signals (tree leaves) or references to child lookup tables.  Expressions
are materialized into truth tables only for the LUTs of the final chosen
mapping.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.network.network import AND, OR
from repro.truth.truthtable import TruthTable


class Leaf:
    """A literal: an input wire of the lookup table, possibly inverted."""

    __slots__ = ("key", "inv")

    def __init__(self, key, inv: bool = False):
        self.key = key
        self.inv = bool(inv)

    def __repr__(self) -> str:
        return "Leaf(%r%s)" % (self.key, ", inv" if self.inv else "")


class OpExpr:
    """An AND/OR over sub-expressions."""

    __slots__ = ("op", "children")

    def __init__(self, op: str, children: Sequence):
        if op not in (AND, OR):
            raise ValueError("expression op must be and/or, got %r" % op)
        if not children:
            raise ValueError("OpExpr needs at least one child")
        self.op = op
        self.children = tuple(children)

    def __repr__(self) -> str:
        return "OpExpr(%r, %d children)" % (self.op, len(self.children))


class NotExpr:
    """Complement of a sub-expression."""

    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def __repr__(self) -> str:
        return "NotExpr(%r)" % (self.child,)


Expr = object  # Leaf | OpExpr | NotExpr


def iter_leaves(expr) -> Iterator[Leaf]:
    """Yield every Leaf in the expression, left to right."""
    stack = [expr]
    out: List[Leaf] = []
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            out.append(node)
        elif isinstance(node, NotExpr):
            stack.append(node.child)
        else:
            stack.extend(reversed(node.children))
    # The stack walk above visits in reverse; rebuild order.
    return iter(out)


def leaf_keys(expr) -> List:
    """Distinct leaf keys in first-appearance order."""
    seen = set()
    order = []
    for leaf in iter_leaves(expr):
        if leaf.key not in seen:
            seen.add(leaf.key)
            order.append(leaf.key)
    return order


def evaluate(expr, values: Dict) -> bool:
    """Evaluate the expression given leaf-key truth values."""
    if isinstance(expr, Leaf):
        v = bool(values[expr.key])
        return not v if expr.inv else v
    if isinstance(expr, NotExpr):
        return not evaluate(expr.child, values)
    if expr.op == AND:
        return all(evaluate(c, values) for c in expr.children)
    return any(evaluate(c, values) for c in expr.children)


def to_truth_table(expr, key_order: Sequence) -> TruthTable:
    """Truth table of the expression over the given leaf-key order."""
    n = len(key_order)
    bits = 0
    for m in range(1 << n):
        values = {key: (m >> j) & 1 for j, key in enumerate(key_order)}
        if evaluate(expr, values):
            bits |= 1 << m
    return TruthTable(n, bits)


def count_leaf_refs(expr) -> int:
    """Total leaf references (with multiplicity)."""
    return sum(1 for _ in iter_leaves(expr))
