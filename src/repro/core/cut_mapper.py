"""DAG covering with priority cuts: the mapper that escapes the trees.

Chortle (the paper, and :class:`~repro.core.chortle.ChortleMapper`)
partitions the network into fanout-free trees and optimizes each tree
exactly.  The partition is also its acknowledged weakness: every
multi-fanout point severs the DAG, so reconvergent logic — the XOR
patterns the paper concedes to MIS at K=2 — is mapped piecewise.

:class:`CutMapper` covers the *whole* DAG instead, with the standard
structural-mapping pipeline the FPGA literature converged on after
Chortle (FlowMap-r, CutMap, ABC's ``if``, iMap's ``klut_mapping``):

1. decompose into a two-input subject graph
   (:func:`~repro.baseline.subject.decompose_to_binary`, origins kept
   for provenance);
2. enumerate priority-pruned K-feasible cuts per node
   (:mod:`repro.core.cuts`), ranked by area flow (``mode="area"``) or
   depth (``mode="depth"``);
3. select a cover with a required-node backward pass: walk from the
   output drivers in reverse topological order, realize each required
   node with its best cut, and mark the cut's gate leaves required;
4. run ``rounds`` of area recovery: re-enumerate with the fanout
   estimates replaced by the previous cover's actual reference counts,
   so the area-flow amortization discounts sharing only where the cover
   shares, and keep the best cover seen;
5. emit one LUT per covered node through the shared substrate
   (:func:`~repro.core.substrate.cone_truth_table`), stamped with
   ``"cut"`` provenance attributed to the node's *origin* (the
   pre-decomposition node), and plumb outputs with
   :func:`~repro.core.substrate.wire_outputs`.

Like the tree mapper, ``cache`` (cone truth tables keyed by
:func:`~repro.core.substrate.cone_signature`) and ``jobs`` (thread-
parallel cone evaluation) are QoR-neutral accelerators, and a
``recorder`` turns on decision provenance — per covered node the chosen
cut, the retained runner-up cuts, and the cost distance between them
(area flow recorded in milli-LUT units, since decision costs are
integers).
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.explain import DecisionRecorder, MappingExplanation

from repro.baseline.subject import decompose_to_binary
from repro.core.cuts import (
    DEFAULT_PRIORITY_SIZE,
    Cut,
    NodeCuts,
    check_cut_size,
    enumerate_cuts,
)
from repro.core.lut import LUTCircuit, LUTProvenance
from repro.core.substrate import cone_signature, cone_truth_table, wire_outputs
from repro.errors import MappingError
from repro.network.network import BooleanNetwork
from repro.network.transform import sweep
from repro.obs import metrics, span
from repro.truth.truthtable import TruthTable

#: Runner-up cuts retained per node decision when recording provenance.
_MAX_ALTERNATIVES = 4


def _milli(flow: float) -> int:
    """Area flow in milli-LUT units (decision records hold integers)."""
    return int(round(flow * 1000))


class CutMapper:
    """Priority-cut DAG-covering technology mapper for K-input LUTs.

    Satisfies the same ``Mapper`` protocol as
    :class:`~repro.core.chortle.ChortleMapper`: construct with ``k``,
    call :meth:`map`, get a :class:`~repro.core.lut.LUTCircuit`.

    ``priority_size`` bounds the cuts kept per node (quality/runtime
    knob); ``mode`` selects the cover objective (``area`` or ``depth``);
    ``rounds`` is the number of area-recovery re-enumerations; ``cache``
    memoizes cone truth tables across calls and K sweeps (``True`` for
    the shared process cache, or an explicit
    :class:`~repro.perf.memo.NodeTableCache`); ``jobs`` evaluates cone
    truth tables on worker threads (``None`` = one per CPU).  Cache and
    jobs are QoR-neutral: the mapped circuit is bit-identical to a
    serial, uncached run.

    ``recorder`` (a :class:`~repro.obs.explain.DecisionRecorder`)
    enables decision provenance; the built
    :class:`~repro.obs.explain.MappingExplanation` is exposed as
    :attr:`explanation` after each :meth:`map` call.  Decisions are
    grouped per origin node of the source network, mirroring the tree
    mapper's per-tree grouping.
    """

    name = "cutmap"  # spec name under the common Mapper protocol

    def __init__(
        self,
        k: int = 4,
        priority_size: int = DEFAULT_PRIORITY_SIZE,
        mode: str = "area",
        rounds: int = 2,
        preprocess: bool = True,
        cache: object = None,
        jobs: int = 1,
        recorder: Optional["DecisionRecorder"] = None,
    ) -> None:
        check_cut_size(k)
        if mode not in ("area", "depth"):
            raise MappingError(
                "cut mapper mode must be 'area' or 'depth', got %r" % mode
            )
        if rounds < 0:
            raise MappingError("rounds must be >= 0, got %d" % rounds)
        self.k = k
        self.priority_size = priority_size
        self.mode = mode
        self.rounds = rounds
        self.preprocess = preprocess
        from repro.perf.memo import resolve_cache

        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.recorder = recorder
        # The explanation for the most recent map() call (recorder set).
        self.explanation: Optional["MappingExplanation"] = None

    # -- public API ----------------------------------------------------------

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        """Map the network into a circuit of K-input lookup tables."""
        with span(
            "cutmap.map", network=network.name, k=self.k, mode=self.mode
        ) as sp:
            net = sweep(network) if self.preprocess else network
            net.validate()
            origins: Dict[str, str] = {}
            # Area covering wants the chain shape (a w-input gate costs
            # the optimal ceil((w-1)/(K-1)) LUTs); depth covering wants
            # the balanced shape (log-depth subject graph).
            style = "chain" if self.mode == "area" else "balanced"
            subject = decompose_to_binary(net, origins=origins, style=style)

            cover, cuts = self._select_with_recovery(subject)
            circuit = self._emit(subject, cover, origins)
            wire_outputs(subject, circuit)
            circuit.validate(self.k)
            sp.set("luts", circuit.cost)
            metrics.count("cutmap.luts_emitted", circuit.cost)
            metrics.count("cutmap.nodes_covered", len(cover))

            if self.recorder is not None:
                self._record(subject, cover, cuts, origins)
                from repro.obs.explain import build_explanation

                self.explanation = build_explanation(
                    net, circuit, self.recorder, k=self.k, mapper=self.name
                )
            return circuit

    # -- cover selection -----------------------------------------------------

    def _select_with_recovery(
        self, subject: BooleanNetwork
    ) -> Tuple[Dict[str, Cut], Dict[str, NodeCuts]]:
        """The best cover over the initial pass + ``rounds`` recoveries."""
        cuts = enumerate_cuts(
            subject, self.k, priority_size=self.priority_size, mode=self.mode
        )
        cover = self._select_cover(subject, cuts)
        best = (self._cover_key(cover), cover, cuts)
        for _ in range(self.rounds):
            est = self._reference_counts(subject, cover)
            cuts = enumerate_cuts(
                subject,
                self.k,
                priority_size=self.priority_size,
                mode=self.mode,
                fanout_est=est,
            )
            cover = self._select_cover(subject, cuts)
            key = self._cover_key(cover)
            if key < best[0]:
                best = (key, cover, cuts)
        metrics.count("cutmap.recovery_rounds", self.rounds)
        cover = self._refine_exact_area(subject, best[2], best[1])
        return cover, best[2]

    def _refine_exact_area(
        self,
        subject: BooleanNetwork,
        cuts: Dict[str, NodeCuts],
        cover: Dict[str, Cut],
    ) -> Dict[str, Cut]:
        """Exact-area local refinement of a cover (the deref/ref pass).

        Area flow only *estimates* sharing; this pass measures it.  For
        every covered node it detaches the chosen cut's references,
        evaluates each retained candidate by the exact number of LUTs it
        would add (recursively pulling in currently-unreferenced leaves),
        and keeps the cheapest.  Repeats until a full pass changes
        nothing.  In depth mode, substitutions are restricted to cuts
        that do not worsen the node's depth.
        """
        chosen: Dict[str, Cut] = {
            name: nc.best for name, nc in cuts.items() if nc.cuts
        }
        chosen.update(cover)
        refs: Dict[str, int] = {}

        def is_gate(name: str) -> bool:
            return bool(cuts[name].cuts)

        def area_of(cut: Cut) -> int:
            # Mirror LUTCircuit.cost: single-input tables are free.
            return 1 if cut.size >= 2 else 0

        # Both walks push gate leaves onto an explicit stack — reference
        # counting is a commutative sum, so traversal order is free and
        # cover depth never touches the interpreter recursion limit.
        def ref(name: str) -> int:
            total = 0
            stack: List[str] = [name]
            while stack:
                cur = stack.pop()
                refs[cur] = refs.get(cur, 0) + 1
                if refs[cur] > 1:
                    continue
                cut = chosen[cur]
                total += area_of(cut)
                for leaf in cut.leaves:
                    if is_gate(leaf):
                        stack.append(leaf)
            return total

        def deref(name: str) -> int:
            total = 0
            stack: List[str] = [name]
            while stack:
                cur = stack.pop()
                refs[cur] -= 1
                if refs[cur] > 0:
                    continue
                cut = chosen[cur]
                total += area_of(cut)
                for leaf in cut.leaves:
                    if is_gate(leaf):
                        stack.append(leaf)
            return total

        for sig in subject.outputs.values():
            if is_gate(sig.name):
                ref(sig.name)

        order = [n for n in subject.topological_order() if is_gate(n)]
        improved = True
        passes = 0
        while improved and passes < 4:
            improved = False
            passes += 1
            for name in order:
                if refs.get(name, 0) <= 0:
                    continue
                current = chosen[name]
                for leaf in current.leaves:
                    if is_gate(leaf):
                        deref(leaf)
                # Cost the detached current cut first so ties keep it.
                best_cut = current
                gained = sum(
                    ref(leaf) for leaf in current.leaves if is_gate(leaf)
                )
                best_cost = (
                    area_of(current) + gained, current.depth, current.leaves
                )
                for leaf in current.leaves:
                    if is_gate(leaf):
                        deref(leaf)
                for cand in cuts[name].cuts:
                    if cand.leaves == current.leaves:
                        continue
                    if self.mode == "depth" and cand.depth > current.depth:
                        continue
                    added = area_of(cand) + sum(
                        ref(leaf) for leaf in cand.leaves if is_gate(leaf)
                    )
                    cost = (added, cand.depth, cand.leaves)
                    for leaf in cand.leaves:
                        if is_gate(leaf):
                            deref(leaf)
                    if cost < best_cost:
                        best_cost = cost
                        best_cut = cand
                for leaf in best_cut.leaves:
                    if is_gate(leaf):
                        ref(leaf)
                if best_cut is not current:
                    chosen[name] = best_cut
                    improved = True
        metrics.count("cutmap.exact_area_passes", passes)
        return {
            name: chosen[name]
            for name in order
            if refs.get(name, 0) > 0
        }

    def _select_cover(
        self, subject: BooleanNetwork, cuts: Dict[str, NodeCuts]
    ) -> Dict[str, Cut]:
        """Required-node backward pass: outputs pull in their best cuts,
        whose gate leaves become required in turn."""
        required = {
            sig.name
            for sig in subject.outputs.values()
            if subject.node(sig.name).is_gate
        }
        chosen: Dict[str, Cut] = {}
        for name in reversed(subject.topological_order()):
            if name not in required:
                continue
            cut = cuts[name].best
            chosen[name] = cut
            for leaf in cut.leaves:
                if subject.node(leaf).is_gate:
                    required.add(leaf)
        return chosen

    def _cover_key(self, cover: Dict[str, Cut]) -> Tuple[int, int]:
        """The comparison key of a cover under the mapper's objective."""
        luts = sum(1 for cut in cover.values() if cut.size >= 2)
        depth = max((cut.depth for cut in cover.values()), default=0)
        if self.mode == "depth":
            return (depth, luts)
        return (luts, depth)

    def _reference_counts(
        self, subject: BooleanNetwork, cover: Dict[str, Cut]
    ) -> Dict[str, int]:
        """How often each node is actually referenced by the cover.

        Covered nodes are read by the cuts that use them as leaves and
        by the output ports; the counts replace structural fanout in the
        next enumeration's area-flow amortization.  Nodes the cover
        absorbed entirely keep their structural fanout (they are not in
        the returned dict).
        """
        refs: Dict[str, int] = {}
        for cut in cover.values():
            for leaf in cut.leaves:
                refs[leaf] = refs.get(leaf, 0) + 1
        for sig in subject.outputs.values():
            if subject.node(sig.name).is_gate:
                refs[sig.name] = refs.get(sig.name, 0) + 1
        return {name: max(1, n) for name, n in refs.items()}

    # -- emission ------------------------------------------------------------

    def _emit(
        self,
        subject: BooleanNetwork,
        cover: Dict[str, Cut],
        origins: Dict[str, str],
    ) -> LUTCircuit:
        circuit = LUTCircuit("%s_cut_k%d" % (subject.name, self.k))
        for name in subject.inputs:
            circuit.add_input(name)
        order = [n for n in subject.topological_order() if n in cover]
        tables = self._cone_tables(subject, cover, order)
        for name in order:
            cut = cover[name]
            origin = origins.get(name, name)
            circuit.add_lut(
                name,
                cut.leaves,
                tables[name],
                provenance=LUTProvenance(
                    tree=origin,
                    op=subject.node(name).op,
                    placements=("cut",) * cut.size,
                    root=name == origin,
                ),
            )
        return circuit

    def _cone_tables(
        self,
        subject: BooleanNetwork,
        cover: Dict[str, Cut],
        order: List[str],
    ) -> Dict[str, TruthTable]:
        """Cone truth tables for every covered node, memoized and
        (optionally) evaluated on worker threads.

        Both accelerators are exact: the cache key is the canonical cone
        structure (:func:`~repro.core.substrate.cone_signature`), and
        thread results are collected in submission order.
        """

        def one(name: str) -> TruthTable:
            leaves = cover[name].leaves
            if self.cache is None:
                return cone_truth_table(subject, name, leaves)
            key = ("cut", self.k, cone_signature(subject, name, leaves))
            tt = self.cache.get(key)
            if tt is None:
                tt = cone_truth_table(subject, name, leaves)
                self.cache.put(key, tt)
            return tt

        jobs = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        if jobs <= 1 or len(order) < 2:
            return {name: one(name) for name in order}
        with span("cutmap.parallel", jobs=jobs, cones=len(order)):
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(jobs, len(order)),
                thread_name_prefix="cutmap-tt",
            ) as pool:
                return dict(zip(order, pool.map(one, order)))

    # -- decision provenance -------------------------------------------------

    def _record(
        self,
        subject: BooleanNetwork,
        cover: Dict[str, Cut],
        cuts: Dict[str, NodeCuts],
        origins: Dict[str, str],
    ) -> None:
        """Stream the cover's decisions into the recorder, grouped by the
        origin node of the source network (the cut-cover analogue of the
        tree mapper's per-tree grouping)."""
        from repro.obs.explain import Alternative, NodeDecision, TreeDecisions

        groups: Dict[str, List[str]] = {}
        for name in subject.topological_order():
            if name in cover:
                groups.setdefault(origins.get(name, name), []).append(name)
        self.recorder.set_order(list(groups))

        for root, names in groups.items():
            decisions: List[NodeDecision] = []
            luts = 0
            depth = 0
            for name in names:
                cut = cover[name]
                retained = cuts[name].cuts
                alternatives = tuple(
                    Alternative(
                        utilization=alt.size,
                        cost=_milli(alt.area_flow),
                        depth=alt.depth,
                        placements=("cut",) * alt.size,
                    )
                    for alt in retained[1 : 1 + _MAX_ALTERNATIVES]
                )
                runner_up_delta = (
                    _milli(retained[1].area_flow) - _milli(cut.area_flow)
                    if len(retained) > 1
                    else None
                )
                node = subject.node(name)
                decisions.append(
                    NodeDecision(
                        node=name,
                        op=node.op,
                        fanins=node.fanin_count,
                        split=False,
                        placement="cut",
                        utilization=cut.size,
                        cost=_milli(cut.area_flow),
                        depth=cut.depth,
                        placements=("cut",) * cut.size,
                        candidates=len(retained),
                        alternatives=alternatives,
                        runner_up_delta=runner_up_delta,
                    )
                )
                if cut.size >= 2:
                    luts += 1
                depth = max(depth, cut.depth)
            self.recorder.record_tree(
                TreeDecisions(root=root, luts=luts, depth=depth, nodes=decisions)
            )


def cut_map_network(
    network: BooleanNetwork,
    k: int = 4,
    priority_size: int = DEFAULT_PRIORITY_SIZE,
    mode: str = "area",
) -> LUTCircuit:
    """Convenience wrapper around :class:`CutMapper`."""
    return CutMapper(k=k, priority_size=priority_size, mode=mode).map(network)
