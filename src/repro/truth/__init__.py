"""Boolean function substrate: truth tables and canonical forms.

A :class:`TruthTable` is an immutable boolean function of ``n`` ordered
variables stored as a bitmask over all ``2**n`` input assignments.  This is
the representation used for LUT contents, for Boolean matching in the MIS
baseline library, and for functional verification of mappings.
"""

from repro.truth.truthtable import TruthTable
from repro.truth.canonical import (
    np_canonical,
    npn_canonical,
    p_canonical,
)
from repro.truth.enumerate import (
    all_functions,
    count_p_classes,
    p_class_representatives,
)

__all__ = [
    "TruthTable",
    "p_canonical",
    "np_canonical",
    "npn_canonical",
    "all_functions",
    "p_class_representatives",
    "count_p_classes",
]
