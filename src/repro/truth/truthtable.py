"""Bit-parallel truth tables.

The table of an ``n``-variable function is stored as an integer whose bit
``m`` holds the function value on the input assignment ``m``, where bit
``j`` of ``m`` is the value of variable ``j`` (variable 0 is the least
significant).  All operations are pure; instances are immutable and
hashable, so they can be used as dictionary keys for Boolean matching.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence


def _full_mask(nvars: int) -> int:
    return (1 << (1 << nvars)) - 1


class TruthTable:
    """An immutable boolean function of ``nvars`` ordered variables."""

    __slots__ = ("_nvars", "_bits")

    def __init__(self, nvars: int, bits: int):
        if nvars < 0:
            raise ValueError("nvars must be non-negative, got %d" % nvars)
        if nvars > 24:
            raise ValueError(
                "refusing to build a %d-variable truth table "
                "(2**%d rows); use simulation instead" % (nvars, nvars)
            )
        mask = _full_mask(nvars)
        if bits < 0 or bits > mask:
            raise ValueError(
                "bits 0x%x out of range for a %d-variable table" % (bits, nvars)
            )
        self._nvars = nvars
        self._bits = bits

    # -- constructors ----------------------------------------------------

    @classmethod
    def const(cls, value: bool, nvars: int = 0) -> TruthTable:
        """The constant ``value`` function of ``nvars`` variables."""
        return cls(nvars, _full_mask(nvars) if value else 0)

    @classmethod
    def var(cls, index: int, nvars: int) -> TruthTable:
        """The projection function returning variable ``index``."""
        if not 0 <= index < nvars:
            raise ValueError("variable %d out of range for %d vars" % (index, nvars))
        period = 1 << index
        # Pattern 0^period 1^period repeated.
        block = ((1 << period) - 1) << period
        bits = 0
        for start in range(0, 1 << nvars, 2 * period):
            bits |= block << start
        return cls(nvars, bits)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> TruthTable:
        """Build from an explicit list of 0/1 outputs, one per assignment."""
        size = len(values)
        nvars = size.bit_length() - 1
        if size == 0 or (1 << nvars) != size:
            raise ValueError("values length must be a power of two, got %d" % size)
        bits = 0
        for i, v in enumerate(values):
            if v not in (0, 1, True, False):
                raise ValueError("truth table values must be 0/1, got %r" % (v,))
            if v:
                bits |= 1 << i
        return cls(nvars, bits)

    @classmethod
    def from_callable(cls, func: Callable[..., bool], nvars: int) -> TruthTable:
        """Build by evaluating ``func`` on every assignment of ``nvars`` bits."""
        bits = 0
        for m in range(1 << nvars):
            args = [(m >> j) & 1 for j in range(nvars)]
            if func(*args):
                bits |= 1 << m
        return cls(nvars, bits)

    # -- basic accessors --------------------------------------------------

    @property
    def nvars(self) -> int:
        return self._nvars

    @property
    def bits(self) -> int:
        return self._bits

    def value(self, assignment: int) -> int:
        """Evaluate on an assignment encoded as an integer minterm index."""
        if not 0 <= assignment < (1 << self._nvars):
            raise ValueError("assignment %d out of range" % assignment)
        return (self._bits >> assignment) & 1

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Evaluate on a sequence of 0/1 input values (index 0 first)."""
        if len(inputs) != self._nvars:
            raise ValueError(
                "expected %d inputs, got %d" % (self._nvars, len(inputs))
            )
        m = 0
        for j, v in enumerate(inputs):
            if v:
                m |= 1 << j
        return (self._bits >> m) & 1

    def minterms(self) -> Iterable[int]:
        """Yield the assignments on which the function is 1."""
        bits = self._bits
        for m in range(1 << self._nvars):
            if (bits >> m) & 1:
                yield m

    def count_ones(self) -> int:
        """Number of satisfying assignments."""
        return bin(self._bits).count("1")

    # -- logical operations -----------------------------------------------

    def _check_compatible(self, other: TruthTable) -> None:
        if not isinstance(other, TruthTable):
            raise TypeError("expected TruthTable, got %r" % type(other).__name__)
        if other._nvars != self._nvars:
            raise ValueError(
                "variable-count mismatch: %d vs %d" % (self._nvars, other._nvars)
            )

    def __and__(self, other: TruthTable) -> TruthTable:
        self._check_compatible(other)
        return TruthTable(self._nvars, self._bits & other._bits)

    def __or__(self, other: TruthTable) -> TruthTable:
        self._check_compatible(other)
        return TruthTable(self._nvars, self._bits | other._bits)

    def __xor__(self, other: TruthTable) -> TruthTable:
        self._check_compatible(other)
        return TruthTable(self._nvars, self._bits ^ other._bits)

    def __invert__(self) -> TruthTable:
        return TruthTable(self._nvars, self._bits ^ _full_mask(self._nvars))

    # -- structural operations ---------------------------------------------

    def cofactor(self, index: int, value: int) -> TruthTable:
        """The function with variable ``index`` fixed to ``value``.

        The result keeps ``nvars`` variables (the fixed one becomes a
        don't-care) so cofactors stay directly comparable.
        """
        if not 0 <= index < self._nvars:
            raise ValueError("variable %d out of range" % index)
        bits = 0
        period = 1 << index
        src = self._bits
        for m in range(1 << self._nvars):
            base = (m & ~period) | (period if value else 0)
            if (src >> base) & 1:
                bits |= 1 << m
        return TruthTable(self._nvars, bits)

    def depends_on(self, index: int) -> bool:
        """True if the function is sensitive to variable ``index``."""
        return self.cofactor(index, 0)._bits != self.cofactor(index, 1)._bits

    def support(self) -> tuple:
        """Indices of the variables the function actually depends on."""
        return tuple(j for j in range(self._nvars) if self.depends_on(j))

    def support_size(self) -> int:
        return len(self.support())

    def is_constant(self) -> bool:
        return self._bits == 0 or self._bits == _full_mask(self._nvars)

    def permute(self, perm: Sequence[int]) -> TruthTable:
        """Reorder inputs: result(x0..) = self(x[perm[0]], x[perm[1]], ...).

        ``perm`` must be a permutation of ``range(nvars)``; input ``i`` of
        the original function is connected to new input ``perm[i]``.
        """
        if sorted(perm) != list(range(self._nvars)):
            raise ValueError("perm %r is not a permutation of inputs" % (perm,))
        bits = 0
        src = self._bits
        n = self._nvars
        for m in range(1 << n):
            src_m = 0
            for i in range(n):
                if (m >> perm[i]) & 1:
                    src_m |= 1 << i
            if (src >> src_m) & 1:
                bits |= 1 << m
        return TruthTable(n, bits)

    def negate_inputs(self, mask: int) -> TruthTable:
        """Complement every input whose bit is set in ``mask``."""
        if not 0 <= mask < (1 << self._nvars):
            raise ValueError("negation mask 0x%x out of range" % mask)
        bits = 0
        src = self._bits
        for m in range(1 << self._nvars):
            if (src >> (m ^ mask)) & 1:
                bits |= 1 << m
        return TruthTable(self._nvars, bits)

    def extend(self, nvars: int) -> TruthTable:
        """View this function over a larger variable set (new vars unused)."""
        if nvars < self._nvars:
            raise ValueError(
                "cannot extend %d-var table to %d vars" % (self._nvars, nvars)
            )
        bits = self._bits
        width = 1 << self._nvars
        for _ in range(nvars - self._nvars):
            bits |= bits << width
            width *= 2
        return TruthTable(nvars, bits)

    def shrink_to_support(self) -> TruthTable:
        """Project onto the variables in the support, preserving their order."""
        sup = self.support()
        bits = 0
        for m in range(1 << len(sup)):
            src_m = 0
            for i, j in enumerate(sup):
                if (m >> i) & 1:
                    src_m |= 1 << j
            if (self._bits >> src_m) & 1:
                bits |= 1 << m
        return TruthTable(len(sup), bits)

    def compose(self, subs: Sequence[TruthTable]) -> TruthTable:
        """Substitute ``subs[j]`` (all over a common variable set) for input j."""
        if len(subs) != self._nvars:
            raise ValueError("expected %d substitutions" % self._nvars)
        if self._nvars == 0:
            return TruthTable(0, self._bits)
        inner_n = subs[0].nvars
        for s in subs:
            if s.nvars != inner_n:
                raise ValueError("substituted tables must share a variable set")
        result = TruthTable.const(False, inner_n)
        for m in self.minterms():
            term = TruthTable.const(True, inner_n)
            for j in range(self._nvars):
                lit = subs[j] if (m >> j) & 1 else ~subs[j]
                term = term & lit
            result = result | term
        return result

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and self._nvars == other._nvars
            and self._bits == other._bits
        )

    def __hash__(self) -> int:
        return hash((self._nvars, self._bits))

    def __repr__(self) -> str:
        width = 1 << self._nvars
        return "TruthTable(%d, 0b%s)" % (
            self._nvars,
            format(self._bits, "0%db" % width),
        )

    def to_binary_string(self) -> str:
        """MSB-first binary string, one character per assignment."""
        return format(self._bits, "0%db" % (1 << self._nvars))


def all_permutations(nvars: int) -> Iterable[tuple]:
    """All input permutations for ``nvars`` variables."""
    return itertools.permutations(range(nvars))
