"""Canonical forms of boolean functions under input/output symmetry groups.

Three progressively larger groups are supported:

* **P**   — permutation of inputs.
* **NP**  — permutation plus complementation of inputs.  This is the group
  used for Boolean matching in the MIS baseline mapper, matching the
  paper's accounting in which input inverters are free ("a simple
  post-processor could easily merge all inverters into the lookup
  tables").
* **NPN** — NP plus complementation of the output.

Canonicalization is by exhaustive minimization over the group, which is
exact and fast enough for the variable counts that matter here (K <= 6).
"""

from __future__ import annotations

import itertools

from repro.perf.lru import LruCache
from repro.truth.truthtable import TruthTable

# Permutation tables are hit on every canonicalization (the MIS matcher
# canonicalizes every cut it considers), so the cache is instrumented:
# hit/miss/eviction counts appear as ``truth.perm_tables.*`` in the
# metrics registry and therefore in ``chortle profile``.  64 entries
# comfortably covers every nvars this package ever canonicalizes (the
# tables for nvars > 8 would be enormous long before the cache matters).
_PERM_TABLES = LruCache(maxsize=64, name="truth.perm_tables")


def _perm_tables(nvars: int) -> tuple:
    """Precomputed minterm-index remappings, one per input permutation.

    For a permutation ``perm``, entry ``m`` of its table is the source
    minterm index such that ``permuted.bits[m] = original.bits[table[m]]``.
    """
    cached = _PERM_TABLES.get(nvars)
    if cached is not None:
        return cached
    tables = []
    for perm in itertools.permutations(range(nvars)):
        table = []
        for m in range(1 << nvars):
            src_m = 0
            for i in range(nvars):
                if (m >> perm[i]) & 1:
                    src_m |= 1 << i
            table.append(src_m)
        tables.append(tuple(table))
    result = tuple(tables)
    _PERM_TABLES.put(nvars, result)
    return result


def _apply_index_table(bits: int, table: tuple) -> int:
    out = 0
    for m, src in enumerate(table):
        if (bits >> src) & 1:
            out |= 1 << m
    return out


def _neg_inputs(bits: int, mask: int, nvars: int) -> int:
    out = 0
    for m in range(1 << nvars):
        if (bits >> (m ^ mask)) & 1:
            out |= 1 << m
    return out


def p_canonical(tt: TruthTable) -> TruthTable:
    """Smallest table bits over all input permutations."""
    best = None
    for table in _perm_tables(tt.nvars):
        cand = _apply_index_table(tt.bits, table)
        if best is None or cand < best:
            best = cand
    return TruthTable(tt.nvars, best)


def np_canonical(tt: TruthTable) -> TruthTable:
    """Smallest table bits over input permutations and input negations."""
    best = None
    n = tt.nvars
    for mask in range(1 << n):
        negged = _neg_inputs(tt.bits, mask, n)
        for table in _perm_tables(n):
            cand = _apply_index_table(negged, table)
            if best is None or cand < best:
                best = cand
    return TruthTable(n, best)


def npn_canonical(tt: TruthTable) -> TruthTable:
    """Smallest table bits over the full NPN group."""
    a = np_canonical(tt)
    b = np_canonical(~tt)
    return a if a.bits <= b.bits else b
