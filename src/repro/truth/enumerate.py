"""Enumeration of boolean-function equivalence classes.

Section 4.1 of the paper reports the number of unique K-input functions
under input permutation (excluding the two constants): 10 for K=2 and 78
for K=3.  These counts are reproduced here exactly and asserted by the
test suite; they size the complete MIS libraries used for K=2 and K=3.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.truth.canonical import p_canonical
from repro.truth.truthtable import TruthTable


def all_functions(nvars: int) -> Iterable[TruthTable]:
    """Every boolean function of ``nvars`` variables (2**2**n of them)."""
    if nvars > 4:
        raise ValueError(
            "enumerating all %d-variable functions (2**%d) is not practical"
            % (nvars, 1 << nvars)
        )
    for bits in range(1 << (1 << nvars)):
        yield TruthTable(nvars, bits)


def p_class_representatives(
    nvars: int, include_constants: bool = False
) -> List[TruthTable]:
    """One canonical representative per input-permutation class.

    With ``include_constants=False`` (the paper's accounting) the two
    constant functions are dropped, giving 10 classes for nvars=2 and 78
    for nvars=3.
    """
    seen = set()
    reps = []
    for tt in all_functions(nvars):
        if not include_constants and tt.is_constant():
            continue
        canon = p_canonical(tt)
        if canon.bits not in seen:
            seen.add(canon.bits)
            reps.append(canon)
    return reps


def count_p_classes(nvars: int, include_constants: bool = False) -> int:
    """Number of distinct functions under input permutation."""
    return len(p_class_representatives(nvars, include_constants=include_constants))
