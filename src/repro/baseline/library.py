"""Technology libraries for the MIS baseline (Section 4.1 of the paper).

A library is a set of boolean functions a lookup table is *allowed* to
realize under the library-based flow.  Matching is NP-equivalence (input
permutations and inversions are free, since inverters merge into the
tables and are not counted), with an optional complement fallback
mirroring the paper's decision to give MIS credit for merged output
inverters.

* K=2, K=3: complete libraries — every function of at most K variables.
  The paper counts these as 10 and 78 permutation-unique functions; the
  same enumeration is reproduced in :mod:`repro.truth.enumerate` and
  asserted in the tests.
* K=4, K=5: incomplete libraries built from all level-0 kernels with K or
  fewer literals over distinct variables, their duals, plus the common
  circuit elements the paper lists (ANDs/ORs, XORs) and a MUX/AOI-style
  element for the "level-n kernels that cannot be synthesized by level-0
  kernels".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from repro.errors import LibraryError
from repro.truth.canonical import np_canonical
from repro.truth.truthtable import TruthTable


@dataclass
class Library:
    """A set of matchable functions keyed by NP-canonical form.

    ``complete=True`` marks a library containing *every* function of at
    most ``k`` variables; matching then degenerates to a support-size
    check, and no cells need to be stored (the whole point of Chortle is
    that for K >= 4 such a library cannot be enumerated cell by cell).
    """

    name: str
    k: int
    free_inverters: bool = True
    complete: bool = False
    _canon: Dict[int, Set[int]] = field(default_factory=dict)
    _expanded: Dict[int, Set[int]] = field(default_factory=dict, repr=False)
    _match_cache: Dict[Tuple[int, int], bool] = field(default_factory=dict, repr=False)

    def add(self, tt: TruthTable) -> None:
        reduced = tt.shrink_to_support()
        if reduced.nvars > self.k:
            raise LibraryError(
                "cell with %d-variable support exceeds K=%d"
                % (reduced.nvars, self.k)
            )
        canon = np_canonical(reduced)
        self._canon.setdefault(reduced.nvars, set()).add(canon.bits)
        self._expanded.clear()
        self._match_cache.clear()

    def _expand(self) -> None:
        """Precompute the NP closure of every cell for O(1) matching."""
        from repro.truth.canonical import _apply_index_table, _neg_inputs, _perm_tables

        for nvars, bucket in self._canon.items():
            closure: Set[int] = set()
            tables = _perm_tables(nvars)
            for bits in bucket:
                seeds = [bits]
                if self.free_inverters:
                    seeds.append(bits ^ ((1 << (1 << nvars)) - 1))
                for seed in seeds:
                    for mask in range(1 << nvars):
                        negged = _neg_inputs(seed, mask, nvars)
                        for table in tables:
                            closure.add(_apply_index_table(negged, table))
            self._expanded[nvars] = closure

    def matches(self, tt: TruthTable) -> bool:
        """Can a LUT with this function be drawn from the library?"""
        key = (tt.nvars, tt.bits)
        cached = self._match_cache.get(key)
        if cached is not None:
            return cached
        reduced = tt.shrink_to_support()
        if reduced.nvars > self.k:
            result = False
        elif self.complete:
            result = True
        else:
            if not self._expanded and self._canon:
                self._expand()
            result = reduced.bits in self._expanded.get(reduced.nvars, set())
        self._match_cache[key] = result
        return result

    @property
    def num_cells(self) -> int:
        return sum(len(bucket) for bucket in self._canon.values())

    def cells_by_support(self) -> Dict[int, int]:
        return {n: len(bucket) for n, bucket in sorted(self._canon.items())}

    def __repr__(self) -> str:
        return "Library(%r, k=%d, cells=%d%s)" % (
            self.name,
            self.k,
            self.num_cells,
            ", complete" if self.complete else "",
        )


def complete_library(k: int) -> Library:
    """Every function of at most ``k`` variables (practical for k <= 3).

    This is the paper's complete library: 10 permutation-unique functions
    for K=2, 78 for K=3 (excluding constants).
    """
    if k > 3:
        raise LibraryError(
            "a complete K=%d library has too many cells to represent "
            "(the library size problem motivating Chortle); use "
            "kernel_library(%d)" % (k, k)
        )
    lib = Library("complete-k%d" % k, k, complete=True)
    for n in range(1, k + 1):
        for bits in range(1 << (1 << n)):
            tt = TruthTable(n, bits)
            if tt.is_constant() or tt.support_size() != n:
                continue
            lib.add(tt)
    return lib


def _cube_partitions(total: int) -> Iterable[Tuple[int, ...]]:
    """Integer partitions of ``total`` into at least two parts (cube sizes)."""
    def rec(remaining: int, maximum: int) -> Iterable[Tuple[int, ...]]:
        if remaining == 0:
            yield ()
            return
        for first in range(min(remaining, maximum), 0, -1):
            for rest in rec(remaining - first, first):
                yield (first,) + rest

    for partition in rec(total, total - 1):
        if len(partition) >= 2:
            yield partition


def _sop_of_shape(shape: Tuple[int, ...]) -> TruthTable:
    """OR of disjoint-variable AND cubes with the given sizes."""
    nvars = sum(shape)
    result = TruthTable.const(False, nvars)
    index = 0
    for size in shape:
        cube = TruthTable.const(True, nvars)
        for _ in range(size):
            cube = cube & TruthTable.var(index, nvars)
            index += 1
        result = result | cube
    return result


def _pos_of_shape(shape: Tuple[int, ...]) -> TruthTable:
    """The dual: AND of disjoint-variable OR clauses."""
    nvars = sum(shape)
    result = TruthTable.const(True, nvars)
    index = 0
    for size in shape:
        clause = TruthTable.const(False, nvars)
        for _ in range(size):
            clause = clause | TruthTable.var(index, nvars)
            index += 1
        result = result & clause
    return result


def _xor_function(nvars: int) -> TruthTable:
    result = TruthTable.var(0, nvars)
    for j in range(1, nvars):
        result = result ^ TruthTable.var(j, nvars)
    return result


def _mux_function() -> TruthTable:
    s = TruthTable.var(0, 3)
    a = TruthTable.var(1, 3)
    b = TruthTable.var(2, 3)
    return (s & a) | (~s & b)


def kernel_library(k: int) -> Library:
    """The Section 4.1 library for K >= 4 (also constructible for smaller K).

    Contents: all level-0 kernels with ``k`` or fewer literals over
    distinct variables, their duals, pure AND gates of 2..k literals
    (ORs arrive as the duals of the single-literal-cube shapes), XORs of
    2..min(k,3) inputs, and a 2-to-1 MUX.
    """
    if k < 2:
        raise LibraryError("K must be at least 2, got %d" % k)
    if k > 5:
        raise LibraryError(
            "kernel libraries are provided for K <= 5 (the paper's range); "
            "NP-closure matching over %d-input cells is impractical" % k
        )
    lib = Library("kernel-k%d" % k, k)
    for total in range(2, k + 1):
        # Pure AND/OR gates of `total` literals (common circuit elements).
        and_cube = TruthTable.const(True, total)
        for j in range(total):
            and_cube = and_cube & TruthTable.var(j, total)
        lib.add(and_cube)
        or_clause = TruthTable.const(False, total)
        for j in range(total):
            or_clause = or_clause | TruthTable.var(j, total)
        lib.add(or_clause)
        for shape in _cube_partitions(total):
            lib.add(_sop_of_shape(shape))
            lib.add(_pos_of_shape(shape))
    for n in range(2, min(k, 3) + 1):
        lib.add(_xor_function(n))
    if k >= 3:
        lib.add(_mux_function())
    return lib


def library_for(k: int) -> Library:
    """The library the paper's experiments use at a given K."""
    if k <= 3:
        return complete_library(k)
    return kernel_library(k)
