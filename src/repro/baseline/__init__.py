"""The MIS II-style baseline technology mapper (Section 4 of the paper).

Conventional library-based mapping as the paper compares against:

* the network is decomposed into a two-input AND/OR *subject graph*
  (MIS's ``tech_decomp``);
* each fanout-free tree is covered by dynamic programming over tree cuts,
  matching every candidate cut's boolean function against a *library*;
* the library is complete for K=2 and K=3 (all 10 / 78
  permutation-unique functions) and, for K=4 and K=5, is built per
  Section 4.1 from level-0 kernels with K or fewer literals, their duals,
  and the common circuit elements (ANDs, XORs, AOI-style gates);
* input inverters are free (Boolean matching is NP-equivalence, and a
  complement fallback models the merged output inverters the paper grants
  MIS), and inverters are not counted as logic blocks.
"""

from repro.baseline.library import Library, complete_library, kernel_library
from repro.baseline.subject import decompose_to_binary
from repro.baseline.mis_mapper import MisMapper, mis_map_network

__all__ = [
    "Library",
    "complete_library",
    "kernel_library",
    "decompose_to_binary",
    "MisMapper",
    "mis_map_network",
]
