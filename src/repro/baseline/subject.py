"""Subject-graph construction: decomposition into two-input gates.

MIS maps over a network pre-decomposed into two-input gates
(``tech_decomp -a 2 -o 2``).  Each wide gate becomes a balanced binary
tree of two-input gates of the same operation; the original node name is
kept at the tree's root so outputs and cross-tree references survive.
The fixed balanced shape is exactly the *structural bias* the paper
exploits: MIS cannot revisit this decomposition during matching, while
Chortle searches all decompositions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.network import BooleanNetwork, Signal


def _decompose_gate(
    net: BooleanNetwork,
    name: str,
    op: str,
    fanins: List[Signal],
    origins: Optional[Dict[str, str]] = None,
    style: str = "balanced",
) -> None:
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        sub = net.fresh_name("%s_b%d" % (name, counter[0]))
        if origins is not None:
            origins[sub] = name
        return sub

    def build(sigs: List[Signal]) -> Signal:
        if len(sigs) == 1:
            return sigs[0]
        half = len(sigs) // 2
        left = build(sigs[:half])
        right = build(sigs[half:])
        return net.add_gate(fresh(), op, [left, right])

    if len(fanins) <= 2:
        net.add_gate(name, op, fanins)
        return
    if style == "chain":
        acc = fanins[0]
        for sig in fanins[1:-1]:
            acc = net.add_gate(fresh(), op, [acc, sig])
        net.add_gate(name, op, [acc, fanins[-1]])
        return
    half = len(fanins) // 2
    left = build(fanins[:half])
    right = build(fanins[half:])
    net.add_gate(name, op, [left, right])


def decompose_to_binary(
    network: BooleanNetwork,
    origins: Optional[Dict[str, str]] = None,
    style: str = "balanced",
) -> BooleanNetwork:
    """Return a copy of the network with every gate fanin at most two.

    ``style`` selects the shape a wide gate decomposes into:
    ``balanced`` (the default — a balanced tree, minimum subject-graph
    depth, what MIS's ``tech_decomp -a 2 -o 2`` produces) or ``chain``
    (a left-deep linear chain — maximum cut flexibility, letting a
    DAG-cover mapper realize a ``w``-input gate in the optimal
    ``ceil((w-1)/(K-1))`` LUTs at the price of subject depth).

    When ``origins`` is given (an empty dict to fill), every node of the
    result is mapped back to the original node it came from: original
    names map to themselves, the fresh internal ``_b`` nodes of a wide
    gate's decomposition map to that gate's name.  DAG-cover mappers use
    this to attribute emitted LUTs to source-network nodes.
    """
    if style not in ("balanced", "chain"):
        raise ValueError(
            "decomposition style must be 'balanced' or 'chain', got %r"
            % style
        )
    out = BooleanNetwork(network.name)
    for name in network.topological_order():
        node = network.node(name)
        if origins is not None:
            origins[name] = name
        if node.op == "input":
            out.add_input(name)
        elif node.is_gate:
            _decompose_gate(
                out, name, node.op, list(node.fanins), origins, style
            )
        else:
            out.add_const(name, node.op == "const1")
    for port, sig in network.outputs.items():
        out.set_output(port, sig)
    out.validate()
    return out
