"""Subject-graph construction: decomposition into two-input gates.

MIS maps over a network pre-decomposed into two-input gates
(``tech_decomp -a 2 -o 2``).  Each wide gate becomes a balanced binary
tree of two-input gates of the same operation; the original node name is
kept at the tree's root so outputs and cross-tree references survive.
The fixed balanced shape is exactly the *structural bias* the paper
exploits: MIS cannot revisit this decomposition during matching, while
Chortle searches all decompositions.
"""

from __future__ import annotations

from typing import List

from repro.network.network import BooleanNetwork, Signal


def _decompose_gate(
    net: BooleanNetwork, name: str, op: str, fanins: List[Signal]
) -> None:
    counter = [0]

    def build(sigs: List[Signal]) -> Signal:
        if len(sigs) == 1:
            return sigs[0]
        half = len(sigs) // 2
        left = build(sigs[:half])
        right = build(sigs[half:])
        counter[0] += 1
        sub = net.fresh_name("%s_b%d" % (name, counter[0]))
        return net.add_gate(sub, op, [left, right])

    if len(fanins) <= 2:
        net.add_gate(name, op, fanins)
        return
    half = len(fanins) // 2
    left = build(fanins[:half])
    right = build(fanins[half:])
    net.add_gate(name, op, [left, right])


def decompose_to_binary(network: BooleanNetwork) -> BooleanNetwork:
    """Return a copy of the network with every gate fanin at most two."""
    out = BooleanNetwork(network.name)
    for name in network.topological_order():
        node = network.node(name)
        if node.op == "input":
            out.add_input(name)
        elif node.is_gate:
            _decompose_gate(out, name, node.op, list(node.fanins))
        else:
            out.add_const(name, node.op == "const1")
    for port, sig in network.outputs.items():
        out.set_output(port, sig)
    out.validate()
    return out
