"""DAGON/MIS-style library-based tree covering.

The baseline flow of Section 4: sweep, decompose into a two-input subject
graph, partition into fanout-free trees (MIS's greedy fanout handling is
modelled by the same tree partition Chortle uses, which the paper found
"difficult to realize any savings" over), then cover each tree by
dynamic programming.  At every subject node all *tree cuts* with at most
K leaves are enumerated; a cut is usable iff its boolean function
Boolean-matches a library cell under NP-equivalence.  The cheapest
matched cover wins.

With a complete library this mapper is limited only by the fixed binary
decomposition of the subject graph; with the Section 4.1 kernel
libraries it additionally loses the cuts whose functions fall outside
the library — the two effects the paper measures.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import MappingError
from repro.baseline.library import Library, library_for
from repro.baseline.subject import decompose_to_binary
from repro.core.substrate import wire_outputs
from repro.core.forest import Tree, build_forest, check_forest
from repro.core.lut import LUTCircuit
from repro.network.network import AND, BooleanNetwork
from repro.network.transform import sweep
from repro.truth.truthtable import TruthTable


def _remap_bits(bits: int, positions: List[int], n: int) -> int:
    """Re-index a truth table onto a larger variable space.

    Variable ``j`` of the source becomes variable ``positions[j]`` of the
    ``n``-variable result; the result ignores unmapped variables.
    """
    out = 0
    for m in range(1 << n):
        src = 0
        for j, p in enumerate(positions):
            if (m >> p) & 1:
                src |= 1 << j
        if (bits >> src) & 1:
            out |= 1 << m
    return out


class Cut(NamedTuple):
    """A tree cut: the subtree rooted at a node down to ``leaves``."""

    leaves: Tuple[str, ...]  # external or internal signal names, deduped
    tt: TruthTable  # node function over `leaves`
    internal: Tuple[str, ...]  # internal tree nodes whose LUTs the cut replaces


class MisMapper:
    """Library-based technology mapper in the style of MIS II / DAGON."""

    name = "mis"  # spec name under the common Mapper protocol

    def __init__(
        self,
        k: int = 4,
        library: Optional[Library] = None,
        preprocess: bool = True,
        max_cuts: int = 2000,
    ):
        if k < 2:
            raise MappingError("K must be at least 2, got %d" % k)
        self.k = k
        self.library = library if library is not None else library_for(k)
        if self.library.k > k:
            raise MappingError(
                "library %r targets K=%d but mapper K=%d"
                % (self.library.name, self.library.k, k)
            )
        self.preprocess = preprocess
        self.max_cuts = max_cuts

    # -- public API ------------------------------------------------------------

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        net = sweep(network) if self.preprocess else network
        net = decompose_to_binary(net)
        net.validate()

        forest = build_forest(net)
        check_forest(forest)

        circuit = LUTCircuit("%s_mis_k%d" % (network.name, self.k))
        for name in net.inputs:
            circuit.add_input(name)
        for tree in forest.trees:
            self._map_tree(net, tree, circuit)
        wire_outputs(net, circuit)
        circuit.validate(self.k)
        return circuit

    # -- tree covering ------------------------------------------------------------

    def _map_tree(self, net: BooleanNetwork, tree: Tree, circuit: LUTCircuit) -> None:
        order = [n for n in net.topological_order() if n in tree.internal]
        cuts: Dict[str, List[Cut]] = {}
        best_cost: Dict[str, int] = {}
        best_cut: Dict[str, Cut] = {}

        for name in order:
            node = net.node(name)
            node_cuts = self._enumerate_cuts(node, tree, cuts)
            cuts[name] = node_cuts
            best = None
            chosen = None
            for cut in node_cuts:
                if not self.library.matches(cut.tt):
                    continue
                cost = 1 + sum(
                    best_cost[leaf] for leaf in cut.leaves if leaf in tree.internal
                )
                if best is None or cost < best:
                    best = cost
                    chosen = cut
            if best is None:
                raise MappingError(
                    "library %r cannot cover node %r (no matching cut); "
                    "the library is missing a two-input cell"
                    % (self.library.name, name)
                )
            best_cost[name] = best
            best_cut[name] = chosen

        self._emit(net, tree, best_cut, circuit)

    def _enumerate_cuts(
        self, node, tree: Tree, cuts: Dict[str, List[Cut]]
    ) -> List[Cut]:
        """All cuts of a (two-input) subject node with at most K leaves."""
        per_fanin: List[List[Cut]] = []
        for sig in node.fanins:
            options: List[Cut] = [
                Cut(
                    leaves=(sig.name,),
                    tt=(~TruthTable.var(0, 1)) if sig.inv else TruthTable.var(0, 1),
                    internal=(),
                )
            ]
            if sig.name in tree.internal:
                for child_cut in cuts[sig.name]:
                    tt = ~child_cut.tt if sig.inv else child_cut.tt
                    options.append(
                        Cut(
                            leaves=child_cut.leaves,
                            tt=tt,
                            internal=child_cut.internal + (sig.name,),
                        )
                    )
            per_fanin.append(options)

        result: List[Cut] = []
        seen = set()
        assert len(per_fanin) in (1, 2)
        if len(per_fanin) == 1:
            combos = [(c,) for c in per_fanin[0]]
        else:
            combos = [(a, b) for a in per_fanin[0] for b in per_fanin[1]]
        for combo in combos:
            leaves: List[str] = []
            for cut in combo:
                for leaf in cut.leaves:
                    if leaf not in leaves:
                        leaves.append(leaf)
            if len(leaves) > self.k:
                continue
            n = len(leaves)
            position = {leaf: j for j, leaf in enumerate(leaves)}
            part_bits: List[int] = []
            for cut in combo:
                # Re-express the cut function over the merged leaf list.
                positions = [position[leaf] for leaf in cut.leaves]
                part_bits.append(_remap_bits(cut.tt.bits, positions, n))
            bits = part_bits[0]
            full = (1 << (1 << n)) - 1
            for part in part_bits[1:]:
                bits = (bits & part) if node.op == AND else (bits | part)
            tt = TruthTable(n, bits & full)
            internal = tuple(
                dict.fromkeys(sum((c.internal for c in combo), ()))
            )
            key = (tuple(leaves), tt.bits)
            if key in seen:
                continue
            seen.add(key)
            result.append(Cut(tuple(leaves), tt, internal))
            if len(result) >= self.max_cuts:
                break
        return result

    def _emit(
        self,
        net: BooleanNetwork,
        tree: Tree,
        best_cut: Dict[str, Cut],
        circuit: LUTCircuit,
    ) -> None:
        # Post-order over chosen cuts on an explicit stack (match chains
        # run as deep as the tree): leaves left to right before the node,
        # the same table order the recursive formulation produced.
        stack: List[Tuple[str, bool]] = [(tree.root, False)]
        while stack:
            name, ready = stack.pop()
            if name in circuit:
                continue
            cut = best_cut[name]
            if ready:
                circuit.add_lut(name, cut.leaves, cut.tt)
                continue
            stack.append((name, True))
            for leaf in reversed(cut.leaves):
                if leaf in tree.internal and leaf not in circuit:
                    stack.append((leaf, False))


def mis_map_network(
    network: BooleanNetwork, k: int = 4, library: Optional[Library] = None
) -> LUTCircuit:
    """Convenience wrapper around :class:`MisMapper`."""
    return MisMapper(k=k, library=library).map(network)
