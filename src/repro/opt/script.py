"""A MIS-script-like preparation pipeline for mapping.

The paper's experiments feed both mappers networks "optimized by the
standard MIS II script".  Our synthetic workloads are generated directly
in optimized multi-level shape; for BLIF inputs, this module provides the
equivalent preparation: per-table algebraic factoring into multi-level
AND/OR trees followed by structural sweeping.
"""

from __future__ import annotations

from typing import List

from repro.blif.parser import BlifModel
from repro.errors import BlifError
from repro.network.network import AND, OR, BooleanNetwork, Signal
from repro.network.transform import sweep
from repro.opt.factor import FactorTree, factor_cover


def _emit_factor_tree(
    net: BooleanNetwork, tree: FactorTree, stem: str, counter: List[int]
) -> Signal:
    tag = tree[0]
    if tag == "lit":
        var, positive = tree[1]
        return Signal(var, not positive)
    op = AND if tag == "and" else OR
    fanins = [
        _emit_factor_tree(net, child, stem, counter) for child in tree[1]
    ]
    counter[0] += 1
    name = net.fresh_name("%s_f%d" % (stem, counter[0]))
    return net.add_gate(name, op, fanins)


def factored_network_from_blif(
    model: BlifModel, minimize: bool = False
) -> BooleanNetwork:
    """Build a multi-level AND/OR network with each table factored.

    With ``minimize=True``, each cover is first put through two-level
    minimization (:mod:`repro.opt.minimize`) — the full "simplify then
    factor" shape of the MIS script.  The output node of each table keeps
    the table's name (possibly as a single-fanin gate carrying an
    inversion, later folded by sweep), so inter-table references resolve
    unchanged.
    """
    if minimize:
        from repro.opt.minimize import minimize_cover

        model = BlifModel(
            model.name,
            list(model.inputs),
            list(model.outputs),
            [minimize_cover(t) for t in model.tables],
        )
    net = BooleanNetwork(model.name)
    for name in model.inputs:
        net.add_input(name)
    remaining = {t.output: t for t in model.tables}
    defined = set(model.inputs)
    progress = True
    while remaining and progress:
        progress = False
        for output in list(remaining):
            table = remaining[output]
            if not all(i in defined for i in table.inputs):
                continue
            if table.is_constant():
                net.add_const(output, bool(table.constant_value()))
            else:
                tree, inverted = factor_cover(table)
                counter = [0]
                sig = _emit_factor_tree(net, tree, output, counter)
                if inverted:
                    sig = ~sig
                # Name-preserving wrapper; sweep folds it away.
                net.add_gate(output, AND, [sig])
            defined.add(output)
            del remaining[output]
            progress = True
    if remaining:
        raise BlifError(
            "cyclic or dangling table definitions: %s" % ", ".join(sorted(remaining))
        )
    for out in model.outputs:
        net.set_output(out, Signal(out))
    net.validate()
    return net


def mis_script(network: BooleanNetwork) -> BooleanNetwork:
    """The cleanup half of the MIS script: constant propagation + sweep.

    Algebraic restructuring happens at BLIF conversion time via
    :func:`factored_network_from_blif`; this pass makes any network safe
    for the mappers (no constants inside logic, no single-fanin gates, no
    duplicate fanins).
    """
    return sweep(network)
