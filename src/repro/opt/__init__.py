"""Logic-optimization substrate (the MIS II role in the paper's flow).

The paper maps networks that were "optimized by the standard MIS II
script" and builds its K>=4 baseline libraries from *level-0 kernels*.
This package provides the algebraic machinery both of those depend on:

* :mod:`repro.opt.algebra` — cube/SOP algebra and algebraic division;
* :mod:`repro.opt.kernels` — kernel and co-kernel extraction, level-0
  kernel identification;
* :mod:`repro.opt.factor` — algebraic factoring of SOP covers into
  multi-level AND/OR trees;
* :mod:`repro.opt.script` — a MIS-script-like cleanup/decomposition
  pipeline applied to networks before mapping.
"""

from repro.opt.algebra import (
    Cube,
    SopExpr,
    algebraic_divide,
    cube_literals,
    expr_from_cover,
    is_cube_free,
    make_cube,
    multiply,
)
from repro.opt.kernels import all_kernels, is_level0_kernel, kernel_level
from repro.opt.factor import factor_cover, factor_expr, factored_literal_count
from repro.opt.minimize import (
    minimize_cover,
    minimize_model_tables,
    minimize_truth_table,
    prime_implicants,
)
from repro.opt.refactor import refactor_network
from repro.opt.script import factored_network_from_blif, mis_script

__all__ = [
    "Cube",
    "SopExpr",
    "make_cube",
    "cube_literals",
    "expr_from_cover",
    "algebraic_divide",
    "multiply",
    "is_cube_free",
    "all_kernels",
    "kernel_level",
    "is_level0_kernel",
    "factor_expr",
    "factor_cover",
    "factored_literal_count",
    "prime_implicants",
    "minimize_truth_table",
    "minimize_cover",
    "minimize_model_tables",
    "refactor_network",
    "mis_script",
    "factored_network_from_blif",
]
