"""Cube/SOP algebra: the classical machinery of algebraic division.

Literals are ``(variable, positive)`` pairs; as in algebraic (as opposed
to Boolean) methods, ``x`` and ``~x`` are treated as unrelated symbols.
A cube is a frozenset of literals, an SOP expression a frozenset of
cubes.  These are the objects kernel extraction and factoring operate on.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from repro.blif.sop import SopCover

Literal = Tuple[str, bool]
Cube = FrozenSet[Literal]
SopExpr = FrozenSet[Cube]


def make_cube(*literals) -> Cube:
    """Build a cube from ``"x"`` / ``"~x"`` strings or literal pairs."""
    result: Set[Literal] = set()
    for lit in literals:
        if isinstance(lit, str):
            if lit.startswith("~"):
                result.add((lit[1:], False))
            else:
                result.add((lit, True))
        else:
            var, pos = lit
            result.add((str(var), bool(pos)))
    return frozenset(result)


def make_expr(*cubes) -> SopExpr:
    """Build an SOP expression from cubes (or iterables of literals)."""
    out: Set[Cube] = set()
    for cube in cubes:
        if isinstance(cube, frozenset):
            out.add(cube)
        else:
            out.add(make_cube(*cube))
    return frozenset(out)


def cube_literals(expr: SopExpr) -> Set[Literal]:
    """All literals appearing anywhere in the expression."""
    out: Set[Literal] = set()
    for cube in expr:
        out |= cube
    return out


def literal_count(expr: SopExpr) -> int:
    return sum(len(cube) for cube in expr)


def expr_from_cover(cover: SopCover) -> SopExpr:
    """The SOP expression of a phase-1 BLIF cover.

    Off-set covers have no algebraic SOP form; callers complement at the
    network level instead.
    """
    if cover.phase != 1:
        raise ValueError(
            "cover of %r is an off-set cover; complement before factoring"
            % cover.output
        )
    cubes = []
    for cube in cover.cubes:
        lits = []
        for name, ch in zip(cover.inputs, cube):
            if ch == "-":
                continue
            lits.append((name, ch == "1"))
        cubes.append(frozenset(lits))
    return frozenset(cubes)


def multiply(f: SopExpr, g: SopExpr) -> SopExpr:
    """Algebraic product: pairwise cube unions, dropping non-algebraic terms.

    A term is dropped if the same variable would appear in both phases
    (x * ~x), keeping the product algebraic.
    """
    out: Set[Cube] = set()
    for a in f:
        for b in g:
            clash = any((v, not p) in a for v, p in b)
            if clash:
                continue
            out.add(a | b)
    return frozenset(out)


def divide_by_cube(f: SopExpr, d: Cube) -> SopExpr:
    """Quotient of dividing by a single cube."""
    return frozenset(cube - d for cube in f if d <= cube)


def algebraic_divide(f: SopExpr, d: SopExpr) -> Tuple[SopExpr, SopExpr]:
    """Weak algebraic division: returns (quotient, remainder).

    ``f = quotient * d + remainder`` with the product algebraic; the
    quotient is the largest such expression (Brayton-McMullen).
    """
    if not d:
        raise ZeroDivisionError("division by the empty expression")
    quotient: Optional[SopExpr] = None
    for d_cube in d:
        partial = divide_by_cube(f, d_cube)
        quotient = partial if quotient is None else quotient & partial
        if not quotient:
            return frozenset(), f
    product = multiply(quotient, d)
    remainder = frozenset(f - product)
    return quotient, remainder


def is_cube_free(expr: SopExpr) -> bool:
    """No single literal divides every cube, and not a lone cube."""
    if len(expr) <= 1:
        return False
    common = None
    for cube in expr:
        common = set(cube) if common is None else common & cube
        if not common:
            return True
    return not common


def common_cube(expr: SopExpr) -> Cube:
    """The largest cube dividing every cube of the expression."""
    common: Optional[Set[Literal]] = None
    for cube in expr:
        common = set(cube) if common is None else common & cube
    return frozenset(common or ())


def expr_to_string(expr: SopExpr) -> str:
    """Human-readable form, deterministic ordering (for tests and docs)."""
    if not expr:
        return "0"
    def lit_str(lit: Literal) -> str:
        return ("" if lit[1] else "~") + lit[0]
    cubes = []
    for cube in expr:
        if not cube:
            cubes.append("1")
        else:
            cubes.append("".join(lit_str(lit) for lit in sorted(cube)))
    return " + ".join(sorted(cubes))
