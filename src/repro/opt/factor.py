"""Algebraic factoring of SOP covers into multi-level AND/OR trees.

This is the "factored form ... that minimizes the literal count" role of
the MIS logic-optimization step (Section 4.1).  The factoring heuristic
is classical literal factoring: repeatedly pull out the most frequent
literal (after stripping any common cube), which is guaranteed to
terminate and produces trees whose leaf nodes are level-0-kernel-shaped.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from repro.blif.sop import SopCover
from repro.opt.algebra import (
    SopExpr,
    common_cube,
    divide_by_cube,
    expr_from_cover,
)

# A factor tree: ("lit", (var, positive)) | ("and", [trees]) | ("or", [trees])
FactorTree = Tuple


def _cube_tree(cube) -> FactorTree:
    lits = sorted(cube)
    if len(lits) == 1:
        return ("lit", lits[0])
    return ("and", [("lit", lit) for lit in lits])


def factor_expr(expr: SopExpr) -> FactorTree:
    """Factor a non-empty SOP expression into an AND/OR tree."""
    if not expr:
        raise ValueError("cannot factor the constant-0 expression")
    if len(expr) == 1:
        (cube,) = expr
        if not cube:
            raise ValueError("cannot factor the constant-1 expression")
        return _cube_tree(cube)

    cc = common_cube(expr)
    if cc:
        rest = frozenset(cube - cc for cube in expr)
        parts: List[FactorTree] = [("lit", lit) for lit in sorted(cc)]
        parts.append(factor_expr(rest))
        return ("and", parts)

    counts = Counter()
    for cube in expr:
        counts.update(cube)
    lit, freq = max(counts.items(), key=lambda item: (item[1], item[0]))
    if freq < 2:
        return ("or", [_cube_tree(c) for c in sorted(expr, key=sorted)])

    with_lit = divide_by_cube(expr, frozenset([lit]))
    without_lit = frozenset(c for c in expr if lit not in c)
    factored = ("and", [("lit", lit), factor_expr(with_lit)])
    if not without_lit:
        return factored
    return ("or", [factored, factor_expr(without_lit)])


def factor_cover(cover: SopCover) -> Tuple[FactorTree, bool]:
    """Factor a BLIF cover; returns ``(tree, output_inverted)``.

    Off-set (phase 0) covers are factored as their complements with the
    inversion reported to the caller, who carries it on an edge label.
    """
    if cover.is_constant():
        raise ValueError("constant covers have no factored form")
    expr = expr_from_cover(
        cover if cover.phase == 1
        else SopCover(cover.inputs, cover.output, cover.cubes, phase=1)
    )
    return factor_expr(expr), cover.phase == 0


def factored_literal_count(tree: FactorTree) -> int:
    """Number of literal leaves in a factor tree."""
    tag = tree[0]
    if tag == "lit":
        return 1
    return sum(factored_literal_count(child) for child in tree[1])


def tree_depth(tree: FactorTree) -> int:
    tag = tree[0]
    if tag == "lit":
        return 0
    return 1 + max(tree_depth(child) for child in tree[1])
