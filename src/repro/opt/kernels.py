"""Kernel extraction (Brayton-McMullen) and level-0 kernel identification.

The *kernels* of an expression are its cube-free quotients by cubes; a
kernel is *level-0* if it has no kernels other than itself — equivalently
no literal appears in more than one of its cubes.  Section 4.1 of the
paper builds the K=4 and K=5 MIS libraries from "the set of all level-0
kernels with four or fewer literals and their duals"; this module
provides the machinery used to validate those libraries.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.opt.algebra import (
    Cube,
    SopExpr,
    common_cube,
    cube_literals,
    divide_by_cube,
    is_cube_free,
)


def _kernels_rec(
    expr: SopExpr, literals: List, start: int, found: Set[SopExpr]
) -> None:
    for idx in range(start, len(literals)):
        lit = literals[idx]
        appears = [cube for cube in expr if lit in cube]
        if len(appears) < 2:
            continue
        quotient = divide_by_cube(expr, frozenset([lit]))
        # Make the quotient cube-free by stripping its common cube.
        cc = common_cube(quotient)
        if any(literals.index(lit) < idx for lit in cc if lit in literals):
            continue  # already found via an earlier literal (pruning)
        kernel = frozenset(cube - cc for cube in quotient)
        if kernel not in found and len(kernel) >= 2:
            found.add(kernel)
            _kernels_rec(kernel, literals, idx + 1, found)


def all_kernels(expr: SopExpr, include_self: bool = True) -> Set[SopExpr]:
    """Every kernel of the expression.

    With ``include_self=True`` the expression itself is included when it
    is cube-free (the standard convention).
    """
    literals = sorted(cube_literals(expr))
    found: Set[SopExpr] = set()
    _kernels_rec(expr, literals, 0, found)
    if include_self and is_cube_free(expr):
        found.add(expr)
    return found


def kernel_level(expr: SopExpr) -> int:
    """The level of a kernel: 0 if its only kernel is itself."""
    if not is_cube_free(expr):
        raise ValueError("kernel_level is defined for cube-free expressions")
    sub = all_kernels(expr, include_self=False) - {expr}
    if not sub:
        return 0
    return 1 + max(kernel_level(k) for k in sub)


def is_level0_kernel(expr: SopExpr) -> bool:
    """True for cube-free expressions in which no literal repeats.

    This is the classical characterization: a kernel is level-0 iff no
    literal appears in more than one cube.
    """
    if not is_cube_free(expr):
        return False
    seen: Set = set()
    for cube in expr:
        for lit in cube:
            if lit in seen:
                return False
            seen.add(lit)
    return True


def cokernels(expr: SopExpr) -> Dict[SopExpr, List[Cube]]:
    """Map each kernel to the cubes that produce it as a quotient."""
    result: Dict[SopExpr, List[Cube]] = {}
    literals = sorted(cube_literals(expr))
    # Brute-force over cubes built from subsets actually co-occurring:
    # for substrate purposes the single-literal and pairwise co-kernels
    # suffice, so enumerate quotients by every cube of up to 2 literals.
    candidates: List[Cube] = [frozenset([lit]) for lit in literals]
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            candidates.append(frozenset([literals[i], literals[j]]))
    for cube in candidates:
        quotient = divide_by_cube(expr, cube)
        if len(quotient) < 2:
            continue
        cc = common_cube(quotient)
        kernel = frozenset(c - cc for c in quotient)
        result.setdefault(kernel, []).append(frozenset(cube | cc))
    return result
