"""Tree refactoring: collapse, minimize, and re-factor fanout-free cones.

The remaining piece of the MIS-script role: ``eliminate`` + ``simplify``
+ ``refactor``.  Each maximal fanout-free tree with a bounded number of
distinct leaves is collapsed to its root function (by bit-parallel
simulation), two-level minimized (Quine-McCluskey), algebraically
factored, and rebuilt as a fresh AND/OR tree.  Redundant or poorly
structured logic inside a cone disappears; the network's function is
preserved exactly (and is property-tested to be).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.blif.sop import SopCover
from repro.core.forest import Tree, build_forest
from repro.network.network import AND, BooleanNetwork
from repro.network.transform import sweep
from repro.opt.factor import factor_cover
from repro.opt.minimize import minimize_cover
from repro.opt.script import _emit_factor_tree


def _tree_root_function(
    net: BooleanNetwork, tree: Tree
) -> Optional[SopCover]:
    """The root's function over the tree's distinct leaves, as a cover."""
    leaves = sorted(tree.leaves)
    n = len(leaves)
    width = 1 << n
    words: Dict[str, int] = {}
    for j, leaf in enumerate(leaves):
        period = 1 << j
        block = ((1 << period) - 1) << period
        word = 0
        for start in range(0, width, 2 * period):
            word |= block << start
        words[leaf] = word

    # Evaluate only the cone between leaves and root.
    values = dict(words)
    order = [x for x in net.topological_order() if x in tree.internal]
    mask = (1 << width) - 1
    for name in order:
        node = net.node(name)
        acc = None
        for sig in node.fanins:
            word = values[sig.name]
            if sig.inv:
                word = ~word & mask
            if acc is None:
                acc = word
            elif node.op == AND:
                acc &= word
            else:
                acc |= word
        values[name] = acc

    from repro.truth.truthtable import TruthTable

    tt = TruthTable(n, values[tree.root])
    return SopCover.from_truth_table(leaves, tree.root, tt)


def refactor_network(
    network: BooleanNetwork, max_leaves: int = 10, min_nodes: int = 2
) -> BooleanNetwork:
    """Collapse-minimize-refactor every small fanout-free tree.

    Trees with more than ``max_leaves`` distinct leaves or fewer than
    ``min_nodes`` gates are left alone.  Returns a swept network; tree
    roots keep their names, so outputs and cross-tree references are
    untouched.
    """
    net = sweep(network)
    forest = build_forest(net)
    rebuilt: Dict[str, SopCover] = {}
    drop: set = set()
    for tree in forest.trees:
        if tree.num_nodes < min_nodes or len(tree.leaves) > max_leaves:
            continue
        cover = _tree_root_function(net, tree)
        rebuilt[tree.root] = minimize_cover(cover)
        drop |= tree.internal - {tree.root}

    out = BooleanNetwork(net.name)
    for name in net.topological_order():
        node = net.node(name)
        if node.op == "input":
            out.add_input(name)
            continue
        if name in drop:
            continue
        if name in rebuilt:
            cover = rebuilt[name]
            if cover.is_constant():
                out.add_const(name, bool(cover.constant_value()))
                continue
            tree_expr, inverted = factor_cover(cover)
            counter = [0]
            sig = _emit_factor_tree(out, tree_expr, name, counter)
            if inverted:
                sig = ~sig
            out.add_gate(name, AND, [sig])  # name-preserving; swept below
        elif node.is_gate:
            out.add_gate(name, node.op, node.fanins)
        else:
            out.add_const(name, node.op == "const1")
    for port, sig in net.outputs.items():
        out.set_output(port, sig)
    return sweep(out)
