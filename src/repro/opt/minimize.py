"""Two-level SOP minimization (the ``simplify`` step of the MIS script).

Exact Quine-McCluskey prime generation with a greedy-plus-essential
cover selection.  Exact minimization is exponential, so it is reserved
for the table sizes that occur in BLIF ``.names`` covers (bounded by
``max_inputs``); larger covers fall back to fast single-cube-containment
cleanup, which is what MIS's ``simplify`` degrades to as well.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.blif.sop import SopCover
from repro.truth.truthtable import TruthTable

# A QM implicant: (values, mask) where bit j of `mask` means "don't care"
# and, for cared positions, bit j of `values` is the literal polarity.
Implicant = Tuple[int, int]


def _implicant_covers(imp: Implicant, minterm: int) -> bool:
    values, mask = imp
    return (minterm & ~mask) == (values & ~mask)


def _try_merge(a: Implicant, b: Implicant) -> Optional[Implicant]:
    """Combine two implicants differing in exactly one cared bit."""
    if a[1] != b[1]:
        return None
    diff = (a[0] ^ b[0]) & ~a[1]
    if diff == 0 or diff & (diff - 1):
        return None
    return (a[0] & ~diff, a[1] | diff)


def prime_implicants(tt: TruthTable) -> List[Implicant]:
    """All prime implicants of the function, by iterated merging."""
    current: Set[Implicant] = {(m, 0) for m in tt.minterms()}
    primes: Set[Implicant] = set()
    while current:
        merged: Set[Implicant] = set()
        used: Set[Implicant] = set()
        current_list = sorted(current)
        for i, a in enumerate(current_list):
            for b in current_list[i + 1:]:
                combo = _try_merge(a, b)
                if combo is not None:
                    merged.add(combo)
                    used.add(a)
                    used.add(b)
        primes |= current - used
        current = merged
    return sorted(primes)


def _select_cover(
    primes: List[Implicant], minterms: List[int]
) -> List[Implicant]:
    """Essential primes first, then greedy set cover of the rest."""
    remaining = set(minterms)
    coverage: Dict[Implicant, Set[int]] = {
        p: {m for m in minterms if _implicant_covers(p, m)} for p in primes
    }
    chosen: List[Implicant] = []

    # Essential primes: minterms covered by exactly one prime.
    for m in minterms:
        covering = [p for p in primes if m in coverage[p]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for p in chosen:
        remaining -= coverage[p]

    while remaining:
        best = max(
            primes,
            key=lambda p: (len(coverage[p] & remaining), -bin(~p[1]).count("1")),
        )
        gain = coverage[best] & remaining
        if not gain:
            raise AssertionError("prime cover selection stalled")
        chosen.append(best)
        remaining -= gain
    return chosen


def minimize_truth_table(tt: TruthTable) -> List[Implicant]:
    """A small prime cover of the on-set (empty list for constant 0)."""
    minterms = list(tt.minterms())
    if not minterms:
        return []
    primes = prime_implicants(tt)
    return _select_cover(primes, minterms)


def _implicant_to_cube(imp: Implicant, width: int) -> str:
    values, mask = imp
    chars = []
    for j in range(width):
        if (mask >> j) & 1:
            chars.append("-")
        else:
            chars.append("1" if (values >> j) & 1 else "0")
    return "".join(chars)


def _single_cube_containment(cover: SopCover) -> SopCover:
    """Drop cubes contained in other cubes (cheap, any size)."""
    def contains(big: str, small: str) -> bool:
        return all(b == "-" or b == s for b, s in zip(big, small))

    kept: List[str] = []
    cubes = sorted(cover.cubes, key=lambda c: c.count("-"), reverse=True)
    for cube in cubes:
        if not any(contains(other, cube) for other in kept):
            kept.append(cube)
    return SopCover(cover.inputs, cover.output, kept, phase=cover.phase)


def minimize_cover(cover: SopCover, max_inputs: int = 10) -> SopCover:
    """Minimize a BLIF cover, preserving its function exactly.

    Covers with at most ``max_inputs`` columns get exact Quine-McCluskey
    minimization (both phases are tried, keeping the smaller); wider
    covers get single-cube-containment cleanup only.
    """
    if cover.is_constant():
        value = cover.constant_value()
        if not cover.inputs:
            return SopCover.constant(cover.output, value)
        # Keep the column interface; dropping unused inputs is the
        # caller's (sweep's) job.
        width = cover.num_inputs
        return SopCover(
            cover.inputs, cover.output, ["-" * width] if value else [], phase=1
        )
    if cover.num_inputs > max_inputs:
        return _single_cube_containment(cover)

    tt = cover.truth_table()
    on_cover = minimize_truth_table(tt)
    off_cover = minimize_truth_table(~tt)

    def literals(imps: List[Implicant]) -> int:
        width = cover.num_inputs
        return sum(width - bin(m[1]).count("1") for m in imps)

    use_off = (len(off_cover), literals(off_cover)) < (
        len(on_cover),
        literals(on_cover),
    )
    imps = off_cover if use_off else on_cover
    cubes = [_implicant_to_cube(i, cover.num_inputs) for i in imps]
    return SopCover(
        cover.inputs, cover.output, cubes, phase=0 if use_off else 1
    )


def minimize_model_tables(model, max_inputs: int = 10):
    """Minimize every table of a parsed BLIF model in place; returns it."""
    model.tables = [minimize_cover(t, max_inputs=max_inputs) for t in model.tables]
    return model
