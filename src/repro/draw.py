"""Plain-text rendering of networks and mapped circuits.

For documentation, teaching, and debugging: a level-by-level listing
that makes small examples (like the paper's Figure 1/2) readable in a
terminal or a README without graphics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.lut import LUTCircuit
from repro.network.network import BooleanNetwork


def draw_network(network: BooleanNetwork) -> str:
    """Level-ordered listing of a boolean network."""
    level: Dict[str, int] = {}
    for name in network.topological_order():
        node = network.node(name)
        if node.is_gate:
            level[name] = 1 + max(level.get(s.name, 0) for s in node.fanins)
        else:
            level[name] = 0
    by_level: Dict[int, List[str]] = {}
    for name, lv in level.items():
        by_level.setdefault(lv, []).append(name)

    port_of: Dict[str, List[str]] = {}
    for port, sig in network.outputs.items():
        label = ("~" if sig.inv else "") + port
        port_of.setdefault(sig.name, []).append(label)

    lines = ["network %s" % network.name]
    inputs = ", ".join(network.inputs)
    lines.append("  level 0: inputs %s" % (inputs or "(none)"))
    for lv in sorted(by_level):
        if lv == 0:
            continue
        entries = []
        for name in by_level[lv]:
            node = network.node(name)
            fanins = ", ".join(str(s) for s in node.fanins)
            entry = "%s=%s(%s)" % (name, node.op.upper(), fanins)
            if name in port_of:
                entry += " -> %s" % ",".join(port_of[name])
            entries.append(entry)
        lines.append("  level %d: %s" % (lv, "  ".join(entries)))
    return "\n".join(lines)


def draw_circuit(circuit: LUTCircuit) -> str:
    """Level-ordered listing of a mapped LUT circuit."""
    level: Dict[str, int] = {name: 0 for name in circuit.inputs}
    for name in circuit.topological_order():
        lut = circuit.lut(name)
        fanin_levels = [level.get(src, 0) for src in lut.inputs]
        level[name] = 1 + max(fanin_levels) if fanin_levels else 0
    by_level: Dict[int, List[str]] = {}
    for name in circuit.topological_order():
        by_level.setdefault(level[name], []).append(name)

    port_of: Dict[str, List[str]] = {}
    for port, sig in circuit.outputs.items():
        port_of.setdefault(sig, []).append(port)

    lines = ["circuit %s: %d LUTs" % (circuit.name, circuit.cost)]
    inputs = ", ".join(circuit.inputs)
    lines.append("  level 0: inputs %s" % (inputs or "(none)"))
    for lv in sorted(by_level):
        entries = []
        for name in by_level[lv]:
            lut = circuit.lut(name)
            entry = "%s[%s](%s)" % (
                name,
                lut.tt.to_binary_string(),
                ", ".join(lut.inputs),
            )
            if name in port_of:
                entry += " -> %s" % ",".join(port_of[name])
            entries.append(entry)
        lines.append("  level %d: %s" % (lv, "  ".join(entries)))
    return "\n".join(lines)
