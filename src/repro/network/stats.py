"""Structural statistics of a boolean network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.network.network import BooleanNetwork


@dataclass(frozen=True)
class NetworkStats:
    """A structural summary used in reports and benchmark tables."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_edges: int
    depth: int
    max_fanin: int
    max_fanout: int
    num_inverted_edges: int
    fanin_histogram: Dict[int, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            "%s: %d in / %d out, %d gates, %d edges, depth %d, "
            "max fanin %d, max fanout %d"
            % (
                self.name,
                self.num_inputs,
                self.num_outputs,
                self.num_gates,
                self.num_edges,
                self.depth,
                self.max_fanin,
                self.max_fanout,
            )
        )


def network_stats(network: BooleanNetwork) -> NetworkStats:
    """Compute a :class:`NetworkStats` summary."""
    histogram: Dict[int, int] = {}
    max_fanin = 0
    inverted = 0
    for node in network.gates():
        f = node.fanin_count
        histogram[f] = histogram.get(f, 0) + 1
        max_fanin = max(max_fanin, f)
        inverted += sum(1 for s in node.fanins if s.inv)
    inverted += sum(1 for s in network.outputs.values() if s.inv)
    fanouts = network.fanout_counts()
    return NetworkStats(
        name=network.name,
        num_inputs=network.num_inputs,
        num_outputs=network.num_outputs,
        num_gates=network.num_gates,
        num_edges=network.num_edges,
        depth=network.depth(),
        max_fanin=max_fanin,
        max_fanout=max(fanouts.values()) if fanouts else 0,
        num_inverted_edges=inverted,
        fanin_histogram=histogram,
    )
