"""A small expression-style builder for constructing networks in code.

Example::

    b = NetworkBuilder("fig1")
    a, bb, c, d, e = b.inputs("a", "b", "c", "d", "e")
    x = b.and_(a, bb)
    y = b.or_(x, ~c)
    b.output("y", y)
    net = b.network()
"""

from __future__ import annotations

from typing import Tuple

from repro.network.network import AND, OR, BooleanNetwork, Signal


class NetworkBuilder:
    """Incrementally builds a :class:`BooleanNetwork`."""

    def __init__(self, name: str = "network"):
        self._net = BooleanNetwork(name)
        self._counter = 0

    def _auto_name(self, stem: str) -> str:
        self._counter += 1
        return self._net.fresh_name("%s%d" % (stem, self._counter))

    def input(self, name: str) -> Signal:
        return self._net.add_input(name)

    def inputs(self, *names: str) -> Tuple[Signal, ...]:
        return tuple(self._net.add_input(n) for n in names)

    def and_(self, *fanins, name: str = None) -> Signal:
        """AND gate over the given signals."""
        return self._net.add_gate(name or self._auto_name("g"), AND, fanins)

    def or_(self, *fanins, name: str = None) -> Signal:
        """OR gate over the given signals."""
        return self._net.add_gate(name or self._auto_name("g"), OR, fanins)

    def nand_(self, *fanins, name: str = None) -> Signal:
        return ~self.and_(*fanins, name=name)

    def nor_(self, *fanins, name: str = None) -> Signal:
        return ~self.or_(*fanins, name=name)

    def xor_(self, a, b, name: str = None) -> Signal:
        """XOR built structurally as (a & ~b) | (~a & b)."""
        stem = name or self._auto_name("x")
        p = self.and_(a, ~b, name=stem + "_p")
        q = self.and_(~a, b, name=stem + "_q")
        return self.or_(p, q, name=stem)

    def output(self, port: str, sig) -> None:
        self._net.set_output(port, sig)

    def network(self, validate: bool = True) -> BooleanNetwork:
        if validate:
            self._net.validate()
        return self._net
