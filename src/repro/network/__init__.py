"""Boolean-network substrate.

The network model follows Section 2 of the paper: a directed acyclic graph
whose non-input nodes compute AND or OR over their fanin variables, with
edge labels carrying signal polarity and designated output ports.
"""

from repro.network.network import (
    AND,
    CONST0,
    CONST1,
    INPUT,
    OR,
    BooleanNetwork,
    Node,
    Signal,
)
from repro.network.builder import NetworkBuilder
from repro.network.simulate import (
    exhaustive_input_words,
    network_truth_tables,
    simulate,
)
from repro.network.stats import NetworkStats, network_stats
from repro.network.transform import (
    collapse_buffers,
    propagate_constants,
    remove_unreachable,
    strash,
    sweep,
)

__all__ = [
    "AND",
    "OR",
    "INPUT",
    "CONST0",
    "CONST1",
    "Signal",
    "Node",
    "BooleanNetwork",
    "NetworkBuilder",
    "simulate",
    "exhaustive_input_words",
    "network_truth_tables",
    "NetworkStats",
    "network_stats",
    "sweep",
    "strash",
    "collapse_buffers",
    "propagate_constants",
    "remove_unreachable",
]
