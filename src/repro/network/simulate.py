"""Bit-parallel simulation of boolean networks.

Each signal value is a Python integer used as a word of parallel
simulation bits, so one pass evaluates the network on arbitrarily many
input vectors at once.  Exhaustive simulation over ``n`` inputs uses a
``2**n``-bit word per signal, which doubles as a truth-table extractor.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.errors import NetworkError
from repro.network.network import AND, CONST0, CONST1, INPUT, OR, BooleanNetwork
from repro.truth.truthtable import TruthTable


def simulate(
    network: BooleanNetwork, input_words: Mapping[str, int], width: int
) -> Dict[str, int]:
    """Evaluate every node on ``width`` parallel input vectors.

    ``input_words`` maps each primary input to a word whose bit *i* is that
    input's value in vector *i*.
    """
    if width <= 0:
        raise ValueError("width must be positive, got %d" % width)
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for name in network.topological_order():
        node = network.node(name)
        if node.op == INPUT:
            try:
                word = input_words[name]
            except KeyError:
                raise NetworkError("no value supplied for input %r" % name) from None
            values[name] = word & mask
        elif node.op == CONST0:
            values[name] = 0
        elif node.op == CONST1:
            values[name] = mask
        else:
            acc = None
            for sig in node.fanins:
                word = values[sig.name]
                if sig.inv:
                    word = ~word & mask
                if acc is None:
                    acc = word
                elif node.op == AND:
                    acc &= word
                elif node.op == OR:
                    acc |= word
            values[name] = acc
    return values


def exhaustive_input_words(inputs: Iterable[str]) -> Dict[str, int]:
    """Standard exhaustive patterns: input *j* toggles with period ``2**j``."""
    inputs = list(inputs)
    n = len(inputs)
    if n > 20:
        raise ValueError(
            "exhaustive simulation over %d inputs is not practical" % n
        )
    words = {}
    for j, name in enumerate(inputs):
        period = 1 << j
        block = ((1 << period) - 1) << period
        word = 0
        for start in range(0, 1 << n, 2 * period):
            word |= block << start
        words[name] = word
    return words


def network_truth_tables(network: BooleanNetwork) -> Dict[str, TruthTable]:
    """Truth table of every node over the primary inputs, in input order."""
    inputs = network.inputs
    words = exhaustive_input_words(inputs)
    values = simulate(network, words, 1 << len(inputs))
    return {name: TruthTable(len(inputs), word) for name, word in values.items()}


def output_truth_tables(network: BooleanNetwork) -> Dict[str, TruthTable]:
    """Truth table of every output port over the primary inputs."""
    tables = network_truth_tables(network)
    result = {}
    for port, sig in network.outputs.items():
        tt = tables[sig.name]
        result[port] = ~tt if sig.inv else tt
    return result
