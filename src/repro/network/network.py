"""The boolean-network DAG (Section 2 of the paper).

Nodes are inputs, constants, or AND/OR gates over one or more fanin
signals.  Every fanin reference and every output port is a
:class:`Signal`: a node name plus a polarity flag, mirroring the paper's
labelled edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import NetworkError

INPUT = "input"
AND = "and"
OR = "or"
CONST0 = "const0"
CONST1 = "const1"

_GATE_OPS = (AND, OR)
_ALL_OPS = (INPUT, AND, OR, CONST0, CONST1)


class Signal(NamedTuple):
    """A reference to a node's output, possibly inverted."""

    name: str
    inv: bool = False

    def __invert__(self) -> Signal:
        return Signal(self.name, not self.inv)

    def __str__(self) -> str:
        return ("~" if self.inv else "") + self.name


def as_signal(ref) -> Signal:
    """Coerce a node name, ``(name, inv)`` pair, or Signal into a Signal."""
    if isinstance(ref, Signal):
        return ref
    if isinstance(ref, str):
        return Signal(ref, False)
    if isinstance(ref, tuple) and len(ref) == 2:
        name, inv = ref
        return Signal(str(name), bool(inv))
    raise TypeError("cannot interpret %r as a signal" % (ref,))


class Node(NamedTuple):
    """A single network node: an op applied over fanin signals."""

    name: str
    op: str
    fanins: Tuple[Signal, ...]

    @property
    def is_gate(self) -> bool:
        return self.op in _GATE_OPS

    @property
    def fanin_count(self) -> int:
        return len(self.fanins)


class BooleanNetwork:
    """A multi-input multi-output combinational boolean network."""

    def __init__(self, name: str = "network"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._inputs: List[str] = []
        self._outputs: Dict[str, Signal] = {}
        # Bumped by every structural mutation; lets derived results
        # (e.g. the sweep memo) detect staleness without deep hashing.
        self._mutations = 0

    def __getstate__(self) -> dict:
        # The sweep memo holds another (possibly self-referential)
        # network; keep pickles — worker-pool subject blobs in
        # particular — down to the structure itself.
        state = self.__dict__.copy()
        state.pop("_sweep_memo", None)
        return state

    # -- construction -----------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise NetworkError("node names must be non-empty")
        if name in self._nodes:
            raise NetworkError("duplicate node name %r" % name)

    def add_input(self, name: str) -> Signal:
        """Declare a primary input and return its signal."""
        self._check_fresh(name)
        self._mutations += 1
        self._nodes[name] = Node(name, INPUT, ())
        self._inputs.append(name)
        return Signal(name)

    def add_const(self, name: str, value: bool) -> Signal:
        """Add a constant node (used transiently; swept before mapping)."""
        self._check_fresh(name)
        self._mutations += 1
        self._nodes[name] = Node(name, CONST1 if value else CONST0, ())
        return Signal(name)

    def add_gate(self, name: str, op: str, fanins: Iterable) -> Signal:
        """Add an AND/OR gate over one or more fanin signals."""
        self._check_fresh(name)
        if op not in _GATE_OPS:
            raise NetworkError("gate op must be 'and' or 'or', got %r" % op)
        sigs = tuple(as_signal(f) for f in fanins)
        if not sigs:
            raise NetworkError("gate %r must have at least one fanin" % name)
        self._mutations += 1
        self._nodes[name] = Node(name, op, sigs)
        return Signal(name)

    def set_output(self, port: str, ref, inv: bool = False) -> None:
        """Designate an output port driven by a signal."""
        if not port:
            raise NetworkError("output port names must be non-empty")
        sig = as_signal(ref)
        if inv:
            sig = ~sig
        self._mutations += 1
        self._outputs[port] = sig

    def remove_node(self, name: str) -> None:
        """Delete a node (callers must have rewired its consumers first)."""
        node = self.node(name)
        if node.op == INPUT:
            self._inputs.remove(name)
        self._mutations += 1
        del self._nodes[name]

    def replace_node(self, name: str, op: str, fanins: Iterable) -> None:
        """Swap the definition of an existing gate node in place."""
        if name not in self._nodes:
            raise NetworkError("no node named %r" % name)
        if op not in _GATE_OPS:
            raise NetworkError("gate op must be 'and' or 'or', got %r" % op)
        sigs = tuple(as_signal(f) for f in fanins)
        if not sigs:
            raise NetworkError("gate %r must have at least one fanin" % name)
        self._mutations += 1
        self._nodes[name] = Node(name, op, sigs)

    def fresh_name(self, stem: str) -> str:
        """A node name not yet in use, derived from ``stem``."""
        if stem not in self._nodes:
            return stem
        i = 0
        while True:
            cand = "%s_%d" % (stem, i)
            if cand not in self._nodes:
                return cand
            i += 1

    # -- accessors ----------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Dict[str, Signal]:
        return dict(self._outputs)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError("no node named %r" % name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def names(self) -> Iterator[str]:
        return iter(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def gates(self) -> Iterator[Node]:
        return (n for n in self._nodes.values() if n.is_gate)

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_gates(self) -> int:
        return sum(1 for _ in self.gates())

    @property
    def num_edges(self) -> int:
        return sum(n.fanin_count for n in self.gates())

    # -- structure queries ----------------------------------------------------

    def fanout_counts(self) -> Dict[str, int]:
        """Uses of each node as a fanin or an output driver."""
        counts = {name: 0 for name in self._nodes}
        for node in self.gates():
            for sig in node.fanins:
                counts[sig.name] += 1
        for sig in self._outputs.values():
            counts[sig.name] += 1
        return counts

    def consumers(self) -> Dict[str, List[str]]:
        """Map each node to the gate nodes that read it."""
        result: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for node in self.gates():
            for sig in node.fanins:
                result[sig.name].append(node.name)
        return result

    def topological_order(self) -> List[str]:
        """Node names, every node after all of its fanins.

        Raises :class:`NetworkError` on combinational cycles.
        """
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        order: List[str] = []
        for root in self._nodes:
            if state.get(root) == 1:
                continue
            stack = [(root, 0)]
            while stack:
                name, phase = stack.pop()
                if phase == 0:
                    st = state.get(name)
                    if st == 1:
                        continue
                    if st == 0:
                        raise NetworkError(
                            "combinational cycle through node %r" % name
                        )
                    state[name] = 0
                    stack.append((name, 1))
                    node = self.node(name)
                    for sig in node.fanins:
                        if state.get(sig.name) != 1:
                            stack.append((sig.name, 0))
                else:
                    if state.get(name) == 1:
                        continue
                    state[name] = 1
                    order.append(name)
        return order

    def depth(self) -> int:
        """Longest input-to-output path measured in gate levels."""
        level: Dict[str, int] = {}
        for name in self.topological_order():
            node = self.node(name)
            if node.is_gate:
                level[name] = 1 + max(level.get(s.name, 0) for s in node.fanins)
            else:
                level[name] = 0
        if not self._outputs:
            return 0
        return max(level[sig.name] for sig in self._outputs.values())

    def transitive_fanin(self, name: str) -> List[str]:
        """All nodes (including ``name``) feeding the given node."""
        seen = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for sig in self.node(cur).fanins:
                stack.append(sig.name)
        return [n for n in self._nodes if n in seen]

    def validate(self) -> None:
        """Check reference integrity, ops, and acyclicity."""
        for node in self._nodes.values():
            if node.op not in _ALL_OPS:
                raise NetworkError("node %r has unknown op %r" % (node.name, node.op))
            if node.op in _GATE_OPS and not node.fanins:
                raise NetworkError("gate %r has no fanins" % node.name)
            if node.op not in _GATE_OPS and node.fanins:
                raise NetworkError("non-gate %r has fanins" % node.name)
            for sig in node.fanins:
                if sig.name not in self._nodes:
                    raise NetworkError(
                        "node %r references unknown node %r" % (node.name, sig.name)
                    )
        for port, sig in self._outputs.items():
            if sig.name not in self._nodes:
                raise NetworkError(
                    "output %r references unknown node %r" % (port, sig.name)
                )
        self.topological_order()

    # -- copying ---------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> BooleanNetwork:
        out = BooleanNetwork(name if name is not None else self.name)
        out._nodes = dict(self._nodes)
        out._inputs = list(self._inputs)
        out._outputs = dict(self._outputs)
        return out

    def __repr__(self) -> str:
        return "BooleanNetwork(%r, inputs=%d, gates=%d, outputs=%d)" % (
            self.name,
            self.num_inputs,
            self.num_gates,
            self.num_outputs,
        )
