"""Structural cleanup passes over boolean networks.

The paper assumes mapping starts from an optimized network; these passes
provide the minimum hygiene the mappers rely on: constant propagation,
single-fanin (buffer/inverter) collapse, duplicate-fanin removal, and
unreachable-node sweeping.  After :func:`sweep`, every gate has at least
two distinct, non-constant fanins, and the only constant nodes remaining
are those directly driving output ports.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.network.network import (
    AND,
    CONST0,
    CONST1,
    INPUT,
    OR,
    BooleanNetwork,
    Signal,
)
from repro.obs import metrics, span

# A resolution is either a constant value or an equivalent signal.
_Res = Tuple[str, Union[bool, Signal]]


def _resolve_fanin(res: Dict[str, _Res], sig: Signal) -> _Res:
    kind, val = res[sig.name]
    if kind == "const":
        return ("const", bool(val) != sig.inv)
    base = val
    return ("sig", Signal(base.name, base.inv != sig.inv))


def _simplify_gate(op: str, fanins: List[_Res]) -> Union[_Res, List[Signal]]:
    """Apply constant/duplicate rules; return a resolution or a fanin list."""
    identity = op == AND  # AND's identity element is 1, OR's is 0
    keep: List[Signal] = []
    seen: Dict[str, bool] = {}
    for kind, val in fanins:
        if kind == "const":
            if bool(val) == identity:
                continue  # identity element, drop
            return ("const", not identity)  # absorbing element
        sig = val
        if sig.name in seen:
            if seen[sig.name] == sig.inv:
                continue  # duplicate literal
            # x op ~x: AND -> 0, OR -> 1
            return ("const", op == OR)
        seen[sig.name] = sig.inv
        keep.append(sig)
    if not keep:
        # Empty AND is 1, empty OR is 0.
        return ("const", op == AND)
    if len(keep) == 1:
        return ("sig", keep[0])
    return keep


def sweep(network: BooleanNetwork) -> BooleanNetwork:
    """Return a cleaned copy of the network.

    Propagates constants, collapses buffers and inverter chains into edge
    polarities, removes duplicate fanins, and drops nodes unreachable from
    the outputs.  Primary inputs are always preserved to keep the external
    interface stable.

    The result is memoized on the instance (invalidated by any structural
    mutation), so sweeping the same network twice — every ``map()`` call
    preprocesses — returns the *same object*.  Identity stability is what
    lets the worker-pool subject registry recognize a network across
    repeated mapping runs instead of re-shipping it.
    """
    memo = getattr(network, "_sweep_memo", None)
    if memo is not None and memo[0] == network._mutations:
        metrics.count("sweep.memo_hits")
        return memo[1]
    with span("transform.sweep", network=network.name) as sp:
        out = _sweep_impl(network)
        removed = len(network) - len(out)
        metrics.count("sweep.runs")
        if removed > 0:
            metrics.count("sweep.nodes_removed", removed)
        sp.set("nodes_in", len(network))
        sp.set("nodes_out", len(out))
    # Sweep is idempotent: the output sweeps to itself.
    out._sweep_memo = (out._mutations, out)
    network._sweep_memo = (network._mutations, out)
    return out


def _sweep_impl(network: BooleanNetwork) -> BooleanNetwork:
    out = BooleanNetwork(network.name)
    res: Dict[str, _Res] = {}
    for name in network.topological_order():
        node = network.node(name)
        if node.op == INPUT:
            out.add_input(name)
            res[name] = ("sig", Signal(name))
        elif node.op == CONST0:
            res[name] = ("const", False)
        elif node.op == CONST1:
            res[name] = ("const", True)
        else:
            resolved = [_resolve_fanin(res, s) for s in node.fanins]
            simplified = _simplify_gate(node.op, resolved)
            if isinstance(simplified, list):
                out.add_gate(name, node.op, simplified)
                res[name] = ("sig", Signal(name))
            else:
                res[name] = simplified

    const_nodes: Dict[bool, str] = {}
    for port, sig in network.outputs.items():
        kind, val = _resolve_fanin(res, sig)
        if kind == "const":
            value = bool(val)
            if value not in const_nodes:
                cname = out.fresh_name("__const1__" if value else "__const0__")
                out.add_const(cname, value)
                const_nodes[value] = cname
            out.set_output(port, Signal(const_nodes[value]))
        else:
            out.set_output(port, val)

    return remove_unreachable(out)


def remove_unreachable(network: BooleanNetwork) -> BooleanNetwork:
    """Drop gates not in the transitive fanin of any output."""
    live = set()
    stack = [sig.name for sig in network.outputs.values()]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        for sig in network.node(name).fanins:
            stack.append(sig.name)
    out = BooleanNetwork(network.name)
    for name in network.topological_order():
        node = network.node(name)
        if node.op == INPUT:
            out.add_input(name)
        elif name in live:
            if node.is_gate:
                out.add_gate(name, node.op, node.fanins)
            else:
                out.add_const(name, node.op == CONST1)
    for port, sig in network.outputs.items():
        out.set_output(port, sig)
    return out


def strash(network: BooleanNetwork) -> BooleanNetwork:
    """Structural hashing: share structurally identical gates.

    Two gates with the same operation and the same (unordered) resolved
    fanin signals compute the same function; all but the first are
    replaced by references to it.  Classic technology-independent
    area recovery — it *increases* fanout, so its interaction with the
    mapper's forest partition is a measurable trade-off, not a free win.
    The pass runs on swept networks and sweeps afterwards.
    """
    with span("transform.strash", network=network.name) as sp:
        out, merged = _strash_impl(network)
        metrics.count("strash.runs")
        if merged > 0:
            metrics.count("strash.nodes_merged", merged)
        sp.set("nodes_in", len(network))
        sp.set("nodes_out", len(out))
        sp.set("merged", merged)
    return out


def _strash_impl(network: BooleanNetwork) -> Tuple[BooleanNetwork, int]:
    net = sweep(network)
    canonical: Dict[Tuple, str] = {}
    replacement: Dict[str, Signal] = {}

    def resolve(sig: Signal) -> Signal:
        repl = replacement.get(sig.name)
        if repl is None:
            return sig
        return Signal(repl.name, repl.inv != sig.inv)

    out = BooleanNetwork(net.name)
    for name in net.topological_order():
        node = net.node(name)
        if node.op == INPUT:
            out.add_input(name)
            continue
        if not node.is_gate:
            out.add_const(name, node.op == CONST1)
            continue
        fanins = tuple(resolve(s) for s in node.fanins)
        key = (node.op, frozenset(fanins))
        existing = canonical.get(key)
        if existing is not None:
            replacement[name] = Signal(existing)
            continue
        canonical[key] = name
        out.add_gate(name, node.op, fanins)
    for port, sig in net.outputs.items():
        out.set_output(port, resolve(sig))
    return sweep(out), len(replacement)


def propagate_constants(network: BooleanNetwork) -> BooleanNetwork:
    """Alias of :func:`sweep` kept for pipeline readability."""
    return sweep(network)


def collapse_buffers(network: BooleanNetwork) -> BooleanNetwork:
    """Alias of :func:`sweep` kept for pipeline readability."""
    return sweep(network)
