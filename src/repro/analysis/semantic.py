"""SAT-backed semantic lint rules (CHRT4xx).

Where the CHRT2xx circuit rules inspect structure (a table that *is*
constant, a pin the table ignores), these rules prove semantic
properties of each LUT **in its circuit context** — over the reachable
assignments of the primary inputs — with the :mod:`repro.sat` engine:

* CHRT401 — a LUT whose output provably never toggles, even though its
  table is not constant (the cone feeding it collapses);
* CHRT402 — a LUT input the table depends on that can provably be tied
  to a constant, because of correlations among the cone's wires, without
  changing the output on any reachable assignment;
* CHRT403 — two structurally different LUTs that provably compute the
  same primary-input function (possibly complemented).

Every rule runs a bit-parallel random-simulation prefilter first, so
the solver is only consulted for candidates simulation cannot refute —
the classic SAT-sweeping discipline.  The rules register under the
separate ``semantic`` domain and run only on request (``chortle lint
--semantic``, :func:`repro.analysis.engine.lint_semantic`): a SAT call
per LUT is measurably more expensive than a structural scan.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import INFO, WARN, Diagnostic, LintContext
from repro.analysis.rules import SEMANTIC, register
from repro.core.lut import LUTCircuit
from repro.truth.truthtable import TruthTable

if TYPE_CHECKING:  # runtime SAT imports stay lazy (rule execution only)
    from repro.sat.cnf import Encoder
    from repro.sat.solver import CdclSolver

_SIG_WIDTH = 256
_SIG_SEED = 0x5E11


def _signature_words(circuit: LUTCircuit) -> Dict[str, int]:
    """Deterministic random-simulation words for every wire."""
    rng = random.Random(_SIG_SEED)
    words = {name: rng.getrandbits(_SIG_WIDTH) for name in circuit.inputs}
    return circuit.simulate(words, _SIG_WIDTH)


def _eval_lut_word(tt: TruthTable, words: List[int], width: int) -> int:
    """Bit-parallel evaluation of one table over arbitrary input words."""
    mask = (1 << width) - 1
    out = 0
    for m in tt.minterms():
        term = mask
        for j, word in enumerate(words):
            term &= word if (m >> j) & 1 else ~word & mask
        out |= term
        if out == mask:
            break
    return out


class _CircuitCnf:
    """A lazily built whole-circuit CNF, shared across one rule's checks.

    Building the encoding costs more than the structural scan that
    precedes it, so nothing is encoded until the simulation prefilter
    produces the first candidate the solver must settle.
    """

    def __init__(self, circuit: LUTCircuit):
        self._circuit = circuit
        self._solver: Optional["CdclSolver"] = None
        self._encoder: Optional["Encoder"] = None
        self._wires: Dict[str, int] = {}

    def _build(self) -> Tuple["CdclSolver", "Encoder", Dict[str, int]]:
        if self._solver is None or self._encoder is None:
            from repro.sat.cnf import Encoder
            from repro.sat.solver import CdclSolver

            solver = CdclSolver()
            encoder = Encoder(solver)
            self._wires = encoder.encode_circuit(self._circuit)
            self._solver, self._encoder = solver, encoder
        return self._solver, self._encoder, self._wires

    def constant_value(self, name: str) -> Optional[int]:
        """0/1 when the wire provably never toggles, else None."""
        solver, encoder, wires = self._build()
        lit = wires[name]
        if encoder.is_true(lit):
            return 1
        if encoder.is_false(lit):
            return 0
        if not solver.solve([lit]):
            return 0
        if not solver.solve([-lit]):
            return 1
        return None

    def pin_rewirable_to(self, name: str, pin: int) -> Optional[int]:
        """A constant ``pin`` can be tied to without changing the output.

        Returns 0 or 1 when, on every reachable input assignment, the
        LUT computes the same value with ``pin`` replaced by that
        constant (i.e. by the corresponding cofactor of its table);
        ``None`` when neither constant works.
        """
        solver, encoder, wires = self._build()
        lut = self._circuit.lut(name)
        pins = [wires[src] for src in lut.inputs]
        straight = encoder.lit_lut(lut.tt, pins)
        for value in (0, 1):
            tied = encoder.lit_lut(lut.tt.cofactor(pin, value), pins)
            miter = encoder.lit_xor(straight, tied)
            if encoder.is_false(miter):
                return value
            if encoder.is_true(miter):
                continue
            if not solver.solve([miter]):
                return value
        return None

    def same_function(self, a: str, b: str) -> Optional[str]:
        """"equal"/"complement" when the wires provably agree, else None."""
        solver, encoder, wires = self._build()
        miter = encoder.lit_xor(wires[a], wires[b])
        if encoder.is_false(miter):
            return "equal"
        if encoder.is_true(miter):
            return "complement"
        if not solver.solve([miter]):
            return "equal"
        if not solver.solve([-miter]):
            return "complement"
        return None


_MASK = (1 << _SIG_WIDTH) - 1


@register(
    "CHRT401",
    "semantic-constant-cone",
    SEMANTIC,
    WARN,
    "LUT output provably never toggles although its table is not constant",
)
def _semantic_constant_cone(
    circuit: LUTCircuit, ctx: LintContext
) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    values = _signature_words(circuit)
    cnf = _CircuitCnf(circuit)
    for lut in circuit.luts():
        if lut.tt.nvars == 0 or lut.tt.is_constant():
            continue  # a constant *table* is CHRT204's structural finding
        word = values[lut.name]
        if word != 0 and word != _MASK:
            continue  # simulation toggled it: provably not constant
        value = cnf.constant_value(lut.name)
        if value is None:
            continue
        yield Diagnostic(
            "CHRT401",
            WARN,
            "LUT %r output is constant %d on every reachable input "
            "assignment (SAT-proved) although its table is not constant"
            % (lut.name, value),
            subject=subject,
            location=lut.name,
            hint="the cone feeding this LUT collapses; fold the constant "
            "into its consumers",
        )


@register(
    "CHRT402",
    "context-unobservable-input",
    SEMANTIC,
    WARN,
    "LUT input provably never influences the output in circuit context",
)
def _context_unobservable_input(
    circuit: LUTCircuit, ctx: LintContext
) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    values = _signature_words(circuit)
    cnf = _CircuitCnf(circuit)
    for lut in circuit.luts():
        if lut.tt.nvars < 2:
            continue
        words = [values[src] for src in lut.inputs]
        out = _eval_lut_word(lut.tt, words, _SIG_WIDTH)
        for pin in range(lut.tt.nvars):
            if not lut.tt.depends_on(pin):
                continue  # table-level insensitivity is CHRT206's finding
            if all(
                _eval_lut_word(lut.tt.cofactor(pin, v), words, _SIG_WIDTH)
                != out
                for v in (0, 1)
            ):
                continue  # simulation refuted both constant rewirings
            value = cnf.pin_rewirable_to(lut.name, pin)
            if value is not None:
                yield Diagnostic(
                    "CHRT402",
                    WARN,
                    "input %d (wire %r) of LUT %r can provably be tied to "
                    "constant %d without changing the output on any "
                    "reachable assignment (SAT-proved)"
                    % (pin, lut.inputs[pin], lut.name, value),
                    subject=subject,
                    location=lut.name,
                    hint="the wires feeding this LUT are correlated; "
                    "rewire the pin to the constant and shrink the table",
                )


@register(
    "CHRT403",
    "duplicate-function-pair",
    SEMANTIC,
    INFO,
    "two LUTs provably compute the same primary-input function",
)
def _duplicate_function_pair(
    circuit: LUTCircuit, ctx: LintContext
) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    values = _signature_words(circuit)
    cnf = _CircuitCnf(circuit)
    groups: Dict[int, List[str]] = {}
    for name in circuit.topological_order():
        lut = circuit.lut(name)
        if lut.tt.nvars < 2 or lut.tt.is_constant():
            continue
        word = values[name]
        canonical = min(word, ~word & _MASK)
        groups.setdefault(canonical, []).append(name)
    for members in groups.values():
        leader = members[0]
        leader_lut = circuit.lut(leader)
        for name in members[1:]:
            lut = circuit.lut(name)
            if lut.inputs == leader_lut.inputs and lut.tt == leader_lut.tt:
                continue  # a byte-identical copy is CHRT207's finding
            verdict = cnf.same_function(leader, name)
            if verdict is None:
                continue  # signature collision, refuted by the solver
            suffix = " up to complement" if verdict == "complement" else ""
            yield Diagnostic(
                "CHRT403",
                INFO,
                "LUT %r computes the same function of the primary inputs "
                "as LUT %r%s (SAT-proved) despite differing structure"
                % (name, leader, suffix),
                subject=subject,
                location=name,
                hint="cross-tree duplication is inherent to forest "
                "partitioning; a DAG mapper or post-map strash would "
                "share the cone",
            )
