"""Static analysis: the circuit lint engine and post-mapping analyses.

Two halves live here.  The *lint engine* (diagnostics, rules, engine,
baseline) statically audits boolean networks, LUT circuits, and flow
artifacts against the CHRT1xx/CHRT2xx/CHRT3xx rule catalogue, plus the
opt-in SAT-backed CHRT4xx semantic rules — see ``docs/ANALYSIS.md``.  The *post-mapping analyses* (postmap) are the
older timing/wiring summaries, re-exported here so existing imports of
``repro.analysis`` keep working.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry, load_baseline
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARN,
    Diagnostic,
    LintContext,
    at_least,
    render_json,
    render_text,
    severity_rank,
    sort_diagnostics,
    summarize,
)
from repro.analysis.engine import (
    apply_baseline,
    gate,
    lint_circuit,
    lint_flow,
    lint_mapping,
    lint_network,
    lint_semantic,
)
from repro.analysis.postmap import (
    TimingAnalysis,
    WiringAnalysis,
    analyze_timing,
    analyze_wiring,
)
from repro.analysis.rules import (
    CIRCUIT,
    DOMAINS,
    FLOW,
    NETWORK,
    SEMANTIC,
    FlowArtifacts,
    Rule,
    all_rules,
    get_rule,
    rules_for,
)

# Imported for its registration side effect: the CHRT4xx semantic rules
# must appear in the catalogue (``chortle rules``, docs tooling) even
# though they only *run* on request.  The module defers every SAT import
# to rule execution, so this costs nothing at package import time.
from repro.analysis import semantic as _semantic  # noqa: F401  isort: skip
from repro.analysis.suite import lint_cell, lint_suite

__all__ = [
    "Baseline",
    "BaselineEntry",
    "load_baseline",
    "ERROR",
    "INFO",
    "WARN",
    "SEVERITIES",
    "Diagnostic",
    "LintContext",
    "at_least",
    "render_json",
    "render_text",
    "severity_rank",
    "sort_diagnostics",
    "summarize",
    "apply_baseline",
    "gate",
    "lint_circuit",
    "lint_flow",
    "lint_mapping",
    "lint_network",
    "lint_semantic",
    "lint_cell",
    "lint_suite",
    "TimingAnalysis",
    "WiringAnalysis",
    "analyze_timing",
    "analyze_wiring",
    "CIRCUIT",
    "DOMAINS",
    "FLOW",
    "NETWORK",
    "SEMANTIC",
    "FlowArtifacts",
    "Rule",
    "all_rules",
    "get_rule",
    "rules_for",
]
