"""Diagnostics: the currency of the circuit lint engine.

A :class:`Diagnostic` is one finding of one rule: a stable code
(``CHRT1xx`` network / ``CHRT2xx`` circuit / ``CHRT3xx`` flow+cache), a
severity, the subject it was found in (a network, circuit, or flow
name), an optional location (node, LUT, wire, port, or cache key), an
optional flow-stage attribution (the ``flow.stage.<n>.<name>`` span name
of the pass that emitted the artifact), and a fix hint.

Severities are ordered ``info < warn < error``; gating compares against
that order (``--fail-on warn`` fails on warnings *and* errors).  The
catalogue of codes lives in :mod:`repro.analysis.rules` and is
documented with examples in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LintError

INFO = "info"
WARN = "warn"
ERROR = "error"

#: Severities in gating order (least to most severe).
SEVERITIES: Tuple[str, ...] = (INFO, WARN, ERROR)

_SEVERITY_RANK: Dict[str, int] = {sev: i for i, sev in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """The gating rank of a severity (``info`` 0, ``warn`` 1, ``error`` 2)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise LintError(
            "unknown severity %r; valid severities: %s"
            % (severity, ", ".join(SEVERITIES))
        ) from None


def at_least(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at least as severe as ``threshold``."""
    return severity_rank(severity) >= severity_rank(threshold)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    code: str  # stable rule code, e.g. "CHRT201"
    severity: str  # "info" | "warn" | "error"
    message: str  # human-readable, self-contained
    subject: str = ""  # network / circuit / flow the finding is in
    location: str = ""  # node, LUT, wire, port, or cache key
    stage: str = ""  # flow.stage.<n>.<name> when stage-attributed
    hint: str = ""  # how to fix or silence the finding

    def key(self) -> Tuple[str, str, str, str]:
        """The identity used for baseline matching and deduplication."""
        return (self.code, self.subject, self.location, self.stage)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "stage": self.stage,
            "hint": self.hint,
        }

    def format(self) -> str:
        """One-line rendering: ``error CHRT201 [subject node] message``."""
        where = " ".join(part for part in (self.subject, self.location) if part)
        prefix = "%-5s %s" % (self.severity, self.code)
        if where:
            prefix += " [%s]" % where
        line = "%s %s" % (prefix, self.message)
        if self.stage:
            line += " (at %s)" % self.stage
        return line

    def with_stage(self, stage: str) -> "Diagnostic":
        """A copy attributed to a flow stage (no-op if already attributed)."""
        if self.stage or not stage:
            return self
        return replace(self, stage=stage)


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Most severe first; then code, subject, location for stable output."""
    return sorted(
        diagnostics,
        key=lambda d: (
            -severity_rank(d.severity),
            d.code,
            d.subject,
            d.location,
            d.stage,
        ),
    )


def summarize(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    """Finding counts per severity (all severities present, even at 0)."""
    counts = {sev: 0 for sev in SEVERITIES}
    for diag in diagnostics:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts


def render_text(
    diagnostics: Sequence[Diagnostic], suppressed: int = 0
) -> str:
    """The human-readable lint report (one line per finding + summary)."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diag.format() for diag in ordered]
    for diag in ordered:
        if diag.hint:
            lines[lines.index(diag.format())] = (
                diag.format() + "\n      hint: " + diag.hint
            )
    counts = summarize(diagnostics)
    summary = "lint: %d error(s), %d warning(s), %d info" % (
        counts[ERROR],
        counts[WARN],
        counts[INFO],
    )
    if suppressed:
        summary += ", %d suppressed by baseline" % suppressed
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic],
    suppressed: int = 0,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """The machine-readable lint report (stable schema, sorted findings)."""
    payload: Dict[str, object] = {
        "schema_version": 1,
        "summary": summarize(diagnostics),
        "suppressed": suppressed,
        "diagnostics": [d.to_dict() for d in sort_diagnostics(diagnostics)],
    }
    if meta:
        payload["meta"] = dict(meta)
    return json.dumps(payload, indent=1, sort_keys=True)


@dataclass
class LintContext:
    """Cross-rule context threaded through every rule of a lint run.

    ``k`` enables the K-bound circuit rules; ``report`` enables the
    declared-vs-recomputed consistency rules; ``subject`` overrides the
    subject name stamped on findings (defaults to the linted object's
    own name).
    """

    k: Optional[int] = None
    subject: str = ""
    report: Optional[object] = None  # a repro.report.MappingReport
    config: Dict[str, object] = field(default_factory=dict)

    def subject_for(self, obj: object) -> str:
        if self.subject:
            return self.subject
        name = getattr(obj, "name", "")
        return str(name) if name else ""
