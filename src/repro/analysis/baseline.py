"""Suppression baselines: accepted lint findings, committed to the repo.

A baseline is a JSON file listing findings that are known, understood,
and deliberately tolerated — each entry carries a justification so the
file reads as documentation, not as a mute button.  Entries match by
rule code plus :mod:`fnmatch` globs over subject, location, and stage,
so one entry can cover a family of structurally identical findings
(e.g. every interface inverter the mapper emits).

The committed suite baseline lives at
``benchmarks/baselines/lint_baseline.json`` and is consumed by the CI
``lint-circuits`` gate via ``chortle lint --suite --baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.errors import LintError

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding (or glob family of findings)."""

    rule: str  # exact rule code, e.g. "CHRT205"
    subject: str = "*"  # fnmatch glob over Diagnostic.subject
    location: str = "*"  # fnmatch glob over Diagnostic.location
    stage: str = "*"  # fnmatch glob over Diagnostic.stage
    justification: str = ""  # why this finding is tolerated

    def matches(self, diag: Diagnostic) -> bool:
        return (
            diag.code == self.rule
            and fnmatchcase(diag.subject, self.subject)
            and fnmatchcase(diag.location, self.location)
            and fnmatchcase(diag.stage, self.stage)
        )

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "subject": self.subject,
            "location": self.location,
            "stage": self.stage,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """An ordered collection of suppression entries."""

    entries: List[BaselineEntry] = field(default_factory=list)

    def filter(
        self, diagnostics: Sequence[Diagnostic]
    ) -> Tuple[List[Diagnostic], int]:
        """(findings not covered by any entry, count of suppressed ones)."""
        kept: List[Diagnostic] = []
        suppressed = 0
        for diag in diagnostics:
            if any(entry.matches(diag) for entry in self.entries):
                suppressed += 1
            else:
                kept.append(diag)
        return kept, suppressed

    def to_json(self) -> str:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
        except OSError as exc:
            raise LintError(
                "cannot write lint baseline %r: %s" % (path, exc)
            ) from exc


def load_baseline(path: str) -> Baseline:
    """Read a baseline file, validating its schema."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise LintError("cannot read lint baseline %r: %s" % (path, exc)) from exc
    except ValueError as exc:
        raise LintError("lint baseline %r is not JSON: %s" % (path, exc)) from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise LintError(
            "lint baseline %r must be an object with an 'entries' list" % path
        )
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise LintError(
            "lint baseline %r has schema_version %r; this build reads %d"
            % (path, version, SCHEMA_VERSION)
        )
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(data["entries"]):
        if not isinstance(raw, dict) or "rule" not in raw:
            raise LintError(
                "lint baseline %r entry %d needs at least a 'rule' key"
                % (path, index)
            )
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                subject=str(raw.get("subject", "*")),
                location=str(raw.get("location", "*")),
                stage=str(raw.get("stage", "*")),
                justification=str(raw.get("justification", "")),
            )
        )
    return Baseline(entries)
