"""Suite-level linting: audit every mapped cell of the benchmark sweep.

:func:`lint_cell` maps one (circuit, K, mapper) cell and runs the full
:func:`~repro.analysis.engine.lint_mapping` audit over it;
:func:`lint_suite` fans the cells of the QoR sweep across worker
processes the same way the benchmark runner does (workers at module top
level so they pickle under ``spawn``; results restored in submission
order so output is deterministic).  This is what ``chortle lint
--suite`` and the CI ``lint-circuits`` gate run.
"""

from __future__ import annotations

import concurrent.futures
from typing import List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic

DEFAULT_MAPPERS: Tuple[str, ...] = ("chortle", "mis")
DEFAULT_KS: Tuple[int, ...] = (2, 3, 4, 5)


def lint_cell(name: str, k: int, mapper: str) -> List[Diagnostic]:
    """Map one benchmark cell and lint the complete mapping."""
    from repro.analysis.engine import lint_mapping
    from repro.bench.mcnc import mcnc_circuit
    from repro.flow.mappers import resolve_mapper
    from repro.report import build_report

    net = mcnc_circuit(name)
    circuit = resolve_mapper(mapper, k).map(net)
    report = build_report(net, circuit, k, mapper=mapper)
    subject = "%s[k=%d,%s]" % (name, k, mapper)
    return lint_mapping(net, circuit, k=k, report=report, subject=subject)


def _lint_cell_worker(payload: Tuple[str, int, str]) -> List[Diagnostic]:
    name, k, mapper = payload
    return lint_cell(name, k, mapper)


def lint_suite(
    circuits: Optional[Sequence[str]] = None,
    mappers: Sequence[str] = DEFAULT_MAPPERS,
    ks: Sequence[int] = DEFAULT_KS,
    jobs: int = 1,
) -> List[Diagnostic]:
    """Lint every (circuit, K, mapper) cell of the sweep; all findings."""
    from repro.bench.mcnc import TABLE_CIRCUITS

    names = list(circuits) if circuits else list(TABLE_CIRCUITS)
    cells = [(n, k, m) for n in names for k in ks for m in mappers]
    findings: List[Diagnostic] = []
    if jobs <= 1 or len(cells) <= 1:
        for cell in cells:
            findings.extend(_lint_cell_worker(cell))
        return findings
    workers = min(jobs, len(cells))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        for result in pool.map(_lint_cell_worker, cells):
            findings.extend(result)
    return findings
