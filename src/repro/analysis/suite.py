"""Suite-level linting: audit every mapped cell of the benchmark sweep.

:func:`lint_cell` maps one (circuit, K, mapper) cell and runs the full
:func:`~repro.analysis.engine.lint_mapping` audit over it;
:func:`lint_suite` fans the cells of the QoR sweep across worker
processes the same way the benchmark runner does (workers at module top
level so they pickle under ``spawn``; results restored in submission
order so output is deterministic).  This is what ``chortle lint
--suite`` and the CI ``lint-circuits`` gate run.
"""

from __future__ import annotations

import concurrent.futures
from typing import List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic

DEFAULT_MAPPERS: Tuple[str, ...] = ("chortle", "mis", "cutmap")
DEFAULT_KS: Tuple[int, ...] = (2, 3, 4, 5)


def lint_cell(
    name: str, k: int, mapper: str, semantic: bool = False
) -> List[Diagnostic]:
    """Map one benchmark cell and lint the complete mapping.

    ``name`` resolves like the benchmark runner's cell names: an MCNC
    profile or an adversarial preset (``adv_*``).  ``semantic=True``
    additionally runs the SAT-backed CHRT4xx rules over the circuit.
    """
    from repro.analysis.engine import lint_mapping
    from repro.bench.adversarial import resolve_cell
    from repro.flow.mappers import resolve_mapper
    from repro.report import build_report

    net = resolve_cell(name)
    circuit = resolve_mapper(mapper, k).map(net)
    report = build_report(net, circuit, k, mapper=mapper)
    subject = "%s[k=%d,%s]" % (name, k, mapper)
    return lint_mapping(
        net, circuit, k=k, report=report, subject=subject, semantic=semantic
    )


def _lint_cell_worker(
    payload: Tuple[str, int, str, bool],
) -> List[Diagnostic]:
    name, k, mapper, semantic = payload
    return lint_cell(name, k, mapper, semantic=semantic)


def _timed_lint_cell_worker(
    payload: Tuple[str, int, str, bool],
) -> Tuple[List[Diagnostic], float]:
    import time

    started = time.perf_counter()
    return _lint_cell_worker(payload), time.perf_counter() - started


def lint_suite(
    circuits: Optional[Sequence[str]] = None,
    mappers: Sequence[str] = DEFAULT_MAPPERS,
    ks: Sequence[int] = DEFAULT_KS,
    jobs: int = 1,
    progress: object = False,
    semantic: bool = False,
) -> List[Diagnostic]:
    """Lint every (circuit, K, mapper) cell of the sweep; all findings.

    ``progress`` takes ``True`` (heartbeat lines on stderr) or a
    :class:`~repro.obs.progress.ProgressEmitter` for per-cell
    started/finished events while the audit runs (parallel audits emit
    finished events only, in completion order; findings still come back
    in submission order).
    """
    import time

    from repro.bench.mcnc import TABLE_CIRCUITS
    from repro.obs.progress import resolve_progress

    from repro.flow.mappers import supports_k

    names = list(circuits) if circuits else list(TABLE_CIRCUITS)
    # Same capability filter as the benchmark runner: cells a mapper
    # cannot do at that K (mis beyond K=5) are skipped, not failed.
    cells = [
        (n, k, m, semantic)
        for n in names
        for k in ks
        for m in mappers
        if supports_k(m, k)
    ]
    emitter = resolve_progress(progress, total=len(cells))
    findings: List[Diagnostic] = []
    if jobs <= 1 or len(cells) <= 1:
        for cell in cells:
            name, k, mapper = cell[:3]
            if emitter is not None:
                emitter.cell_started(name, k, mapper, phase="lint")
            started = time.perf_counter()
            findings.extend(_lint_cell_worker(cell))
            if emitter is not None:
                emitter.cell_finished(
                    name, k, mapper,
                    seconds=time.perf_counter() - started,
                    phase="lint",
                )
        return findings
    workers = min(jobs, len(cells))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_timed_lint_cell_worker, cell) for cell in cells
        ]
        if emitter is not None:
            future_cells = dict(zip(futures, cells))
            for future in concurrent.futures.as_completed(futures):
                name, k, mapper = future_cells[future][:3]
                emitter.cell_finished(
                    name, k, mapper,
                    seconds=future.result()[1],
                    phase="lint",
                )
        # Findings in submission order, whatever order the pool ran them.
        for future in futures:
            findings.extend(future.result()[0])
    return findings
