"""Post-mapping analysis: critical paths, slack, and wiring statistics.

Complements :mod:`repro.report` with the questions a designer asks after
mapping: *which* path limits the clock, how much slack everything else
has, and what the net fanout distribution looks like (a proxy for
routing demand on the paper's programmable routing network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.lut import LUTCircuit


@dataclass(frozen=True)
class TimingAnalysis:
    """Unit-delay timing of a LUT circuit."""

    depth: int
    critical_path: Tuple[str, ...]  # input, LUT..., output-driving LUT
    critical_port: str
    arrival: Dict[str, int] = field(default_factory=dict)
    slack: Dict[str, int] = field(default_factory=dict)

    @property
    def num_critical_luts(self) -> int:
        return sum(1 for _ in self.critical_path) - 1


def analyze_timing(circuit: LUTCircuit) -> TimingAnalysis:
    """Arrival/required/slack under the unit-delay (LUT level) model."""
    arrival: Dict[str, int] = {name: 0 for name in circuit.inputs}
    worst_fanin: Dict[str, str] = {}
    order = circuit.topological_order()
    for name in order:
        lut = circuit.lut(name)
        best_src = None
        best = -1
        for src in lut.inputs:
            t = arrival.get(src, 0)
            if t > best:
                best = t
                best_src = src
        arrival[name] = best + 1 if lut.inputs else 0
        if best_src is not None:
            worst_fanin[name] = best_src

    outputs = circuit.outputs
    if not outputs:
        return TimingAnalysis(0, (), "", arrival, {})
    critical_port, critical_sig = max(
        outputs.items(), key=lambda item: arrival.get(item[1], 0)
    )
    depth = arrival.get(critical_sig, 0)

    # Required times / slack, propagated backwards from every port.
    required: Dict[str, int] = {}
    for sig in outputs.values():
        required[sig] = min(required.get(sig, depth), depth)
    for name in reversed(order):
        lut = circuit.lut(name)
        req = required.get(name, depth)
        for src in lut.inputs:
            candidate = req - 1
            if candidate < required.get(src, depth):
                required[src] = candidate
    slack = {
        name: required.get(name, depth) - arrival.get(name, 0)
        for name in list(arrival)
    }

    path: List[str] = []
    cursor = critical_sig
    while cursor is not None:
        path.append(cursor)
        cursor = worst_fanin.get(cursor)
    path.reverse()
    return TimingAnalysis(
        depth=depth,
        critical_path=tuple(path),
        critical_port=critical_port,
        arrival=arrival,
        slack=slack,
    )


@dataclass(frozen=True)
class WiringAnalysis:
    """Net statistics of a mapped circuit (routing-demand proxy)."""

    num_nets: int
    total_pins: int
    max_fanout: int
    fanout_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def average_fanout(self) -> float:
        return self.total_pins / self.num_nets if self.num_nets else 0.0


def analyze_wiring(circuit: LUTCircuit) -> WiringAnalysis:
    """Fanout distribution over all nets (inputs and LUT outputs)."""
    fanout: Dict[str, int] = {name: 0 for name in circuit.inputs}
    for lut in circuit.luts():
        fanout.setdefault(lut.name, 0)
        for src in lut.inputs:
            fanout[src] = fanout.get(src, 0) + 1
    for sig in circuit.outputs.values():
        fanout[sig] = fanout.get(sig, 0) + 1
    histogram: Dict[int, int] = {}
    for count in fanout.values():
        histogram[count] = histogram.get(count, 0) + 1
    return WiringAnalysis(
        num_nets=len(fanout),
        total_pins=sum(fanout.values()),
        max_fanout=max(fanout.values()) if fanout else 0,
        fanout_histogram=histogram,
    )
