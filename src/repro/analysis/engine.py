"""The lint engine: run registered rules over networks, circuits, flows.

Entry points mirror the three rule domains —
:func:`lint_network`, :func:`lint_circuit`, :func:`lint_flow` — plus
:func:`lint_mapping`, which audits a complete (network, circuit, report)
triple the way ``chortle lint --cell`` and the CI gate do.  Every run
feeds the ``lint.*`` counter namespace (see docs/OBSERVABILITY.md):

- ``lint.runs`` — engine invocations
- ``lint.diagnostics`` — findings emitted (pre-suppression)
- ``lint.severity.<sev>`` — findings per severity
- ``lint.rule.<code>`` — findings per rule code
- ``lint.suppressed`` — findings filtered by a suppression baseline
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.diagnostics import (
    ERROR,
    Diagnostic,
    LintContext,
    at_least,
    render_text,
)
from repro.analysis.rules import (
    CIRCUIT,
    FLOW,
    NETWORK,
    SEMANTIC,
    FlowArtifacts,
    Rule,
    rules_for,
)
from repro.core.lut import LUTCircuit
from repro.errors import LintError
from repro.network.network import BooleanNetwork
from repro.obs.metrics import get_metrics


def _record(diagnostics: Sequence[Diagnostic]) -> None:
    metrics = get_metrics()
    metrics.count("lint.runs")
    if diagnostics:
        metrics.count("lint.diagnostics", len(diagnostics))
    for diag in diagnostics:
        metrics.count("lint.severity.%s" % diag.severity)
        metrics.count("lint.rule.%s" % diag.code)


def _run_rules(
    rules: Iterable[Rule], subject: object, ctx: LintContext
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for rule in rules:
        findings.extend(rule.run(subject, ctx))
    _record(findings)
    return findings


def lint_network(
    net: BooleanNetwork, ctx: Optional[LintContext] = None
) -> List[Diagnostic]:
    """Run every network-domain rule (CHRT1xx) over a boolean network."""
    return _run_rules(rules_for(NETWORK), net, ctx or LintContext())


def lint_circuit(
    circuit: LUTCircuit, ctx: Optional[LintContext] = None
) -> List[Diagnostic]:
    """Run every circuit-domain rule (CHRT2xx) over a LUT circuit."""
    return _run_rules(rules_for(CIRCUIT), circuit, ctx or LintContext())


def lint_semantic(
    circuit: LUTCircuit, ctx: Optional[LintContext] = None
) -> List[Diagnostic]:
    """Run every semantic-domain rule (CHRT4xx) over a LUT circuit.

    The SAT-backed rules: each finding is *proved* over the reachable
    primary-input assignments rather than read off the structure, which
    is why the domain is opt-in (``chortle lint --semantic``) instead of
    part of :func:`lint_circuit`.
    """
    # Imported here for its registration side effect, so a caller that
    # never asks for semantic lint never touches the SAT engine.
    import repro.analysis.semantic  # noqa: F401

    return _run_rules(rules_for(SEMANTIC), circuit, ctx or LintContext())


def lint_flow(
    artifacts: FlowArtifacts, ctx: Optional[LintContext] = None
) -> List[Diagnostic]:
    """Run every flow/cache-domain rule (CHRT3xx) over flow artifacts."""
    return _run_rules(rules_for(FLOW), artifacts, ctx or LintContext())


def lint_mapping(
    net: Optional[BooleanNetwork],
    circuit: LUTCircuit,
    k: Optional[int] = None,
    report: Optional[object] = None,
    cache: Optional[object] = None,
    subject: str = "",
    semantic: bool = False,
) -> List[Diagnostic]:
    """Audit a complete mapping: source network, circuit, and report.

    The one-stop entry point used by ``chortle lint --cell``/`--suite``
    and the CI gate: network rules on the source (when given), circuit
    rules under the K bound, and flow rules tying the report and memo
    cache back to the circuit.  ``semantic=True`` additionally runs the
    SAT-backed CHRT4xx rules over the circuit.
    """
    name = subject or circuit.name
    ctx = LintContext(k=k, subject=name, report=report)
    findings: List[Diagnostic] = []
    if net is not None:
        findings.extend(lint_network(net, ctx))
    findings.extend(lint_circuit(circuit, ctx))
    if semantic:
        findings.extend(lint_semantic(circuit, ctx))
    artifacts = FlowArtifacts(
        name=name, cache=cache, circuit=circuit, report=report
    )
    findings.extend(lint_flow(artifacts, ctx))
    return findings


def apply_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Optional[Baseline]
) -> "tuple[List[Diagnostic], int]":
    """Split findings into (kept, suppressed-count) under a baseline."""
    if baseline is None:
        return list(diagnostics), 0
    kept, suppressed = baseline.filter(diagnostics)
    if suppressed:
        get_metrics().count("lint.suppressed", suppressed)
    return kept, suppressed


def gate(
    diagnostics: Sequence[Diagnostic],
    fail_on: str = ERROR,
    subject: str = "",
) -> None:
    """Raise :class:`LintError` when any finding reaches ``fail_on``."""
    gating = [d for d in diagnostics if at_least(d.severity, fail_on)]
    if not gating:
        return
    what = subject or "lint run"
    raise LintError(
        "%s: %d diagnostic(s) at severity >= %s\n%s"
        % (what, len(gating), fail_on, render_text(gating))
    )
