"""The lint rule catalogue: network, circuit, and flow/cache rules.

Every rule has a stable code (``CHRT1xx`` for boolean-network rules,
``CHRT2xx`` for LUT-circuit rules, ``CHRT3xx`` for flow/cache/report
rules, ``CHRT4xx`` for the SAT-backed semantic rules registered from
:mod:`repro.analysis.semantic`), a default severity, and a check
function yielding
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  Rules are
registered in a module-level registry; the engine
(:mod:`repro.analysis.engine`) selects rules by domain and threads a
:class:`~repro.analysis.diagnostics.LintContext` through them.

Severity calibration matters: the paper's cost model deliberately emits
0-input constant tables and 1-input inverters as interface plumbing
(``wire_outputs`` in :mod:`repro.core.chortle`), so those are *info*,
not gating errors.  See ``docs/ANALYSIS.md`` for the full catalogue
with examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import ERROR, INFO, WARN, Diagnostic, LintContext
from repro.core.lut import LUTCircuit
from repro.errors import FlowError, LintError, NetworkError
from repro.network import network as netmod
from repro.network.network import BooleanNetwork

NETWORK = "network"
CIRCUIT = "circuit"
FLOW = "flow"
#: SAT-backed semantic circuit rules (CHRT4xx).  A separate domain from
#: CIRCUIT because they prove properties with the solver rather than
#: inspect structure — strictly more powerful, measurably more
#: expensive — so they run only on request (``chortle lint
#: --semantic``, :func:`repro.analysis.engine.lint_semantic`).
SEMANTIC = "semantic"

DOMAINS: Tuple[str, ...] = (NETWORK, CIRCUIT, FLOW, SEMANTIC)

#: Placement kinds a LUTProvenance record may legally carry: the three
#: input-placement classes of the tree decomposition (see core/tree.py)
#: plus ``cut`` — one entry per leaf of a DAG-cover mapper's chosen cut.
_PLACEMENT_KINDS = frozenset(("ext", "wire", "merged", "cut"))

CheckFn = Callable[[object, LintContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str  # stable identifier, e.g. "CHRT201"
    name: str  # short kebab-case slug, e.g. "overwide-lut"
    domain: str  # NETWORK | CIRCUIT | FLOW
    severity: str  # default severity of findings
    summary: str  # one-line description for docs / --list
    check: CheckFn

    def run(self, subject: object, ctx: LintContext) -> List[Diagnostic]:
        return list(self.check(subject, ctx))


_REGISTRY: Dict[str, Rule] = {}


def register(
    code: str, name: str, domain: str, severity: str, summary: str
) -> Callable[[CheckFn], CheckFn]:
    """Class the decorated generator function as a lint rule."""

    def wrap(fn: CheckFn) -> CheckFn:
        if code in _REGISTRY:
            raise LintError("duplicate rule code %r" % code)
        if domain not in DOMAINS:
            raise LintError("unknown rule domain %r for %s" % (domain, code))
        _REGISTRY[code] = Rule(code, name, domain, severity, summary, fn)
        return fn

    return wrap


def all_rules() -> List[Rule]:
    """Every registered rule, in code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rules_for(domain: str) -> List[Rule]:
    """The rules of one domain, in code order."""
    if domain not in DOMAINS:
        raise LintError(
            "unknown rule domain %r; valid domains: %s"
            % (domain, ", ".join(DOMAINS))
        )
    return [rule for rule in all_rules() if rule.domain == domain]


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise LintError("no rule with code %r" % code) from None


@dataclass
class FlowArtifacts:
    """The subject of the flow/cache rule domain.

    Any field may be ``None``; each flow rule checks only the artifacts
    it understands and skips silently when they are absent.
    """

    name: str = "flow"
    spec: Optional[str] = None  # a flow spec string, e.g. "sweep,chortle"
    cache: Optional[object] = None  # a repro.perf.memo.NodeTableCache
    circuit: Optional[LUTCircuit] = None
    report: Optional[object] = None  # a repro.report.MappingReport


# ---------------------------------------------------------------------------
# Network rules (CHRT1xx)
# ---------------------------------------------------------------------------


@register(
    "CHRT101",
    "dangling-reference",
    NETWORK,
    ERROR,
    "fanin or output port references a node that does not exist",
)
def _dangling_reference(net: BooleanNetwork, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(net)
    for node in net.nodes():
        for sig in node.fanins:
            if sig.name not in net:
                yield Diagnostic(
                    "CHRT101",
                    ERROR,
                    "node %r reads undefined node %r" % (node.name, sig.name),
                    subject=subject,
                    location=node.name,
                    hint="add the missing node or rewire the fanin",
                )
    for port, sig in net.outputs.items():
        if sig.name not in net:
            yield Diagnostic(
                "CHRT101",
                ERROR,
                "output port %r is driven by undefined node %r"
                % (port, sig.name),
                subject=subject,
                location=port,
                hint="add the missing driver or drop the output port",
            )


@register(
    "CHRT102",
    "combinational-cycle",
    NETWORK,
    ERROR,
    "the network contains a combinational cycle",
)
def _network_cycle(net: BooleanNetwork, ctx: LintContext) -> Iterator[Diagnostic]:
    # Cycle detection needs reference integrity first; CHRT101 owns the
    # dangling case, so bail out quietly if node() would throw.
    for node in net.nodes():
        for sig in node.fanins:
            if sig.name not in net:
                return
    try:
        net.topological_order()
    except NetworkError as exc:
        yield Diagnostic(
            "CHRT102",
            ERROR,
            str(exc),
            subject=ctx.subject_for(net),
            hint="break the feedback path; this mapper is combinational-only",
        )


@register(
    "CHRT103",
    "op-arity",
    NETWORK,
    ERROR,
    "unknown op, gate without fanins, or non-gate with fanins",
)
def _op_arity(net: BooleanNetwork, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(net)
    for node in net.nodes():
        if node.op not in netmod._ALL_OPS:
            yield Diagnostic(
                "CHRT103",
                ERROR,
                "node %r has unknown op %r" % (node.name, node.op),
                subject=subject,
                location=node.name,
                hint="ops must be one of %s" % (", ".join(netmod._ALL_OPS)),
            )
        elif node.is_gate and not node.fanins:
            yield Diagnostic(
                "CHRT103",
                ERROR,
                "gate %r has no fanins" % node.name,
                subject=subject,
                location=node.name,
                hint="gates need at least one fanin signal",
            )
        elif not node.is_gate and node.fanins:
            yield Diagnostic(
                "CHRT103",
                ERROR,
                "non-gate %r (%s) has %d fanins"
                % (node.name, node.op, node.fanin_count),
                subject=subject,
                location=node.name,
                hint="inputs and constants take no fanins",
            )


@register(
    "CHRT104",
    "buffer-chain",
    NETWORK,
    WARN,
    "chained single-fanin gates (double negation / buffer ladders)",
)
def _buffer_chain(net: BooleanNetwork, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(net)
    for node in net.gates():
        if node.fanin_count != 1:
            continue
        src = node.fanins[0]
        if src.name not in net:
            continue  # CHRT101's finding
        driver = net.node(src.name)
        if driver.is_gate and driver.fanin_count == 1:
            yield Diagnostic(
                "CHRT104",
                WARN,
                "unit gate %r feeds unit gate %r: a buffer/negation chain"
                % (driver.name, node.name),
                subject=subject,
                location=node.name,
                hint="run the sweep pass to collapse unit-gate chains",
            )


@register(
    "CHRT105",
    "dead-node",
    NETWORK,
    WARN,
    "node drives no gate and no output port",
)
def _dead_node(net: BooleanNetwork, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(net)
    # Not net.fanout_counts(): that KeyErrors on dangling references,
    # which CHRT101 reports and this rule must survive.
    fanout: Dict[str, int] = {}
    for gate_node in net.gates():
        for sig in gate_node.fanins:
            fanout[sig.name] = fanout.get(sig.name, 0) + 1
    for sig in net.outputs.values():
        fanout[sig.name] = fanout.get(sig.name, 0) + 1
    for node in net.nodes():
        if fanout.get(node.name, 0):
            continue
        if node.is_gate:
            yield Diagnostic(
                "CHRT105",
                WARN,
                "gate %r drives nothing" % node.name,
                subject=subject,
                location=node.name,
                hint="run the sweep pass to remove dead logic",
            )
        else:
            # Unused primary inputs / constants are common in benchmark
            # sources and harmless to the mapper: note, don't nag.
            yield Diagnostic(
                "CHRT105",
                INFO,
                "%s %r drives nothing" % (node.op, node.name),
                subject=subject,
                location=node.name,
            )


@register(
    "CHRT106",
    "duplicate-gate",
    NETWORK,
    WARN,
    "structurally identical gates that strash should have merged",
)
def _duplicate_gate(net: BooleanNetwork, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(net)
    seen: Dict[Tuple[str, Tuple[Tuple[str, bool], ...]], str] = {}
    for node in net.gates():
        key = (node.op, tuple(sorted((s.name, s.inv) for s in node.fanins)))
        first = seen.get(key)
        if first is None:
            seen[key] = node.name
        else:
            yield Diagnostic(
                "CHRT106",
                WARN,
                "gate %r duplicates gate %r (same op and fanins)"
                % (node.name, first),
                subject=subject,
                location=node.name,
                hint="run the strash pass to merge structural duplicates",
            )


# ---------------------------------------------------------------------------
# Circuit rules (CHRT2xx)
# ---------------------------------------------------------------------------


@register(
    "CHRT201",
    "overwide-lut",
    CIRCUIT,
    ERROR,
    "LUT has more inputs than the K bound",
)
def _overwide_lut(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.k is None:
        return
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        if len(lut.inputs) > ctx.k:
            yield Diagnostic(
                "CHRT201",
                ERROR,
                "LUT %r has %d inputs, exceeding K=%d"
                % (lut.name, len(lut.inputs), ctx.k),
                subject=subject,
                location=lut.name,
                hint="the mapper must decompose wide functions before emit",
            )


@register(
    "CHRT202",
    "undefined-wire",
    CIRCUIT,
    ERROR,
    "LUT input or output port reads a wire nothing defines",
)
def _undefined_wire(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        for src in lut.inputs:
            if src not in circuit:
                yield Diagnostic(
                    "CHRT202",
                    ERROR,
                    "LUT %r reads undefined wire %r" % (lut.name, src),
                    subject=subject,
                    location=lut.name,
                    hint="every wire must be a primary input or a LUT output",
                )
    for port, sig in circuit.outputs.items():
        if sig not in circuit:
            yield Diagnostic(
                "CHRT202",
                ERROR,
                "output port %r references undefined wire %r" % (port, sig),
                subject=subject,
                location=port,
                hint="every wire must be a primary input or a LUT output",
            )


@register(
    "CHRT203",
    "circuit-cycle",
    CIRCUIT,
    ERROR,
    "the LUT circuit contains a cycle",
)
def _circuit_cycle(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    try:
        circuit.topological_order()
    except NetworkError as exc:
        yield Diagnostic(
            "CHRT203",
            ERROR,
            str(exc),
            subject=ctx.subject_for(circuit),
            hint="LUT circuits must be acyclic",
        )


@register(
    "CHRT204",
    "constant-lut",
    CIRCUIT,
    WARN,
    "LUT computes a constant function",
)
def _constant_lut(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        if not lut.tt.is_constant():
            continue
        if not lut.inputs:
            # 0-input constants are how mapped circuits expose constant
            # output ports (wire_outputs); legitimate interface plumbing.
            yield Diagnostic(
                "CHRT204",
                INFO,
                "LUT %r is a constant-%d interface table"
                % (lut.name, 1 if lut.tt.count_ones() else 0),
                subject=subject,
                location=lut.name,
            )
        else:
            yield Diagnostic(
                "CHRT204",
                WARN,
                "LUT %r has %d inputs but computes a constant"
                % (lut.name, len(lut.inputs)),
                subject=subject,
                location=lut.name,
                hint="constant-propagate before mapping, or emit a 0-input table",
            )


@register(
    "CHRT205",
    "buffer-lut",
    CIRCUIT,
    WARN,
    "single-input LUT is an identity buffer or interface inverter",
)
def _buffer_lut(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        if len(lut.inputs) != 1 or lut.tt.is_constant():
            continue
        if lut.tt.bits == 0b10:
            # tt(x) == x: a pure buffer — never useful, unlike inverters.
            yield Diagnostic(
                "CHRT205",
                WARN,
                "LUT %r is an identity buffer of wire %r"
                % (lut.name, lut.inputs[0]),
                subject=subject,
                location=lut.name,
                hint="forward the source wire instead of buffering it",
            )
        else:
            # tt(x) == ~x: interface inverters are part of the paper's
            # cost model (not counted as logic blocks); note, don't nag.
            yield Diagnostic(
                "CHRT205",
                INFO,
                "LUT %r is an interface inverter of wire %r"
                % (lut.name, lut.inputs[0]),
                subject=subject,
                location=lut.name,
            )


@register(
    "CHRT206",
    "floating-input",
    CIRCUIT,
    WARN,
    "LUT input wire the truth table never reads",
)
def _floating_input(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        if lut.tt.is_constant():
            continue  # CHRT204's finding; every input is trivially unread
        for index, src in enumerate(lut.inputs):
            if not lut.tt.depends_on(index):
                yield Diagnostic(
                    "CHRT206",
                    WARN,
                    "LUT %r wires %r to pin %d but never reads it"
                    % (lut.name, src, index),
                    subject=subject,
                    location=lut.name,
                    hint="shrink the table to its true support",
                )


@register(
    "CHRT207",
    "duplicate-lut",
    CIRCUIT,
    WARN,
    "two LUTs compute the same function of the same wires",
)
def _duplicate_lut(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    seen: Dict[Tuple[Tuple[str, ...], object], str] = {}
    for lut in circuit.luts():
        if not lut.inputs:
            continue  # interface constants may legally repeat per port
        key = (lut.inputs, lut.tt.bits)
        first = seen.get(key)
        if first is None:
            seen[key] = lut.name
        else:
            yield Diagnostic(
                "CHRT207",
                WARN,
                "LUT %r duplicates LUT %r (same inputs and table)"
                % (lut.name, first),
                subject=subject,
                location=lut.name,
                hint="share one table and fan its output out",
            )


@register(
    "CHRT208",
    "unreachable-lut",
    CIRCUIT,
    WARN,
    "LUT feeds no output port, directly or transitively",
)
def _unreachable_lut(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    live = set()
    stack = list(circuit.outputs.values())
    while stack:
        wire = stack.pop()
        if wire in live:
            continue
        live.add(wire)
        if wire in circuit._luts:
            stack.extend(circuit.lut(wire).inputs)
    for lut in circuit.luts():
        if lut.name not in live:
            yield Diagnostic(
                "CHRT208",
                WARN,
                "LUT %r is unreachable from every output port" % lut.name,
                subject=subject,
                location=lut.name,
                hint="drop dead tables after rewrites and merges",
            )


@register(
    "CHRT209",
    "stale-provenance",
    CIRCUIT,
    ERROR,
    "provenance record inconsistent with the LUT it annotates",
)
def _stale_provenance(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        prov = lut.provenance
        if prov is None:
            continue
        bad_kinds = [kind for kind in prov.placements if kind not in _PLACEMENT_KINDS]
        if bad_kinds:
            yield Diagnostic(
                "CHRT209",
                ERROR,
                "LUT %r provenance has unknown placement kind(s) %s"
                % (lut.name, ", ".join(map(repr, sorted(set(bad_kinds))))),
                subject=subject,
                location=lut.name,
                hint="placement kinds must be ext, wire, merged, or cut",
            )
        elif prov.merged == 0 and len(lut.inputs) > len(prov.placements):
            # Each ext/wire placement contributes exactly one input wire
            # (duplicate leaves can only shrink that count); only merged
            # placements expand into a child table's several inputs.  A
            # table wider than its merge-free division is stale.
            yield Diagnostic(
                "CHRT209",
                ERROR,
                "LUT %r has %d inputs but its merge-free provenance "
                "records only %d placements"
                % (lut.name, len(lut.inputs), len(prov.placements)),
                subject=subject,
                location=lut.name,
                hint="re-stamp provenance when rewiring a table",
            )


@register(
    "CHRT210",
    "depth-mismatch",
    CIRCUIT,
    ERROR,
    "declared report depth differs from the recomputed circuit depth",
)
def _depth_mismatch(circuit: LUTCircuit, ctx: LintContext) -> Iterator[Diagnostic]:
    report = ctx.report
    declared = getattr(report, "depth", None)
    if declared is None:
        return
    try:
        actual = circuit.depth()
    except NetworkError:
        return  # CHRT203's finding
    if actual != declared:
        yield Diagnostic(
            "CHRT210",
            ERROR,
            "report declares depth %d but the circuit recomputes to %d"
            % (declared, actual),
            subject=ctx.subject_for(circuit),
            hint="rebuild the report after any pass that edits the circuit",
        )


@register(
    "CHRT211",
    "bad-cut-provenance",
    CIRCUIT,
    ERROR,
    "cut-cover provenance mixes kinds or mismatches the LUT width",
)
def _bad_cut_provenance(
    circuit: LUTCircuit, ctx: LintContext
) -> Iterator[Diagnostic]:
    """Structural invariants of DAG-cover (``cut``) provenance.

    A cut-mapped LUT realizes one cone over exactly its cut leaves, so
    its provenance must be *all* ``cut`` placements (the tree kinds
    describe decomposition divisions that never coexist with a cut
    cover) and must record exactly one placement per input wire.
    """
    subject = ctx.subject_for(circuit)
    for lut in circuit.luts():
        prov = lut.provenance
        if prov is None or "cut" not in prov.placements:
            continue
        kinds = set(prov.placements)
        if kinds != {"cut"}:
            yield Diagnostic(
                "CHRT211",
                ERROR,
                "LUT %r mixes cut provenance with %s"
                % (lut.name, ", ".join(map(repr, sorted(kinds - {"cut"})))),
                subject=subject,
                location=lut.name,
                hint="a cut cover has no tree-decomposition divisions",
            )
        elif len(prov.placements) != len(lut.inputs):
            yield Diagnostic(
                "CHRT211",
                ERROR,
                "LUT %r has %d inputs but its cut provenance records "
                "%d leaves" % (
                    lut.name, len(lut.inputs), len(prov.placements)
                ),
                subject=subject,
                location=lut.name,
                hint="cut provenance carries one placement per cut leaf",
            )


# ---------------------------------------------------------------------------
# Flow / cache rules (CHRT3xx)
# ---------------------------------------------------------------------------


@register(
    "CHRT301",
    "bad-flow-spec",
    FLOW,
    ERROR,
    "flow spec names unknown passes or its domains cannot chain",
)
def _bad_flow_spec(artifacts: FlowArtifacts, ctx: LintContext) -> Iterator[Diagnostic]:
    spec = getattr(artifacts, "spec", None)
    if not spec:
        return
    from repro.flow.registry import get_registry

    try:
        get_registry().resolve(spec)
    except FlowError as exc:
        yield Diagnostic(
            "CHRT301",
            ERROR,
            "flow spec %r does not compose: %s" % (spec, exc),
            subject=artifacts.name,
            location=spec,
            hint="list valid passes and built-in flows with 'chortle flows'",
        )


@register(
    "CHRT302",
    "bad-cache-key",
    FLOW,
    ERROR,
    "memo-cache key is missing the (k, split_threshold) discriminators",
)
def _bad_cache_key(artifacts: FlowArtifacts, ctx: LintContext) -> Iterator[Diagnostic]:
    cache = getattr(artifacts, "cache", None)
    if cache is None:
        return
    items = getattr(cache, "items_snapshot", None)
    if items is None:
        return
    from repro.perf.memo import InternedSignature

    for key, _value in items():
        # Two legal layouts share the cache: tree-DP node tables keyed
        # (k, split_threshold, <interned "nt" signature>) and cut-cover
        # cone tables keyed ("cut", k, ("cone", ...)).
        ok = (
            isinstance(key, tuple)
            and len(key) == 3
            and (
                (
                    isinstance(key[0], int)
                    and isinstance(key[1], int)
                    and isinstance(key[2], InternedSignature)
                    and key[2].shape[:1] == ("nt",)
                )
                or (
                    key[0] == "cut"
                    and isinstance(key[1], int)
                    and isinstance(key[2], tuple)
                    and key[2][:1] == ("cone",)
                )
            )
        )
        if not ok:
            yield Diagnostic(
                "CHRT302",
                ERROR,
                "cache key %r is not (k, split_threshold, node-signature) "
                "or ('cut', k, cone-signature)" % (key,),
                subject=artifacts.name,
                location=repr(key)[:80],
                hint="keys missing the discriminators alias across K values",
            )


@register(
    "CHRT303",
    "report-contradiction",
    FLOW,
    ERROR,
    "report counters contradict the circuit they describe",
)
def _report_contradiction(
    artifacts: FlowArtifacts, ctx: LintContext
) -> Iterator[Diagnostic]:
    report = getattr(artifacts, "report", None)
    circuit = getattr(artifacts, "circuit", None)
    if report is None or circuit is None:
        return
    checks = (
        ("luts", circuit.cost),
        ("luts_total", circuit.num_luts),
    )
    for attr, actual in checks:
        declared = getattr(report, attr, None)
        if declared is not None and declared != actual:
            yield Diagnostic(
                "CHRT303",
                ERROR,
                "report %s=%d but the circuit has %d" % (attr, declared, actual),
                subject=artifacts.name,
                location=attr,
                hint="rebuild the report from the final circuit",
            )
    declared_hist = getattr(report, "utilization_histogram", None)
    if declared_hist:
        actual_hist = circuit.utilization_histogram()
        if dict(declared_hist) != actual_hist:
            yield Diagnostic(
                "CHRT303",
                ERROR,
                "report utilization histogram %r != circuit %r"
                % (dict(sorted(declared_hist.items())),
                   dict(sorted(actual_hist.items()))),
                subject=artifacts.name,
                location="utilization_histogram",
                hint="rebuild the report from the final circuit",
            )
