"""Structured mapping reports (text and JSON-serializable dict forms).

Gathers, in one object, everything a user wants to know after a mapping
run: source-network statistics, LUT counts under both accountings, the
utilization histogram, depth, and optionally XC3000-style CLB packing
figures — suitable for printing, regression-diffing, or CI dashboards.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Mapping, Optional

from repro.core.lut import LUTCircuit
from repro.network.network import BooleanNetwork
from repro.network.stats import network_stats


@dataclass(frozen=True)
class MappingReport:
    """The result summary of mapping one network."""

    circuit_name: str
    k: int
    mapper: str
    num_inputs: int
    num_outputs: int
    source_gates: int
    source_edges: int
    source_depth: int
    luts: int  # the paper's area metric (multi-input tables)
    luts_total: int  # including interface inverters/buffers/constants
    depth: int
    utilization_histogram: Dict[int, int] = field(default_factory=dict)
    seconds: Optional[float] = None
    # Full cell wall clock (mapping + verification + report assembly) as
    # measured by the benchmark runner; None outside suite sweeps.
    wall_seconds: Optional[float] = None
    clbs: Optional[int] = None
    clb_packing_ratio: Optional[float] = None
    # Per-stage wall time (span name -> seconds) and mapper counters
    # attributed to this run, when the harness traced it (see repro.obs).
    timings: Optional[Dict[str, float]] = None
    counters: Optional[Dict[str, int]] = None
    # Cost-counted LUTs per source tree, from per-LUT provenance; None for
    # mappers that do not record provenance (see LUTCircuit.tree_profile).
    tree_luts: Optional[Dict[str, int]] = None
    # Critical-path LUT levels per source tree (sums to ``depth``; see
    # repro.obs.explain.depth_attribution); None without provenance.
    depth_attribution: Optional[Dict[str, int]] = None

    @property
    def average_utilization(self) -> float:
        total = sum(u * n for u, n in self.utilization_histogram.items())
        count = sum(self.utilization_histogram.values())
        return total / count if count else 0.0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["average_utilization"] = round(self.average_utilization, 3)
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> MappingReport:
        """Rebuild a report from its :meth:`to_dict` / JSON form.

        JSON object keys are always strings, so the integer keys of
        ``utilization_histogram`` come back as ``"2"``/``"3"``/... after a
        ``to_json``/``json.loads`` round trip; they are restored to ints
        here.  Derived keys (``average_utilization``) and any unknown
        future fields are ignored.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        histogram = kwargs.get("utilization_histogram") or {}
        kwargs["utilization_histogram"] = {
            int(u): int(n) for u, n in histogram.items()
        }
        return cls(**kwargs)

    def with_wall_seconds(self, wall_seconds: float) -> MappingReport:
        """A copy of this (frozen) report with the cell wall clock filled in."""
        from dataclasses import replace

        return replace(self, wall_seconds=wall_seconds)

    def to_text(self) -> str:
        lines = [
            "mapping report: %s (K=%d, %s)" % (self.circuit_name, self.k, self.mapper),
            "  source: %d in / %d out, %d gates, %d edges, depth %d"
            % (
                self.num_inputs,
                self.num_outputs,
                self.source_gates,
                self.source_edges,
                self.source_depth,
            ),
            "  result: %d LUTs (%d with interface tables), depth %d"
            % (self.luts, self.luts_total, self.depth),
            "  utilization: %s (average %.2f inputs/LUT)"
            % (
                dict(sorted(self.utilization_histogram.items())),
                self.average_utilization,
            ),
        ]
        if self.seconds is not None:
            lines.append("  mapping time: %.3fs" % self.seconds)
        if self.wall_seconds is not None:
            lines.append("  cell wall time: %.3fs" % self.wall_seconds)
        if self.clbs is not None:
            lines.append(
                "  XC3000-style CLBs: %d (%.2f LUTs per block)"
                % (self.clbs, self.clb_packing_ratio or 0.0)
            )
        if self.timings:
            lines.append("  stage timings:")
            for name, seconds in sorted(
                self.timings.items(), key=lambda kv: -kv[1]
            ):
                lines.append("    %-32s %8.3fms" % (name, seconds * 1e3))
        if self.counters:
            lines.append("  counters:")
            for name, value in sorted(self.counters.items()):
                lines.append("    %-32s %d" % (name, value))
        if self.tree_luts:
            worst = sorted(self.tree_luts.items(), key=lambda kv: (-kv[1], kv[0]))
            lines.append(
                "  largest trees: %s"
                % ", ".join("%s=%d" % (tree, n) for tree, n in worst[:5])
            )
        else:
            lines.append("  largest trees: n/a (mapper records no provenance)")
        if self.depth_attribution:
            deepest = sorted(
                self.depth_attribution.items(), key=lambda kv: (-kv[1], kv[0])
            )
            lines.append(
                "  critical-path levels: %s"
                % ", ".join("%s=%d" % (tree, n) for tree, n in deepest[:5])
            )
        else:
            lines.append(
                "  critical-path levels: n/a (mapper records no provenance)"
            )
        return "\n".join(lines)


def build_report(
    network: BooleanNetwork,
    circuit: LUTCircuit,
    k: int,
    mapper: str = "chortle",
    seconds: Optional[float] = None,
    pack_blocks: bool = False,
    timings: Optional[Dict[str, float]] = None,
    counters: Optional[Dict[str, int]] = None,
) -> MappingReport:
    """Assemble a :class:`MappingReport` for a mapped circuit."""
    stats = network_stats(network)
    clbs = None
    ratio = None
    if pack_blocks:
        from repro.extensions.clb import pack_clbs

        packing = pack_clbs(circuit)
        clbs = packing.num_clbs
        ratio = round(packing.packing_ratio, 3)
    tree_luts = circuit.tree_profile() or None
    attribution = None
    if tree_luts:
        # Only meaningful with per-LUT provenance: without it every
        # critical-path level lands in the (interface) bucket.
        from repro.obs.explain import depth_attribution

        attribution = depth_attribution(circuit)[0] or None
    return MappingReport(
        circuit_name=network.name,
        k=k,
        mapper=mapper,
        num_inputs=stats.num_inputs,
        num_outputs=stats.num_outputs,
        source_gates=stats.num_gates,
        source_edges=stats.num_edges,
        source_depth=stats.depth,
        luts=circuit.cost,
        luts_total=circuit.num_luts,
        depth=circuit.depth(),
        utilization_histogram=circuit.utilization_histogram(),
        seconds=seconds,
        clbs=clbs,
        clb_packing_ratio=ratio,
        timings=timings,
        counters=counters,
        tree_luts=tree_luts,
        depth_attribution=attribution,
    )
