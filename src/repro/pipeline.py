"""Best-effort mapping pipelines: composed flows with one call.

Combines the individual passes into the flows a user actually wants:

* :func:`map_area` — sweep → strash → refactor → Chortle → LUT merge:
  the best area this repository knows how to get;
* :func:`map_delay` — the same front end, then depth-bounded mapping at
  a chosen slack, then LUT merge with the K bound (merging never
  increases depth, since a folded table takes its reader's level).

Every stage preserves functions; the composed flows are verified
end-to-end in the tests.
"""

from __future__ import annotations

from repro.core.chortle import ChortleMapper
from repro.core.lut import LUTCircuit
from repro.extensions.lutmerge import merge_luts
from repro.extensions.pareto import DepthBoundedMapper
from repro.network.network import BooleanNetwork
from repro.network.transform import strash, sweep
from repro.obs import span
from repro.opt.refactor import refactor_network


def _front_end(network: BooleanNetwork, refactor: bool) -> BooleanNetwork:
    with span("pipeline.sweep"):
        net = sweep(network)
    with span("pipeline.strash"):
        net = strash(net)
    if refactor:
        with span("pipeline.refactor"):
            net = refactor_network(net)
        with span("pipeline.strash"):
            net = strash(net)
    return net


def map_area(
    network: BooleanNetwork,
    k: int = 4,
    refactor: bool = True,
    merge: bool = True,
) -> LUTCircuit:
    """Area-focused composed flow; minimum LUTs this package can reach."""
    with span("pipeline.map_area", network=network.name, k=k) as sp:
        net = _front_end(network, refactor)
        with span("pipeline.chortle"):
            circuit = ChortleMapper(k=k).map(net)
        if merge:
            with span("pipeline.merge"):
                circuit = merge_luts(circuit, k)
        sp.set("luts", circuit.cost)
        return circuit


def map_delay(
    network: BooleanNetwork,
    k: int = 4,
    slack: int = 0,
    refactor: bool = True,
    merge: bool = True,
) -> LUTCircuit:
    """Delay-focused composed flow: minimum depth, area recovered."""
    with span("pipeline.map_delay", network=network.name, k=k) as sp:
        net = _front_end(network, refactor)
        with span("pipeline.depthbounded"):
            circuit = DepthBoundedMapper(k=k, slack=slack).map(net)
        if merge:
            before = circuit.depth()
            with span("pipeline.merge"):
                merged = merge_luts(circuit, k)
            # Folding a single-fanout table into its reader keeps the
            # reader's level, so depth cannot grow; assert the invariant
            # anyway.
            if merged.depth() <= before:
                circuit = merged
        sp.set("luts", circuit.cost)
        sp.set("depth", circuit.depth())
        return circuit
