"""Best-effort mapping pipelines: compatibility shims over the flow engine.

:func:`map_area` and :func:`map_delay` are the historical one-call entry
points for the composed flows.  Since the flow engine
(:mod:`repro.flow`) became the single place pass chains are composed and
instrumented, they are thin shims: each builds the corresponding
registered flow (``area`` / ``delay``, minus the stages its flags turn
off) and runs it.  New code should resolve flows from
:func:`repro.flow.get_registry` directly; these wrappers exist so that
``from repro import map_area`` keeps working and keeps producing the
same circuits LUT-for-LUT.

Every stage preserves functions; the composed flows are verified
end-to-end — and per-pass, in checked mode — in the tests.
"""

from __future__ import annotations

from repro.core.lut import LUTCircuit
from repro.flow.engine import FlowContext
from repro.flow.registry import area_flow, delay_flow
from repro.network.network import BooleanNetwork


def _perf_config(cache, jobs: int) -> dict:
    """Flow-context config entries for the performance layer, if any."""
    config = {}
    if cache is not None:
        config["cache"] = cache
    if jobs != 1:
        config["jobs"] = jobs
    return config


def _run(flow, network: BooleanNetwork, ctx: FlowContext) -> LUTCircuit:
    result = flow.run(network, ctx)
    if ctx.lint:
        from repro.analysis import gate

        gate(
            ctx.diagnostics,
            subject="%s flow on %r" % (flow.name, network.name),
        )
    return result


def map_area(
    network: BooleanNetwork,
    k: int = 4,
    refactor: bool = True,
    merge: bool = True,
    checked: bool = False,
    lint: bool = False,
    cache=None,
    jobs: int = 1,
) -> LUTCircuit:
    """Area-focused composed flow; minimum LUTs this package can reach.

    ``cache`` and ``jobs`` reach the chortle stage's memoized/parallel
    engine (see :mod:`repro.perf`); both are QoR-neutral.  With
    ``lint=True`` every stage's output is audited by the lint rules and
    any error-severity finding raises :class:`~repro.errors.LintError`,
    naming the emitting stage.
    """
    flow = area_flow(refactor=refactor, merge=merge)
    ctx = FlowContext(
        k=k, checked=checked, lint=lint, config=_perf_config(cache, jobs)
    )
    return _run(flow, network, ctx)


def map_delay(
    network: BooleanNetwork,
    k: int = 4,
    slack: int = 0,
    refactor: bool = True,
    merge: bool = True,
    checked: bool = False,
    lint: bool = False,
    cache=None,
    jobs: int = 1,
) -> LUTCircuit:
    """Delay-focused composed flow: minimum depth, area recovered.

    Merging is depth-guarded: a merge that would increase depth is
    rejected and counted (``pipeline.merge_rejected``) rather than
    silently discarded.  ``lint=True`` gates every stage's output on
    error-severity lint findings, as in :func:`map_area`.
    """
    flow = delay_flow(refactor=refactor, merge=merge)
    config = _perf_config(cache, jobs)
    config["slack"] = slack
    ctx = FlowContext(k=k, checked=checked, lint=lint, config=config)
    return _run(flow, network, ctx)
