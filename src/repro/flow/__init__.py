"""Declarative mapping flows: typed pass chains with uniform checking.

The flow engine is the one place the repository composes mapping
pipelines.  A *pass* transforms a network or a LUT circuit
(:mod:`repro.flow.passes`); a *flow* is a type-checked chain of passes
(:mod:`repro.flow.engine`); the *registry* names the built-in ``area``
and ``delay`` flows and parses custom comma-separated specs
(:mod:`repro.flow.registry`); and every mapper — raw or composed — is
resolvable behind one protocol (:mod:`repro.flow.mappers`)::

    from repro.flow import FlowContext, get_registry

    flow = get_registry().resolve("sweep,strash,chortle,merge")
    circuit = flow.run(network, FlowContext(k=4, checked=True))

The engine applies spans (``flow.run``, ``flow.stage.<n>.<name>``),
size-delta accounting, and optional per-pass functional-equivalence
verification uniformly; see ``docs/OBSERVABILITY.md``.
"""

from repro.flow.engine import Flow, FlowContext, StageResult
from repro.flow.mappers import (
    CORE_MAPPERS,
    FlowMapperAdapter,
    Mapper,
    MapperCapabilities,
    mapper_capabilities,
    mapper_names,
    resolve_mapper,
)
from repro.flow.passes import (
    CIRCUIT,
    NETWORK,
    CircuitPass,
    MapPass,
    NetworkPass,
    Pass,
)
from repro.flow.registry import (
    PASSES,
    FlowRegistry,
    area_cut_flow,
    area_flow,
    delay_cut_flow,
    delay_flow,
    get_registry,
)

__all__ = [
    "CIRCUIT",
    "CORE_MAPPERS",
    "CircuitPass",
    "Flow",
    "FlowContext",
    "FlowMapperAdapter",
    "FlowRegistry",
    "MapPass",
    "Mapper",
    "MapperCapabilities",
    "NETWORK",
    "NetworkPass",
    "PASSES",
    "Pass",
    "StageResult",
    "area_cut_flow",
    "area_flow",
    "delay_cut_flow",
    "delay_flow",
    "get_registry",
    "mapper_capabilities",
    "mapper_names",
    "resolve_mapper",
]
