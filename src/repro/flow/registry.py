"""Flow registry: named flows, plus parse-from-string custom flows.

The default registry ships four composed flows:

* ``area``  — sweep, strash, refactor, strash, chortle, merge — the best
  tree-DP area this package knows how to get (what
  :func:`repro.pipeline.map_area` runs);
* ``delay`` — sweep, strash, refactor, strash, depthbounded,
  merge_guarded — minimum depth with area recovered (what
  :func:`repro.pipeline.map_delay` runs);
* ``area_cut`` / ``delay_cut`` — the same front end feeding the
  priority-cut DAG-covering mapper (``cutmap`` / ``cutmap_delay``), the
  pair that escapes the forest partition's tree restriction.

Any other chain can be built from a comma-separated spec::

    resolve("sweep,strash,chortle,merge")

Specs are type-checked by the :class:`~repro.flow.engine.Flow`
constructor, so an ill-typed chain ("merge,sweep") is rejected with a
message naming the offending stages.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import FlowError
from repro.flow.engine import Flow
from repro.flow.passes import Pass, builtin_passes

#: Shared instances of the built-in passes, keyed by spec name.
PASSES: Dict[str, Pass] = builtin_passes()

FRONT_END = ("sweep", "strash", "refactor", "strash")


def _passes(names: Sequence[str]) -> List[Pass]:
    out = []
    for name in names:
        try:
            out.append(PASSES[name])
        except KeyError:
            raise FlowError(
                "unknown pass %r; valid passes: %s"
                % (name, ", ".join(sorted(PASSES)))
            ) from None
    return out


def area_flow(refactor: bool = True, merge: bool = True) -> Flow:
    """The area flow, optionally without its refactor / merge stages."""
    names = list(FRONT_END if refactor else ("sweep", "strash"))
    names.append("chortle")
    if merge:
        names.append("merge")
    return Flow(
        "area",
        _passes(names),
        description="minimum area: tree-DP mapping with LUT merging",
    )


def delay_flow(refactor: bool = True, merge: bool = True) -> Flow:
    """The delay flow, optionally without its refactor / merge stages."""
    names = list(FRONT_END if refactor else ("sweep", "strash"))
    names.append("depthbounded")
    if merge:
        names.append("merge_guarded")
    return Flow(
        "delay",
        _passes(names),
        description="minimum depth at a chosen slack, area recovered",
    )


def area_cut_flow(refactor: bool = True, merge: bool = True) -> Flow:
    """The DAG-covering area flow (priority cuts instead of tree DP)."""
    names = list(FRONT_END if refactor else ("sweep", "strash"))
    names.append("cutmap")
    if merge:
        names.append("merge")
    return Flow(
        "area_cut",
        _passes(names),
        description="minimum area: priority-cut DAG covering with LUT merging",
    )


def delay_cut_flow(refactor: bool = True, merge: bool = True) -> Flow:
    """The DAG-covering delay flow (depth-ranked cuts, guarded merge)."""
    names = list(FRONT_END if refactor else ("sweep", "strash"))
    names.append("cutmap_delay")
    if merge:
        names.append("merge_guarded")
    return Flow(
        "delay_cut",
        _passes(names),
        description="minimum depth: depth-first cut covering, merge guarded",
    )


class FlowRegistry:
    """Named flows plus spec parsing; one default instance per process."""

    def __init__(self) -> None:
        self._flows: Dict[str, Flow] = {}

    def register(self, flow: Flow, replace: bool = False) -> Flow:
        if not replace and flow.name in self._flows:
            raise FlowError("flow %r is already registered" % flow.name)
        self._flows[flow.name] = flow
        return flow

    def get(self, name: str) -> Flow:
        try:
            return self._flows[name]
        except KeyError:
            raise FlowError(
                "unknown flow %r; registered flows: %s"
                % (name, ", ".join(sorted(self._flows)))
            ) from None

    def names(self) -> List[str]:
        return sorted(self._flows)

    def flows(self) -> Iterator[Flow]:
        return iter(self._flows[name] for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._flows

    def parse(self, spec: str) -> Flow:
        """Build an ad-hoc flow from a comma-separated pass spec."""
        names = [part.strip() for part in spec.split(",") if part.strip()]
        if not names:
            raise FlowError("empty flow spec %r" % spec)
        return Flow(",".join(names), _passes(names))

    def resolve(self, spec: str) -> Flow:
        """A registered flow by name, or a custom flow parsed from a spec."""
        if spec in self._flows:
            return self._flows[spec]
        return self.parse(spec)


_REGISTRY: Optional[FlowRegistry] = None


def get_registry() -> FlowRegistry:
    """The process-wide registry, created (with the built-ins) on first use."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = FlowRegistry()
        _REGISTRY.register(area_flow())
        _REGISTRY.register(delay_flow())
        _REGISTRY.register(area_cut_flow())
        _REGISTRY.register(delay_cut_flow())
    return _REGISTRY
