"""The flow engine: typed pass chains with uniform instrumentation.

A :class:`Flow` is an ordered list of passes whose domains chain —
checked once, at construction, so a malformed composition (``merge``
before any mapper, two mappers in a row) fails before any work is done.
Running a flow threads one :class:`FlowContext` through every stage and
applies the repository's instrumentation uniformly:

* one ``flow.run`` span around the whole flow, and one
  ``flow.stage.<n>.<name>`` span per stage — the stage index makes every
  span name unique, so per-stage timing tables never aggregate two
  different stages that happen to share a pass (e.g. the two ``strash``
  stages of the area flow);
* node/LUT delta accounting: every stage span carries ``size_in`` /
  ``size_out`` attributes, and the registry histograms
  ``flow.pass.<name>.delta`` record the size change per pass;
* optional **checked mode** (``FlowContext(checked=True)``): after every
  stage the intermediate result is verified functionally equivalent to
  the flow's input network (MEC-style per-pass checking — because every
  stage is checked, the first failing check names the offending pass).

Flows are parameterless and reusable; everything run-specific lives in
the context, so the same ``area`` flow object serves every K and every
caller concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lut import LUTCircuit
from repro.errors import FlowError, VerificationError
from repro.flow.passes import CIRCUIT, NETWORK, Pass
from repro.network.network import BooleanNetwork
from repro.obs import metrics, span


@dataclass
class FlowContext:
    """Everything run-specific, threaded through every stage of a flow.

    ``config`` holds pass options (``slack``, ``split_threshold``,
    ``refactor_max_leaves``...) read via :meth:`option`; ``sinks`` are
    extra trace sinks attached to the global tracer for the duration of
    the run; ``stages`` is filled by the engine with one
    :class:`StageResult` per executed stage.
    """

    k: int = 4
    checked: bool = False
    lint: bool = False
    explain: bool = False
    verify_vectors: int = 1024
    # How checked mode verifies each stage: "sim" (historical
    # exhaustive-or-random simulation), "sat" (formal proof), or "auto"
    # (exhaustive below the input limit, SAT proof above it).
    verify_method: str = "sim"
    config: Dict[str, object] = field(default_factory=dict)
    sinks: Tuple = ()
    stages: List[StageResult] = field(default_factory=list)
    # Filled by the engine when ``lint`` is set: every diagnostic the
    # lint rules raised on any stage's output, attributed to the
    # emitting stage via its flow.stage.<n>.<name> span name.
    diagnostics: List[object] = field(default_factory=list)
    # Filled by a decision-recording map pass when ``explain`` is set: a
    # repro.obs.explain.MappingExplanation for the mapped circuit (None
    # when the flow's mapper records no decisions).
    explanation: Optional[object] = None

    def option(self, name: str, default=None):
        """A pass option from ``config``, or ``default``."""
        return self.config.get(name, default)


@dataclass(frozen=True)
class StageResult:
    """What one executed stage did: sizes, wall time, verification."""

    index: int
    name: str
    domain: str  # output domain of the pass (NETWORK or CIRCUIT)
    size_in: int
    size_out: int
    seconds: float
    checked: bool = False


def _size(value) -> int:
    """Stage size metric: gates for networks, cost-counted LUTs for circuits."""
    if isinstance(value, LUTCircuit):
        return value.cost
    return len(value)


class Flow:
    """A named, type-checked chain of passes over one shared context."""

    def __init__(self, name: str, passes: Sequence[Pass], description: str = ""):
        if not passes:
            raise FlowError("flow %r has no passes" % name)
        for i, (prev, cur) in enumerate(zip(passes, passes[1:]), start=1):
            if prev.output_domain != cur.input_domain:
                raise FlowError(
                    "flow %r: stage %d (%s) consumes a %s but stage %d (%s) "
                    "produces a %s"
                    % (
                        name,
                        i,
                        cur.name,
                        cur.input_domain,
                        i - 1,
                        prev.name,
                        prev.output_domain,
                    )
                )
        self.name = name
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.description = description

    @property
    def input_domain(self) -> str:
        return self.passes[0].input_domain

    @property
    def output_domain(self) -> str:
        return self.passes[-1].output_domain

    @property
    def is_mapping_flow(self) -> bool:
        """True when the flow maps a network all the way to a LUT circuit."""
        return self.input_domain == NETWORK and self.output_domain == CIRCUIT

    @property
    def spec(self) -> str:
        """The comma-separated pass spec that rebuilds this flow."""
        return ",".join(p.name for p in self.passes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Flow %s: %s>" % (self.name, self.spec)

    def run(self, network: BooleanNetwork, ctx: Optional[FlowContext] = None):
        """Execute the flow on ``network``; returns the final stage's output."""
        if self.input_domain != NETWORK:
            raise FlowError(
                "flow %r starts from a %s, not a network"
                % (self.name, self.input_domain)
            )
        ctx = ctx if ctx is not None else FlowContext()
        from repro.obs import get_tracer

        tracer = get_tracer()
        for sink in ctx.sinks:
            tracer.add_sink(sink)
        try:
            return self._run(network, ctx)
        finally:
            for sink in ctx.sinks:
                tracer.remove_sink(sink)

    def _run(self, network: BooleanNetwork, ctx: FlowContext):
        metrics.count("flow.runs")
        with span(
            "flow.run", flow=self.name, network=network.name, k=ctx.k,
            checked=ctx.checked,
        ) as sp:
            value = network
            for index, stage in enumerate(self.passes):
                value = self._run_stage(index, stage, value, network, ctx)
            if isinstance(value, LUTCircuit):
                sp.set("luts", value.cost)
                sp.set("depth", value.depth())
            return value

    def _run_stage(
        self,
        index: int,
        stage: Pass,
        value,
        golden: BooleanNetwork,
        ctx: FlowContext,
    ):
        size_in = _size(value)
        started = time.perf_counter()
        with span("flow.stage.%d.%s" % (index, stage.name), k=ctx.k) as sp:
            out = stage.run(value, ctx)
            size_out = _size(out)
            sp.set("size_in", size_in)
            sp.set("size_out", size_out)
        seconds = time.perf_counter() - started
        metrics.count("flow.stages_run")
        metrics.count("flow.pass.%s.runs" % stage.name)
        metrics.observe("flow.pass.%s.delta" % stage.name, size_out - size_in)
        if ctx.checked:
            self._check_stage(index, stage, out, golden, ctx)
        if ctx.lint:
            self._lint_stage(index, stage, out, ctx)
        ctx.stages.append(
            StageResult(
                index=index,
                name=stage.name,
                domain=stage.output_domain,
                size_in=size_in,
                size_out=size_out,
                seconds=seconds,
                checked=ctx.checked,
            )
        )
        return out

    def _check_stage(
        self, index: int, stage: Pass, out, golden: BooleanNetwork,
        ctx: FlowContext,
    ) -> None:
        from repro.verify import verify_equivalence, verify_network_equivalence

        try:
            if isinstance(out, LUTCircuit):
                verify_equivalence(
                    golden, out, vectors=ctx.verify_vectors,
                    method=ctx.verify_method,
                )
            else:
                verify_network_equivalence(
                    golden, out, vectors=ctx.verify_vectors,
                    method=ctx.verify_method,
                )
        except VerificationError as exc:
            raise FlowError(
                "checked flow %r: stage %d (%s) broke equivalence: %s"
                % (self.name, index, stage.name, exc)
            ) from exc
        metrics.count("flow.stages_checked")

    def _lint_stage(self, index: int, stage: Pass, out, ctx: FlowContext) -> None:
        # Imported here: repro.analysis pulls in the rule catalogue,
        # which most flow runs never need.
        from repro.analysis import LintContext, lint_circuit, lint_network

        lint_ctx = LintContext(k=ctx.k)
        if isinstance(out, LUTCircuit):
            found = lint_circuit(out, lint_ctx)
        else:
            found = lint_network(out, lint_ctx)
        stage_name = "flow.stage.%d.%s" % (index, stage.name)
        attributed = [diag.with_stage(stage_name) for diag in found]
        ctx.diagnostics.extend(attributed)
        if attributed:
            metrics.count("flow.lint_diagnostics", len(attributed))
