"""The pass contract and the built-in passes.

A *pass* is one stage of a mapping flow.  Every pass declares the domain
it consumes and the domain it produces, so a :class:`~repro.flow.engine.Flow`
can type-check stage chaining at construction time:

* :class:`NetworkPass` — ``BooleanNetwork -> BooleanNetwork`` (sweep,
  strash, refactor);
* :class:`MapPass` — ``BooleanNetwork -> LUTCircuit`` (the technology
  mappers: chortle, depthbounded, mis, flowmap, binpack);
* :class:`CircuitPass` — ``LUTCircuit -> LUTCircuit`` (LUT merging).

Passes are stateless and parameterless by design: everything run-specific
(K, slack, split threshold) is read from the
:class:`~repro.flow.engine.FlowContext` at execution time, so one pass
instance can be shared by every flow that mentions it.  Instrumentation
(spans, delta counters, checked-mode verification) is applied uniformly
by the engine, never inside a pass.
"""

from __future__ import annotations

from repro.baseline.mis_mapper import MisMapper
from repro.core.chortle import ChortleMapper
from repro.core.lut import LUTCircuit
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper
from repro.extensions.lutmerge import merge_luts
from repro.extensions.pareto import DepthBoundedMapper
from repro.network.network import BooleanNetwork
from repro.network.transform import strash, sweep
from repro.obs import metrics
from repro.opt.refactor import refactor_network

# The two value domains a pass can consume or produce.
NETWORK = "network"
CIRCUIT = "circuit"


class Pass:
    """One stage of a flow; subclasses fix the domains and implement run."""

    name: str = "pass"
    input_domain: str = NETWORK
    output_domain: str = NETWORK

    def run(self, value, ctx):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s %s: %s -> %s>" % (
            type(self).__name__,
            self.name,
            self.input_domain,
            self.output_domain,
        )


class NetworkPass(Pass):
    """A network-preserving transformation (cleanup, restructuring)."""

    input_domain = NETWORK
    output_domain = NETWORK

    def run(self, value: BooleanNetwork, ctx) -> BooleanNetwork:
        raise NotImplementedError


class MapPass(Pass):
    """Technology mapping: turns a network into a circuit of K-input LUTs."""

    input_domain = NETWORK
    output_domain = CIRCUIT

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        raise NotImplementedError


class CircuitPass(Pass):
    """A post-mapping transformation over the LUT circuit."""

    input_domain = CIRCUIT
    output_domain = CIRCUIT

    def run(self, value: LUTCircuit, ctx) -> LUTCircuit:
        raise NotImplementedError


# -- network passes ----------------------------------------------------------


class SweepPass(NetworkPass):
    """Constant propagation, buffer collapse, unreachable-node removal."""

    name = "sweep"

    def run(self, value: BooleanNetwork, ctx) -> BooleanNetwork:
        return sweep(value)


class StrashPass(NetworkPass):
    """Structural hashing: share identical gates (same op and fanins)."""

    name = "strash"

    def run(self, value: BooleanNetwork, ctx) -> BooleanNetwork:
        return strash(value)


class RefactorPass(NetworkPass):
    """Collapse-minimize-refactor every small fanout-free tree."""

    name = "refactor"

    def run(self, value: BooleanNetwork, ctx) -> BooleanNetwork:
        return refactor_network(
            value,
            max_leaves=ctx.option("refactor_max_leaves", 10),
            min_nodes=ctx.option("refactor_min_nodes", 2),
        )


# -- map passes --------------------------------------------------------------


class ChortlePass(MapPass):
    """The paper's tree-DP mapper (area-optimal per fanout-free tree).

    Honours the performance-layer context options: ``cache`` (a
    :class:`~repro.perf.memo.NodeTableCache`, or ``True`` for the shared
    one), ``jobs``, and ``executor`` — see :mod:`repro.perf`.
    """

    name = "chortle"

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        recorder = None
        if getattr(ctx, "explain", False):
            from repro.obs.explain import DecisionRecorder

            recorder = DecisionRecorder()
        mapper = ChortleMapper(
            k=ctx.k,
            split_threshold=ctx.option("split_threshold", 10),
            cache=ctx.option("cache"),
            jobs=ctx.option("jobs", 1),
            executor=ctx.option("executor", "thread"),
            recorder=recorder,
        )
        circuit = mapper.map(value)
        if recorder is not None:
            ctx.explanation = mapper.explanation
        return circuit


class CutMapPass(MapPass):
    """Priority-cut DAG covering (:class:`~repro.core.cut_mapper.CutMapper`).

    One shared class serves both objectives: ``CutMapPass()`` registers
    as ``cutmap`` (area-flow covering), ``CutMapPass(mode="depth")`` as
    ``cutmap_delay`` (depth-first covering).  Honours the context
    options ``priority_size``, ``rounds``, ``cache``, and ``jobs``, and
    records decision provenance when the context asks for it.
    """

    def __init__(self, mode: str = "area"):
        self.mode = mode
        self.name = "cutmap" if mode == "area" else "cutmap_delay"

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        from repro.core.cut_mapper import CutMapper
        from repro.core.cuts import DEFAULT_PRIORITY_SIZE

        recorder = None
        if getattr(ctx, "explain", False):
            from repro.obs.explain import DecisionRecorder

            recorder = DecisionRecorder()
        mapper = CutMapper(
            k=ctx.k,
            priority_size=ctx.option("priority_size", DEFAULT_PRIORITY_SIZE),
            mode=self.mode,
            rounds=ctx.option("rounds", 2),
            cache=ctx.option("cache"),
            jobs=ctx.option("jobs", 1),
            recorder=recorder,
        )
        circuit = mapper.map(value)
        if recorder is not None:
            ctx.explanation = mapper.explanation
        return circuit


class DepthBoundedPass(MapPass):
    """Minimum-area mapping under a depth bound (``slack`` from the context)."""

    name = "depthbounded"

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        mapper = DepthBoundedMapper(
            k=ctx.k,
            slack=ctx.option("slack", 0),
            split_threshold=ctx.option("split_threshold", 10),
        )
        return mapper.map(value)


class MisPass(MapPass):
    """The MIS II / DAGON-style library-based baseline mapper."""

    name = "mis"

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        return MisMapper(k=ctx.k).map(value)


class FlowMapPass(MapPass):
    """FlowMap: depth-optimal mapping via min-height K-feasible cuts."""

    name = "flowmap"

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        return FlowMapper(k=ctx.k).map(value)


class BinPackPass(MapPass):
    """Fast first-fit-decreasing bin-packing mapper."""

    name = "binpack"

    def run(self, value: BooleanNetwork, ctx) -> LUTCircuit:
        return BinPackMapper(k=ctx.k).map(value)


# -- circuit passes ----------------------------------------------------------


class MergePass(CircuitPass):
    """Fold single-fanout tables into their readers (area recovery).

    With ``guard_depth`` the merged circuit is kept only if its depth did
    not grow; a rejected merge is counted as ``pipeline.merge_rejected``
    (and is visible as an unchanged LUT count on the stage span) instead
    of being dropped invisibly.
    """

    def __init__(self, guard_depth: bool = False):
        self.guard_depth = guard_depth
        self.name = "merge_guarded" if guard_depth else "merge"

    def run(self, value: LUTCircuit, ctx) -> LUTCircuit:
        if not self.guard_depth:
            return merge_luts(value, ctx.k)
        before = value.depth()
        merged = merge_luts(value, ctx.k)
        # Folding a single-fanout table into its reader keeps the
        # reader's level, so depth should never grow; count (rather than
        # silently discard) the merge if the invariant ever fails.
        if merged.depth() > before:
            metrics.count("pipeline.merge_rejected")
            return value
        return merged


def builtin_passes():
    """One shared instance of every built-in pass, keyed by name."""
    passes = [
        SweepPass(),
        StrashPass(),
        RefactorPass(),
        ChortlePass(),
        CutMapPass(),
        CutMapPass(mode="depth"),
        DepthBoundedPass(),
        MisPass(),
        FlowMapPass(),
        BinPackPass(),
        MergePass(),
        MergePass(guard_depth=True),
    ]
    return {p.name: p for p in passes}
