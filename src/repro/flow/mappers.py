"""The common mapper protocol and flow-to-mapper adaptation.

Everything that maps a :class:`~repro.network.network.BooleanNetwork`
into a :class:`~repro.core.lut.LUTCircuit` — the raw algorithmic mappers
(chortle, mis, flowmap, binpack, depthbounded) and the composed flows
(area, delay, custom specs) — is exposed behind one :class:`Mapper`
protocol, so the CLI and the benchmark runner resolve every name the
same way::

    resolve_mapper("chortle", k=4)                  # raw ChortleMapper
    resolve_mapper("delay", k=4)                    # registered flow
    resolve_mapper("sweep,strash,chortle", k=4)     # ad-hoc flow spec
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Protocol, Tuple

from repro.baseline.mis_mapper import MisMapper
from repro.core.chortle import ChortleMapper
from repro.core.cut_mapper import CutMapper
from repro.core.cuts import MAX_CUT_SIZE, MIN_CUT_SIZE
from repro.core.lut import LUTCircuit
from repro.errors import FlowError
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper
from repro.extensions.pareto import DepthBoundedMapper
from repro.flow.engine import Flow, FlowContext
from repro.flow.registry import get_registry
from repro.network.network import BooleanNetwork


class Mapper(Protocol):
    """Anything that maps a boolean network into a LUT circuit."""

    name: str

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        ...  # pragma: no cover - protocol


#: Factories for the raw algorithmic mappers, keyed by spec name.  Every
#: factory takes (k, **perf_opts); mappers without a parallel/memoized
#: engine simply ignore the perf options.
CORE_MAPPERS: Dict[str, Callable[..., Mapper]] = {
    "chortle": lambda k, **opts: ChortleMapper(k=k, **opts),
    "cutmap": lambda k, **opts: CutMapper(k=k, **opts),
    "mis": lambda k, **opts: MisMapper(k=k),
    "flowmap": lambda k, **opts: FlowMapper(k=k),
    "binpack": lambda k, **opts: BinPackMapper(k=k),
    "depthbounded": lambda k, **opts: DepthBoundedMapper(k=k, slack=0),
}

#: Raw mappers that accept a ``recorder`` and expose decision provenance.
RECORDING_MAPPERS = ("chortle", "cutmap")


class MapperCapabilities(NamedTuple):
    """What one resolvable mapper name can do (the ``mappers`` listing).

    ``kind`` is ``core`` (a raw algorithmic mapper) or ``flow`` (a
    registered pass chain); ``records_provenance`` marks mappers that
    can stream decision records into the explain engine; ``cache_aware``
    marks mappers honouring the structural memo cache; ``k_range`` is
    the supported LUT-width range, ``None`` meaning unbounded above.
    """

    name: str
    kind: str
    records_provenance: bool
    cache_aware: bool
    k_range: Tuple[int, Optional[int]]
    description: str


#: Capability rows for the raw mappers (flows derive theirs from the
#: passes they contain).
_CORE_CAPABILITIES: Dict[str, MapperCapabilities] = {
    "chortle": MapperCapabilities(
        "chortle", "core", True, True, (2, None),
        "tree-DP area mapper (the paper's algorithm)",
    ),
    "cutmap": MapperCapabilities(
        "cutmap", "core", True, True, (MIN_CUT_SIZE, MAX_CUT_SIZE),
        "priority-cut DAG covering (area flow + exact-area recovery)",
    ),
    "mis": MapperCapabilities(
        "mis", "core", False, False, (2, 5),
        "MIS II library-matching baseline (kernel libraries stop at K=5)",
    ),
    "flowmap": MapperCapabilities(
        "flowmap", "core", False, False, (2, None),
        "depth-optimal max-flow min-cut mapping",
    ),
    "binpack": MapperCapabilities(
        "binpack", "core", False, False, (2, None),
        "fast first-fit-decreasing bin packing",
    ),
    "depthbounded": MapperCapabilities(
        "depthbounded", "core", False, False, (2, None),
        "minimum area under a depth bound",
    ),
}

#: Map passes that bound K from the cut enumerator.
_CUT_PASSES = ("cutmap", "cutmap_delay")


def mapper_capabilities() -> List[MapperCapabilities]:
    """Capability rows for every resolvable mapper name, sorted by name.

    Core mappers report their intrinsic capabilities; registered flows
    inherit from the passes they chain (a flow records provenance and
    honours the cache iff it contains a recording map pass, and is
    K-bounded iff it contains a cut-enumeration pass).
    """
    rows = [
        _CORE_CAPABILITIES.get(
            name,
            MapperCapabilities(name, "core", False, False, (2, None), ""),
        )
        for name in CORE_MAPPERS
    ]
    for flow in get_registry().flows():
        pass_names = {p.name for p in flow.passes}
        records = bool(pass_names & set(RECORDING_MAPPERS + _CUT_PASSES))
        k_range: Tuple[int, Optional[int]] = (
            (MIN_CUT_SIZE, MAX_CUT_SIZE)
            if pass_names & set(_CUT_PASSES)
            else (2, None)
        )
        rows.append(
            MapperCapabilities(
                flow.name, "flow", records, records, k_range,
                flow.description or "",
            )
        )
    return sorted(rows)


class FlowMapperAdapter:
    """Runs a :class:`~repro.flow.engine.Flow` through the mapper protocol."""

    def __init__(
        self,
        flow: Flow,
        k: int = 4,
        checked: bool = False,
        lint: bool = False,
        explain: bool = False,
        config: Optional[dict] = None,
        verify_method: str = "sim",
    ):
        if not flow.is_mapping_flow:
            raise FlowError(
                "flow %r ends in a %s, not a LUT circuit; a mapping flow "
                "must finish with a map or circuit pass"
                % (flow.name, flow.output_domain)
            )
        self.flow = flow
        self.name = flow.name
        self.k = k
        self.checked = checked
        self.lint = lint
        self.explain = explain
        self.config = dict(config or {})
        self.verify_method = verify_method
        # Stage-attributed lint findings from the most recent map() call
        # (empty unless constructed with lint=True).
        self.diagnostics: List[object] = []
        # Decision provenance from the most recent map() call (None
        # unless constructed with explain=True and the flow contains a
        # decision-recording map pass).
        self.explanation = None

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        ctx = FlowContext(
            k=self.k,
            checked=self.checked,
            lint=self.lint,
            explain=self.explain,
            config=self.config,
            verify_method=self.verify_method,
        )
        result = self.flow.run(network, ctx)
        self.diagnostics = list(ctx.diagnostics)
        self.explanation = ctx.explanation
        return result


def mapper_names() -> List[str]:
    """Every resolvable mapper name: raw mappers plus registered flows."""
    return sorted(set(CORE_MAPPERS) | set(get_registry().names()))


def supported_k_range(name: str) -> Tuple[int, Optional[int]]:
    """The LUT-width range the named mapper or flow supports.

    ``(lo, hi)`` with ``hi = None`` meaning unbounded above.  Unknown
    names get the permissive default — resolution will fail later with
    a clearer error than a range check could give here.
    """
    for row in mapper_capabilities():
        if row.name == name:
            return row.k_range
    return (2, None)


def supports_k(name: str, k: int) -> bool:
    """Whether the named mapper or flow can map at LUT width ``k``."""
    lo, hi = supported_k_range(name)
    return k >= lo and (hi is None or k <= hi)


def resolve_mapper(
    name: str,
    k: int,
    checked: bool = False,
    lint: bool = False,
    cache=None,
    jobs: int = 1,
    explain: bool = False,
    executor: str = "thread",
    verify_method: str = "sim",
) -> Mapper:
    """A ready-to-run mapper for a raw-mapper name, flow name, or flow spec.

    ``cache`` and ``jobs`` are the performance-layer options (structural
    node-table memoization and parallel tree mapping; see
    :mod:`repro.perf`); they reach the chortle engine whether it is
    resolved raw or as a stage of a flow, and are ignored by mappers
    without that engine.  ``executor`` selects thread or process
    workers for the raw chortle engine's parallel path; other mappers
    and flows ignore it.

    ``explain`` turns on decision provenance: a mapper that records
    decisions (raw chortle, or any flow containing the chortle pass)
    exposes a :class:`~repro.obs.explain.MappingExplanation` as its
    ``explanation`` attribute after each ``map`` call; other mappers
    leave it ``None``.

    ``verify_method`` selects how checked mode verifies each stage:
    ``"sim"``, ``"sat"``, or ``"auto"`` (see :mod:`repro.verify`).

    Raises :class:`FlowError` for names that are neither known mappers
    nor parseable flow specs, and for ``checked`` on a raw mapper (only
    flows support per-pass verification).
    """
    registry = get_registry()
    if name in CORE_MAPPERS and name not in registry:
        if checked or lint:
            mode = "checked" if checked else "lint"
            raise FlowError(
                "mapper %r is not a flow; %s mode needs a flow "
                "(registered flows: %s)"
                % (name, mode, ", ".join(registry.names()))
            )
        opts: Dict[str, object] = {"cache": cache, "jobs": jobs}
        if name == "chortle" and executor != "thread":
            opts["executor"] = executor
        if explain and name in RECORDING_MAPPERS:
            from repro.obs.explain import DecisionRecorder

            opts["recorder"] = DecisionRecorder()
        return CORE_MAPPERS[name](k, **opts)
    flow = registry.resolve(name)
    config: Dict[str, object] = {}
    if cache is not None:
        config["cache"] = cache
    if jobs != 1:
        config["jobs"] = jobs
    return FlowMapperAdapter(
        flow, k=k, checked=checked, lint=lint, explain=explain, config=config,
        verify_method=verify_method,
    )
