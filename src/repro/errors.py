"""Exception hierarchy shared across the package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetworkError(ReproError):
    """Malformed boolean network (cycles, dangling references, bad ops)."""


class BlifError(ReproError):
    """Syntactic or semantic problem in a BLIF file."""


class MappingError(ReproError):
    """The mapper was given an input it cannot handle."""


class LibraryError(ReproError):
    """Problem constructing or querying a technology library."""


class BenchError(ReproError):
    """Invalid benchmark-suite configuration (unknown mapper, circuit...)."""


class QorError(ReproError):
    """Malformed or incompatible QoR run record / baseline file."""


class FlowError(ReproError):
    """Invalid flow composition (unknown pass, domain mismatch, bad spec)."""


class PerfError(ReproError):
    """Malformed perf record/history file or unreadable trace input."""


class VerificationError(ReproError):
    """A mapped circuit is not functionally equivalent to its source."""


class SatError(ReproError):
    """Malformed CNF input or an exhausted solver resource budget."""


class LintError(ReproError):
    """Invalid lint configuration, or a gated lint run found diagnostics."""


class ExplainError(ReproError):
    """Malformed decision-provenance record or invalid explain request."""
