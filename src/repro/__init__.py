"""Chortle: technology mapping for lookup table-based FPGAs.

A from-scratch reproduction of Francis, Rose & Chung, DAC 1990, together
with every substrate the paper's evaluation depends on: a boolean-network
model, BLIF I/O, a MIS-style logic-optimization layer, a library-based
MIS II baseline mapper, synthetic MCNC-89 stand-in workloads, and
post-paper extensions (FlowMap-style depth-optimal mapping, bin-packing
decomposition, fanout replication).

Quickstart::

    from repro import ChortleMapper, NetworkBuilder, verify_equivalence

    b = NetworkBuilder("demo")
    a, c, d = b.inputs("a", "c", "d")
    b.output("y", b.or_(b.and_(a, c), ~d))
    net = b.network()

    circuit = ChortleMapper(k=4).map(net)
    verify_equivalence(net, circuit)
    print(circuit.cost, "lookup tables")
"""

from repro.errors import (
    BlifError,
    FlowError,
    LibraryError,
    MappingError,
    NetworkError,
    ReproError,
    VerificationError,
)
from repro.network import (
    BooleanNetwork,
    NetworkBuilder,
    Signal,
    network_stats,
    sweep,
)
from repro.truth import TruthTable
from repro.core import (
    LUT,
    ChortleMapper,
    LUTCircuit,
    build_forest,
    map_network,
)
from repro.blif import (
    blif_to_network,
    parse_blif,
    parse_blif_file,
    write_lut_circuit,
    write_network,
)
from repro.verify import (
    equivalent,
    verify_equivalence,
    verify_network_equivalence,
)
from repro.verilog import write_verilog
from repro.report import MappingReport, build_report
from repro.analysis import analyze_timing, analyze_wiring
from repro.draw import draw_circuit, draw_network
from repro.obs import capture, get_metrics, get_tracer, span
from repro.flow import Flow, FlowContext, get_registry, resolve_mapper
from repro.pipeline import map_area, map_delay

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "NetworkError",
    "BlifError",
    "MappingError",
    "LibraryError",
    "FlowError",
    "VerificationError",
    "TruthTable",
    "Signal",
    "BooleanNetwork",
    "NetworkBuilder",
    "network_stats",
    "sweep",
    "LUT",
    "LUTCircuit",
    "ChortleMapper",
    "map_network",
    "build_forest",
    "parse_blif",
    "parse_blif_file",
    "blif_to_network",
    "write_network",
    "write_lut_circuit",
    "verify_equivalence",
    "verify_network_equivalence",
    "equivalent",
    "write_verilog",
    "MappingReport",
    "build_report",
    "analyze_timing",
    "analyze_wiring",
    "draw_network",
    "draw_circuit",
    "Flow",
    "FlowContext",
    "get_registry",
    "resolve_mapper",
    "map_area",
    "map_delay",
    "span",
    "capture",
    "get_tracer",
    "get_metrics",
    "__version__",
]
