"""Packing lookup tables into commercial FPGA logic blocks.

The paper closes with "we would also like to extend our algorithm to
handle commercial FPGA architectures."  The canonical 1990 target was
the Xilinx XC3000 configurable logic block (CLB): one block realizes
either **any single function of up to five inputs** or **two functions
of up to four inputs each, sharing at most five distinct inputs**.

This module post-processes a mapped LUT circuit into CLBs: LUTs that can
legally share a block are paired by maximum matching over the
compatibility graph (exact via networkx for moderate sizes, greedy for
very large circuits), and everything else occupies a block alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import MappingError
from repro.core.lut import LUTCircuit


@dataclass(frozen=True)
class Clb:
    """One configured logic block: one or two LUT outputs."""

    luts: Tuple[str, ...]
    inputs: Tuple[str, ...]

    @property
    def is_paired(self) -> bool:
        return len(self.luts) == 2


@dataclass
class ClbPacking:
    """The result of packing a LUT circuit into CLBs."""

    clbs: List[Clb] = field(default_factory=list)
    num_luts: int = 0

    @property
    def num_clbs(self) -> int:
        return len(self.clbs)

    @property
    def num_pairs(self) -> int:
        return sum(1 for c in self.clbs if c.is_paired)

    @property
    def packing_ratio(self) -> float:
        """LUTs per CLB (1.0 = no pairing, 2.0 = perfect pairing)."""
        return self.num_luts / self.num_clbs if self.clbs else 0.0


class ClbPacker:
    """Pairs mapped LUTs into XC3000-style two-output logic blocks."""

    def __init__(
        self,
        pair_lut_inputs: int = 4,
        pair_shared_limit: int = 5,
        single_lut_inputs: int = 5,
        method: str = "auto",
    ):
        if method not in ("auto", "exact", "greedy"):
            raise MappingError("packing method must be auto/exact/greedy")
        self.pair_lut_inputs = pair_lut_inputs
        self.pair_shared_limit = pair_shared_limit
        self.single_lut_inputs = single_lut_inputs
        self.method = method

    # -- compatibility ------------------------------------------------------

    def can_pair(self, inputs_a: FrozenSet[str], inputs_b: FrozenSet[str]) -> bool:
        return (
            len(inputs_a) <= self.pair_lut_inputs
            and len(inputs_b) <= self.pair_lut_inputs
            and len(inputs_a | inputs_b) <= self.pair_shared_limit
        )

    def _candidate_pairs(
        self, lut_inputs: Dict[str, FrozenSet[str]]
    ) -> Set[Tuple[str, str]]:
        """All legal pairs, found without the full quadratic scan.

        Two LUTs are pairable iff they share at least
        ``|A| + |B| - pair_shared_limit`` inputs; pairs needing no sharing
        (small LUTs) are enumerated among the small-LUT subset, the rest
        through a per-signal index.
        """
        pairs: Set[Tuple[str, str]] = set()
        names = [
            n for n, ins in lut_inputs.items()
            if len(ins) <= self.pair_lut_inputs
        ]
        # Pairs that need shared inputs: find via the signal index.
        by_signal: Dict[str, List[str]] = {}
        for name in names:
            for sig in lut_inputs[name]:
                by_signal.setdefault(sig, []).append(name)
        for users in by_signal.values():
            for i, a in enumerate(users):
                for b in users[i + 1:]:
                    key = (a, b) if a < b else (b, a)
                    if key in pairs:
                        continue
                    if self.can_pair(lut_inputs[a], lut_inputs[b]):
                        pairs.add(key)
        # Pairs small enough to need no sharing at all.
        free = [
            n for n in names
            if len(lut_inputs[n]) * 2 <= self.pair_shared_limit
            or len(lut_inputs[n]) == 0
        ]
        small = [n for n in names if len(lut_inputs[n]) <= self.pair_shared_limit]
        for a in free:
            for b in small:
                if a == b:
                    continue
                key = (a, b) if a < b else (b, a)
                if key not in pairs and self.can_pair(
                    lut_inputs[a], lut_inputs[b]
                ):
                    pairs.add(key)
        return pairs

    # -- packing ---------------------------------------------------------------

    def pack(self, circuit: LUTCircuit) -> ClbPacking:
        lut_inputs: Dict[str, FrozenSet[str]] = {}
        for lut in circuit.luts():
            if len(lut.inputs) > self.single_lut_inputs:
                raise MappingError(
                    "LUT %r has %d inputs; the target block accepts at "
                    "most %d (map with a smaller K)"
                    % (lut.name, len(lut.inputs), self.single_lut_inputs)
                )
            lut_inputs[lut.name] = frozenset(lut.inputs)

        pairs = self._candidate_pairs(lut_inputs)
        matching = self._match(list(lut_inputs), pairs)

        packing = ClbPacking(num_luts=len(lut_inputs))
        used: Set[str] = set()
        for a, b in sorted(matching):
            used.add(a)
            used.add(b)
            packing.clbs.append(
                Clb(
                    luts=(a, b),
                    inputs=tuple(sorted(lut_inputs[a] | lut_inputs[b])),
                )
            )
        for name in lut_inputs:
            if name not in used:
                packing.clbs.append(
                    Clb(luts=(name,), inputs=tuple(sorted(lut_inputs[name])))
                )
        return packing

    def _match(
        self, names: List[str], pairs: Set[Tuple[str, str]]
    ) -> Set[Tuple[str, str]]:
        method = self.method
        if method == "auto":
            method = "exact" if len(names) <= 600 else "greedy"
        if method == "exact":
            try:
                import networkx as nx
            except ImportError:  # pragma: no cover - networkx is installed
                method = "greedy"
            else:
                graph = nx.Graph()
                graph.add_nodes_from(names)
                graph.add_edges_from(pairs)
                matching = nx.max_weight_matching(graph, maxcardinality=True)
                return {tuple(sorted(edge)) for edge in matching}
        # Greedy: prefer pairing the widest LUTs first (they are the
        # hardest to place later).
        degree_order = sorted(pairs)
        chosen: Set[Tuple[str, str]] = set()
        used: Set[str] = set()
        for a, b in degree_order:
            if a not in used and b not in used:
                chosen.add((a, b))
                used.add(a)
                used.add(b)
        return chosen


def pack_clbs(circuit: LUTCircuit, method: str = "auto") -> ClbPacking:
    """Pack a mapped (K<=4 for pairing) circuit into XC3000-style CLBs."""
    return ClbPacker(method=method).pack(circuit)
