"""Extensions beyond the paper (its Section 5 future-work items).

* :mod:`repro.extensions.flowmap` — depth-optimal mapping via max-flow
  min-cut labelling (the FlowMap lineage this paper seeded);
* :mod:`repro.extensions.binpack` — fast bin-packing decomposition in the
  Chortle-crf style, trading the exhaustive decomposition search for
  first-fit-decreasing packing (handles arbitrarily large fanins);
* :mod:`repro.extensions.replicate` — logic duplication at fanout nodes,
  letting shared logic be absorbed into consumer trees;
* :mod:`repro.extensions.clb` — packing mapped LUTs into XC3000-style
  two-output commercial logic blocks ("extend our algorithm to handle
  commercial FPGA architectures");
* :mod:`repro.extensions.pareto` — area/depth Pareto frontiers per tree
  and depth-bounded area mapping (the Chortle-d direction).
"""

from repro.extensions.flowmap import FlowMapper, flowmap_network
from repro.extensions.binpack import BinPackMapper, binpack_map_network
from repro.extensions.replicate import replicate_fanout_nodes, replicate_until_tree
from repro.extensions.clb import Clb, ClbPacker, ClbPacking, pack_clbs
from repro.extensions.lutmerge import merge_luts
from repro.extensions.pareto import (
    DepthBoundedMapper,
    ParetoTreeMapper,
    depth_bounded_map,
)

__all__ = [
    "FlowMapper",
    "flowmap_network",
    "BinPackMapper",
    "binpack_map_network",
    "replicate_fanout_nodes",
    "replicate_until_tree",
    "Clb",
    "ClbPacker",
    "ClbPacking",
    "pack_clbs",
    "ParetoTreeMapper",
    "DepthBoundedMapper",
    "depth_bounded_map",
    "merge_luts",
]
