"""Area-depth Pareto mapping and depth-bounded area optimization.

The paper's follow-up line (Chortle-d, FlowMap area recovery) trades
lookup tables for circuit depth.  This module generalizes the Section
3.1 dynamic program from a single cost scalar to a Pareto frontier of
``(lookup tables, arrival time)`` pairs per ``minmap(n, U)`` entry, with
tree leaves carrying real arrival times so frontiers compose across the
forest.

Two user-facing tools result:

* :class:`ParetoTreeMapper` — the full area/depth trade-off curve of one
  fanout-free tree;
* :class:`DepthBoundedMapper` — a two-pass network mapper: pass one
  labels every tree root with its minimum achievable arrival (depth
  optimal among forest-respecting mappings), pass two walks the forest
  in reverse, picking the *cheapest* candidate meeting each tree's
  required time for a global depth bound ``optimal + slack``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.core.substrate import emit_candidate as _emit_candidate, wire_outputs
from repro.core.forest import Tree, build_forest, check_forest
from repro.core.lut import LUTCircuit
from repro.core.tree_mapper import MapCand
from repro.network.network import BooleanNetwork
from repro.network.transform import sweep

# A frontier entry inside the DP: (cost, arrival-of-inputs, chain).
_Entry = Tuple[int, int, Optional[tuple]]


def _pareto_insert(entries: List[_Entry], item: _Entry) -> None:
    """Keep only nondominated (cost, arrival) points."""
    cost, arrival, _ = item
    for other in entries:
        if other[0] <= cost and other[1] <= arrival:
            return
    entries[:] = [
        e for e in entries if not (cost <= e[0] and arrival <= e[1])
    ]
    entries.append(item)


def _pareto_sorted(entries: List[_Entry]) -> List[_Entry]:
    return sorted(entries, key=lambda e: (e[0], e[1]))


def _chain_to_tuple(chain) -> tuple:
    placements = []
    while chain is not None:
        placements.append(chain[0])
        chain = chain[1]
    return tuple(placements)


def candidate_leaf_levels(cand: MapCand) -> Dict[str, int]:
    """LUT levels from each external leaf up through the candidate root."""
    levels: Dict[str, int] = {}
    # Candidate chains follow tree depth; walk them on an explicit
    # stack.  Only the per-leaf max survives, so visit order is free.
    stack: List[Tuple[MapCand, int]] = [(cand, 0)]
    while stack:
        c, base = stack.pop()
        for placement in c.placements:
            kind = placement[0]
            if kind == "ext":
                depth = base + 1
                name = placement[1]
                if depth > levels.get(name, 0):
                    levels[name] = depth
            elif kind == "wire":
                stack.append((placement[1], base + 1))
            else:  # merged: same LUT level as this root
                stack.append((placement[1], base))
    return levels


class ParetoTreeMapper:
    """Pareto-frontier variant of the Section 3.1 dynamic program."""

    def __init__(self, k: int, split_threshold: int = 10, max_frontier: int = 24):
        if k < 2:
            raise MappingError("K must be at least 2, got %d" % k)
        self.k = k
        self.split_threshold = split_threshold
        self.max_frontier = max_frontier

    # Tables here hold, per utilization u, a frontier list of MapCands.

    def map_tree_frontier(
        self,
        network: BooleanNetwork,
        tree: Tree,
        leaf_arrival: Optional[Dict[str, int]] = None,
    ) -> List[MapCand]:
        """Nondominated (cost, arrival) mappings of the tree root."""
        leaf_arrival = leaf_arrival or {}
        tables: Dict[str, List[List[MapCand]]] = {}
        for name in network.topological_order():
            if name not in tree.internal:
                continue
            node = network.node(name)
            items: List = []
            for sig in node.fanins:
                if sig.name in tables:
                    items.append((tables[sig.name], sig.inv, None))
                else:
                    items.append((None, sig.inv, sig.name))
            tables[name] = self._node_frontier(node.op, items, leaf_arrival)
        frontier = tables[tree.root][self.k]
        if not frontier:
            raise MappingError("no feasible mapping for tree %r" % tree.root)
        return sorted(frontier, key=lambda c: (c.cost, c.input_depth))

    # -- node computation ------------------------------------------------------

    def _node_frontier(
        self, op: str, items: List, leaf_arrival: Dict[str, int]
    ) -> List[List[MapCand]]:
        if len(items) > self.split_threshold:
            half = len(items) // 2
            left = self._wrap(op, items[:half], leaf_arrival)
            right = self._wrap(op, items[half:], leaf_arrival)
            return self._subset_dp(op, [left, right], leaf_arrival)
        return self._subset_dp(op, items, leaf_arrival)

    def _wrap(self, op: str, items: List, leaf_arrival: Dict[str, int]):
        if len(items) == 1:
            return items[0]
        table = self._node_frontier(op, items, leaf_arrival)
        return (table, False, None)

    def _item_options(
        self, item, leaf_arrival: Dict[str, int]
    ) -> List[Tuple[int, int, int, tuple]]:
        """(consumed, cost, input-arrival-contribution, placement)."""
        table, inv, ext_name = item
        options: List[Tuple[int, int, int, tuple]] = []
        if ext_name is not None:
            arrival = leaf_arrival.get(ext_name, 0)
            options.append((1, 0, arrival, ("ext", ext_name, inv)))
            return options
        for cand in table[self.k]:
            options.append(
                (1, cand.cost, cand.input_depth + 1, ("wire", cand, inv))
            )
        for uc in range(2, self.k + 1):
            for cand in table[uc]:
                options.append(
                    (uc, cand.cost - 1, cand.input_depth, ("merged", cand, inv))
                )
        return options

    def _subset_dp(
        self, op: str, items: List, leaf_arrival: Dict[str, int]
    ) -> List[List[MapCand]]:
        k = self.k
        n = len(items)
        full = (1 << n) - 1

        F: Dict[int, List[List[_Entry]]] = {0: [[(0, 0, None)]] + [[] for _ in range(k)]}
        sub: Dict[int, List[List[MapCand]]] = {}

        masks_by_popcount: List[List[int]] = [[] for _ in range(n + 1)]
        for mask in range(1, full + 1):
            masks_by_popcount[bin(mask).count("1")].append(mask)

        for p in range(1, n + 1):
            for mask in masks_by_popcount[p]:
                if p >= 2:
                    sub[mask] = self._make_table(op, items, mask, F, sub, leaf_arrival)
                F[mask] = self._combine(
                    op, items, mask, F, sub, leaf_arrival, allow_whole_block=True
                )
        return sub[full]

    def _combine(
        self, op, items, mask, F, sub, leaf_arrival, allow_whole_block
    ) -> List[List[_Entry]]:
        k = self.k
        best: List[List[_Entry]] = [[] for _ in range(k + 1)]
        first_bit = mask & -mask
        first_idx = first_bit.bit_length() - 1
        rest0 = mask ^ first_bit

        def consider(consumed, cost, arrival, placement, rest_mask):
            rest_table = F[rest_mask]
            for u in range(consumed, k + 1):
                for rc, ra, rchain in rest_table[u - consumed]:
                    _pareto_insert(
                        best[u],
                        (
                            cost + rc,
                            arrival if arrival > ra else ra,
                            (placement, rchain),
                        ),
                    )

        for consumed, cost, arrival, placement in self._item_options(
            items[first_idx], leaf_arrival
        ):
            consider(consumed, cost, arrival, placement, rest0)

        t = rest0
        while t:
            block = first_bit | t
            if block != mask or allow_whole_block:
                for cand in sub[block][k]:
                    consider(
                        1,
                        cand.cost,
                        cand.input_depth + 1,
                        ("wire", cand, False),
                        mask ^ block,
                    )
            t = (t - 1) & rest0

        # Monotonize across u and cap frontier sizes.
        for u in range(1, k + 1):
            for entry in best[u - 1]:
                _pareto_insert(best[u], entry)
        for u in range(k + 1):
            if len(best[u]) > self.max_frontier:
                best[u] = _pareto_sorted(best[u])[: self.max_frontier]
        return best

    def _make_table(
        self, op, items, mask, F, sub, leaf_arrival
    ) -> List[List[MapCand]]:
        dist = self._combine(
            op, items, mask, F, sub, leaf_arrival, allow_whole_block=False
        )
        table: List[List[MapCand]] = [[] for _ in range(self.k + 1)]
        for u in range(2, self.k + 1):
            for cost, arrival, chain in _pareto_sorted(dist[u]):
                table[u].append(
                    MapCand(
                        cost + 1, op, _chain_to_tuple(chain), input_depth=arrival
                    )
                )
        return table


class DepthBoundedMapper:
    """Minimum-area mapping under a global LUT-depth bound.

    ``slack=0`` yields the minimum depth achievable without crossing
    fanout boundaries, with area recovered wherever the critical path
    allows; larger slacks relax toward Chortle's pure-area optimum.
    """

    name = "depthbounded"  # spec name under the common Mapper protocol

    def __init__(
        self,
        k: int = 4,
        slack: int = 0,
        split_threshold: int = 10,
        preprocess: bool = True,
        max_frontier: int = 24,
    ):
        self.k = k
        self.slack = slack
        self.preprocess = preprocess
        self._pareto = ParetoTreeMapper(
            k, split_threshold=split_threshold, max_frontier=max_frontier
        )

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        net = sweep(network) if self.preprocess else network
        net.validate()

        forest = build_forest(net)
        check_forest(forest)

        # Pass 1: optimal arrival labels + per-tree frontiers.
        arrival: Dict[str, int] = {name: 0 for name in net.inputs}
        frontiers: Dict[str, List[MapCand]] = {}
        for tree in forest.trees:
            frontier = self._pareto.map_tree_frontier(net, tree, arrival)
            frontiers[tree.root] = frontier
            arrival[tree.root] = min(c.input_depth + 1 for c in frontier)

        gate_arrivals = [
            arrival[sig.name]
            for sig in net.outputs.values()
            if net.node(sig.name).is_gate
        ]
        bound = (max(gate_arrivals) if gate_arrivals else 0) + self.slack

        # Pass 2: reverse-topological selection under required times.
        required: Dict[str, int] = {}
        for sig in net.outputs.values():
            if net.node(sig.name).is_gate:
                required[sig.name] = min(required.get(sig.name, bound), bound)
        chosen: Dict[str, MapCand] = {}
        for tree in reversed(forest.trees):
            req = required.get(tree.root, bound)
            candidate = None
            for cand in frontiers[tree.root]:  # cost-ascending
                if cand.input_depth + 1 <= req:
                    candidate = cand
                    break
            if candidate is None:
                raise MappingError(
                    "tree %r cannot meet its required time %d"
                    % (tree.root, req)
                )
            chosen[tree.root] = candidate
            for leaf, levels in candidate_leaf_levels(candidate).items():
                if leaf in arrival and net.node(leaf).is_gate:
                    limit_time = req - levels
                    if limit_time < required.get(leaf, bound):
                        required[leaf] = limit_time

        circuit = LUTCircuit("%s_db_k%d" % (net.name, self.k))
        for name in net.inputs:
            circuit.add_input(name)
        for tree in forest.trees:
            _emit_candidate(chosen[tree.root], circuit, tree.root)
        wire_outputs(net, circuit)
        circuit.validate(self.k)
        return circuit

    def optimal_depth(self, network: BooleanNetwork) -> int:
        """Minimum forest-respecting LUT depth (pass 1 labels only)."""
        net = sweep(network) if self.preprocess else network
        forest = build_forest(net)
        arrival: Dict[str, int] = {name: 0 for name in net.inputs}
        for tree in forest.trees:
            frontier = self._pareto.map_tree_frontier(net, tree, arrival)
            arrival[tree.root] = min(c.input_depth + 1 for c in frontier)
        gate_arrivals = [
            arrival[sig.name]
            for sig in net.outputs.values()
            if net.node(sig.name).is_gate
        ]
        return max(gate_arrivals) if gate_arrivals else 0


def depth_bounded_map(network: BooleanNetwork, k: int = 4, slack: int = 0) -> LUTCircuit:
    """Convenience wrapper around :class:`DepthBoundedMapper`."""
    return DepthBoundedMapper(k=k, slack=slack).map(network)
