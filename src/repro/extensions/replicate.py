"""Logic duplication at fanout nodes (Section 5 future work).

Chortle's forest partition cuts every multi-fanout edge, so logic feeding
several consumers always costs its own lookup tables.  Duplicating a
small multi-fanout gate gives each consumer a private copy that can be
absorbed into the consumer's tree (and often into a single LUT).  This
pass performs that duplication structurally; whether it pays off is the
mapper's problem, which is exactly what the ablation benchmark measures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.network.network import BooleanNetwork, Signal


def replicate_fanout_nodes(
    network: BooleanNetwork,
    max_fanin: int = 4,
    max_fanout: int = 4,
    rounds: int = 1,
) -> BooleanNetwork:
    """Duplicate small multi-fanout gates, one private copy per consumer.

    A gate is duplicated when it has at most ``max_fanin`` fanins and at
    most ``max_fanout`` gate consumers (wider sharing usually makes
    duplication a loss).  Gates that drive output ports keep their
    original node for the port.  ``rounds`` > 1 repeats the pass, peeling
    multi-level shared cones one level at a time.
    """
    net = network
    for _ in range(rounds):
        net = _replicate_once(net, max_fanin, max_fanout)
    return net


def replicate_until_tree(
    network: BooleanNetwork, max_growth: float = 4.0
) -> BooleanNetwork:
    """Duplicate shared gates until the network is (nearly) a forest.

    This is the DAGON-style "map the DAG as trees by duplicating fanout
    cones" strategy the paper contrasts with its fanout partition.  Gate
    count may grow geometrically on deeply shared logic, so duplication
    stops once the network exceeds ``max_growth`` times its original
    size; whatever sharing remains is handled by the normal forest
    partition.
    """
    if max_growth < 1.0:
        raise ValueError("max_growth must be at least 1.0")
    net = network
    budget = max(1, int(network.num_gates * max_growth))
    for _ in range(64):  # far beyond any realistic sharing depth
        if net.num_gates > budget:
            break
        grown = _replicate_once(net, max_fanin=10**9, max_fanout=10**9)
        if grown.num_gates <= net.num_gates:
            break
        net = grown
    return net


def _replicate_once(
    network: BooleanNetwork, max_fanin: int, max_fanout: int
) -> BooleanNetwork:
    consumers: Dict[str, List[str]] = network.consumers()
    port_driven = {sig.name for sig in network.outputs.values()}

    to_split = set()
    for node in network.gates():
        uses = consumers[node.name]
        total_uses = len(uses) + (1 if node.name in port_driven else 0)
        if total_uses < 2:
            continue
        if len(uses) < 2 and node.name not in port_driven:
            continue
        if node.fanin_count > max_fanin or len(uses) > max_fanout:
            continue
        if len(uses) == 0:
            continue
        to_split.add(node.name)

    if not to_split:
        return network.copy()

    out = BooleanNetwork(network.name)
    for name in network.topological_order():
        node = network.node(name)
        if node.op == "input":
            out.add_input(name)
        elif node.is_gate:
            out.add_gate(name, node.op, node.fanins)
        else:
            out.add_const(name, node.op == "const1")

    # Give each gate-consumer of a split node its own copy.
    for name in sorted(to_split):
        node = network.node(name)
        for consumer in consumers[name]:
            copy_name = out.fresh_name("%s_dup" % name)
            out.add_gate(copy_name, node.op, node.fanins)
            cnode = out.node(consumer)
            new_fanins = [
                Signal(copy_name, s.inv) if s.name == name else s
                for s in cnode.fanins
            ]
            out.replace_node(consumer, cnode.op, new_fanins)

    for port, sig in network.outputs.items():
        out.set_output(port, sig)

    from repro.network.transform import remove_unreachable

    result = remove_unreachable(out)
    result.validate()
    return result
