"""Depth-optimal LUT mapping via max-flow min-cut labelling (FlowMap).

Chortle minimizes area and leaves delay untouched; the paper's closing
line ("extend our algorithm to handle commercial FPGA architectures")
points at the research line that produced FlowMap (Cong & Ding, 1994),
which computes, for a K-bounded network, a mapping with provably minimum
LUT depth.  This module implements that algorithm from scratch:

1. the network is decomposed into a two-input subject graph (K-bounded
   for every K >= 2);
2. labels are computed in topological order: ``label(t)`` is the minimum,
   over K-feasible cuts ``(X, X')`` of the cone of ``t``, of
   ``max(label(x) for x in cut) + (0 or 1)``; the paper's key theorem
   reduces this to one max-flow check per node — collapse ``t`` with all
   cone nodes labelled ``p`` (the max fanin label) into a sink and test
   whether a cut of at most K node-disjoint paths separates it from the
   inputs;
3. the mapping phase walks from the outputs, realizing each needed node's
   recorded cut as one LUT.

Flow is computed with BFS augmentation on a node-split graph; at most
K+1 augmentations are needed per node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import MappingError
from repro.baseline.subject import decompose_to_binary
from repro.core.lut import LUTCircuit
from repro.core.substrate import cone_truth_table, wire_outputs
from repro.network.network import BooleanNetwork
from repro.network.transform import sweep
from repro.truth.truthtable import TruthTable


class FlowMapper:
    """Depth-optimal technology mapper for K-input lookup tables."""

    name = "flowmap"  # spec name under the common Mapper protocol

    def __init__(self, k: int = 4, preprocess: bool = True):
        if k < 2:
            raise MappingError("K must be at least 2, got %d" % k)
        self.k = k
        self.preprocess = preprocess

    # -- public API ------------------------------------------------------------

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        net = sweep(network) if self.preprocess else network
        net = decompose_to_binary(net)
        net.validate()

        labels, cuts = self._label_phase(net)
        circuit = self._mapping_phase(net, cuts)
        wire_outputs(net, circuit)
        circuit.validate(self.k)
        return circuit

    def optimal_depth(self, network: BooleanNetwork) -> int:
        """The minimum achievable LUT depth (the label of the deepest output)."""
        net = sweep(network) if self.preprocess else network
        net = decompose_to_binary(net)
        labels, _ = self._label_phase(net)
        depths = [labels[sig.name] for sig in net.outputs.values()]
        return max(depths) if depths else 0

    # -- phase 1: labelling --------------------------------------------------------

    def _label_phase(
        self, net: BooleanNetwork
    ) -> Tuple[Dict[str, int], Dict[str, Tuple[str, ...]]]:
        labels: Dict[str, int] = {}
        cuts: Dict[str, Tuple[str, ...]] = {}
        fanins: Dict[str, List[str]] = {}
        for name in net.topological_order():
            node = net.node(name)
            if not node.is_gate:
                labels[name] = 0
                continue
            fanins[name] = [s.name for s in node.fanins]
            p = max(labels[s.name] for s in node.fanins)
            if p == 0:
                # All fanins are primary inputs; the trivial cut has height 0.
                labels[name] = 1
                cuts[name] = tuple(dict.fromkeys(fanins[name]))
                continue
            cut = self._min_height_cut(net, name, p, labels)
            if cut is not None:
                labels[name] = p
                cuts[name] = cut
            else:
                labels[name] = p + 1
                cuts[name] = tuple(dict.fromkeys(fanins[name]))
        return labels, cuts

    def _cone(self, net: BooleanNetwork, target: str) -> Set[str]:
        cone: Set[str] = set()
        stack = [target]
        while stack:
            cur = stack.pop()
            if cur in cone:
                continue
            cone.add(cur)
            for sig in net.node(cur).fanins:
                stack.append(sig.name)
        return cone

    def _min_height_cut(
        self, net: BooleanNetwork, target: str, p: int, labels: Dict[str, int]
    ) -> Optional[Tuple[str, ...]]:
        """A K-feasible cut of height p-1, or None if none exists.

        Builds the node-split flow network of the cone of ``target`` with
        ``target`` and every cone node of label p collapsed into the sink,
        and primary-input cone nodes collapsed into the source.
        """
        from collections import deque

        cone = self._cone(net, target)
        sink_side = {n for n in cone if n == target or labels[n] >= p}
        middle = sorted(cone - sink_side)  # gates of label < p and PIs

        # Node indices: source=0, sink=1, then (in,out) pairs for middle
        # nodes.  Every cut-candidate node — including primary inputs — is
        # split with a unit-capacity internal edge.
        index: Dict[str, int] = {}
        next_id = 2
        for n in middle:
            index[n] = next_id  # in-node; out-node is next_id + 1
            next_id += 2
        INF = 1 << 30

        adj: List[List[int]] = [[] for _ in range(next_id)]
        cap: Dict[Tuple[int, int], int] = {}

        def add_edge(u: int, v: int, c: int) -> None:
            if (u, v) not in cap:
                adj[u].append(v)
                adj[v].append(u)
                cap[(u, v)] = 0
                cap[(v, u)] = cap.get((v, u), 0)
            cap[(u, v)] += c

        for n in middle:
            add_edge(index[n], index[n] + 1, 1)
            if not net.node(n).is_gate:
                add_edge(0, index[n], INF)
        for n in cone:
            node = net.node(n)
            if not node.is_gate:
                continue
            v = 1 if n in sink_side else index[n]
            for sig in node.fanins:
                u = 1 if sig.name in sink_side else index[sig.name] + 1
                if u != v:
                    add_edge(u, v, INF)

        # BFS max-flow (unit augmentations), stop once flow exceeds K.
        flow = 0
        while flow <= self.k:
            parent: Dict[int, int] = {0: 0}
            queue = deque([0])
            while queue and 1 not in parent:
                u = queue.popleft()
                for v in adj[u]:
                    if v not in parent and cap.get((u, v), 0) > 0:
                        parent[v] = u
                        queue.append(v)
            if 1 not in parent:
                break
            v = 1
            while v != 0:
                u = parent[v]
                cap[(u, v)] -= 1
                cap[(v, u)] = cap.get((v, u), 0) + 1
                v = u
            flow += 1
        if flow > self.k:
            return None

        # Min cut: nodes whose in-node is residually reachable from the
        # source but whose out-node is not.
        reachable: Set[int] = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in reachable and cap.get((u, v), 0) > 0:
                    reachable.add(v)
                    queue.append(v)
        cut_nodes = [
            n
            for n in middle
            if index[n] in reachable and index[n] + 1 not in reachable
        ]
        if len(cut_nodes) > self.k or not cut_nodes:
            raise MappingError(
                "internal error: extracted cut of %d signals for K=%d"
                % (len(cut_nodes), self.k)
            )
        return tuple(cut_nodes)

    # -- phase 2: mapping ------------------------------------------------------------

    def _mapping_phase(
        self, net: BooleanNetwork, cuts: Dict[str, Tuple[str, ...]]
    ) -> LUTCircuit:
        circuit = LUTCircuit("%s_fm_k%d" % (net.name, self.k))
        for name in net.inputs:
            circuit.add_input(name)

        # Post-order over the chosen-cut DAG on an explicit stack (the
        # cut network can be as deep as the subject graph): each node's
        # cut leaves are emitted left to right before the node itself,
        # the same table order the recursive formulation produced.
        for sig in net.outputs.values():
            if not net.node(sig.name).is_gate:
                continue
            stack: List[Tuple[str, bool]] = [(sig.name, False)]
            while stack:
                name, ready = stack.pop()
                if name in circuit:
                    continue
                cut = cuts[name]
                if ready:
                    tt = _cone_function(net, name, cut)
                    circuit.add_lut(name, cut, tt)
                    continue
                stack.append((name, True))
                for leaf in reversed(cut):
                    if net.node(leaf).is_gate and leaf not in circuit:
                        stack.append((leaf, False))
        return circuit


def _cone_function(
    net: BooleanNetwork, target: str, cut: Tuple[str, ...]
) -> TruthTable:
    """Evaluate the cone of ``target`` over the cut signals, bit-parallel.

    Backward-compatible wrapper over the shared substrate's
    :func:`~repro.core.substrate.cone_truth_table`.
    """
    return cone_truth_table(net, target, cut)


def flowmap_network(network: BooleanNetwork, k: int = 4) -> LUTCircuit:
    """Convenience wrapper around :class:`FlowMapper`."""
    return FlowMapper(k=k).map(network)
