"""Bin-packing tree mapping in the Chortle-crf style.

The paper bounds its exhaustive decomposition search at fanin 10 and
lists "nodes with large fanin" as future work.  The follow-up work
(Chortle-crf) replaced the exhaustive search with first-fit-decreasing
bin packing of fanin contributions into K-input bins; this module
implements that strategy on top of the same forest partition and
emission machinery as the exact mapper, so the two can be compared
directly (see the ablation benchmarks): the packer is much faster and
handles any fanin, at a usually-small area penalty.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import MappingError
from repro.core.substrate import emit_candidate as _emit_candidate, wire_outputs
from repro.core.forest import build_forest, check_forest
from repro.core.lut import LUTCircuit
from repro.core.tree_mapper import MapCand, placement_depth
from repro.network.network import BooleanNetwork
from repro.network.transform import sweep


def _make_cand(cost: int, op: str, placements: Tuple[tuple, ...]) -> MapCand:
    depth = max((placement_depth(p) for p in placements), default=0)
    return MapCand(cost, op, placements, input_depth=depth)


def candidate_utilization(cand: MapCand) -> int:
    """Input wires of a candidate's root LUT (merged children included)."""
    total = 0
    for placement in cand.placements:
        if placement[0] == "merged":
            total += candidate_utilization(placement[1])
        else:
            total += 1
    return total


class _Bin:
    """One lookup table being filled: placements plus used capacity."""

    __slots__ = ("placements", "used", "cost")

    def __init__(self):
        self.placements: List[tuple] = []
        self.used = 0
        self.cost = 0  # LUTs referenced by the contents (excl. this bin)


# A packable item: (width, cost_carried, placement).
_Item = Tuple[int, int, tuple]


class BinPackMapper:
    """First-fit-decreasing packing of fanin items into K-input LUTs."""

    name = "binpack"  # spec name under the common Mapper protocol

    def __init__(self, k: int = 4, preprocess: bool = True):
        if k < 2:
            raise MappingError("K must be at least 2, got %d" % k)
        self.k = k
        self.preprocess = preprocess

    def map(self, network: BooleanNetwork) -> LUTCircuit:
        net = sweep(network) if self.preprocess else network
        net.validate()

        forest = build_forest(net)
        check_forest(forest)
        circuit = LUTCircuit("%s_bp_k%d" % (net.name, self.k))
        for name in net.inputs:
            circuit.add_input(name)

        for tree in forest.trees:
            cand = self._map_tree(net, tree)
            _emit_candidate(cand, circuit, tree.root)
        wire_outputs(net, circuit)
        circuit.validate(self.k)
        return circuit

    # -- tree mapping -------------------------------------------------------

    def _map_tree(self, net: BooleanNetwork, tree) -> MapCand:
        cands: Dict[str, MapCand] = {}
        for name in net.topological_order():
            if name not in tree.internal:
                continue
            node = net.node(name)
            items: List[_Item] = []
            for sig in node.fanins:
                if sig.name in cands:
                    child = cands[sig.name]
                    width = candidate_utilization(child)
                    if width <= self.k:
                        # Mergeable: the child's root LUT folds into a bin.
                        items.append(
                            (width, child.cost - 1, ("merged", child, sig.inv))
                        )
                    else:
                        items.append((1, child.cost, ("wire", child, sig.inv)))
                else:
                    items.append((1, 0, ("ext", sig.name, sig.inv)))
            cands[name] = self._pack(node.op, items)
        return cands[tree.root]

    def _ffd(self, items: List[_Item]) -> List[_Bin]:
        """First-fit-decreasing placement into K-capacity bins."""
        bins: List[_Bin] = []
        for width, cost, placement in sorted(
            items, key=lambda item: item[0], reverse=True
        ):
            if width > self.k:
                raise MappingError(
                    "item of width %d cannot fit a K=%d bin" % (width, self.k)
                )
            target = None
            for candidate in bins:
                if candidate.used + width <= self.k:
                    target = candidate
                    break
            if target is None:
                target = _Bin()
                bins.append(target)
            target.used += width
            target.cost += cost
            target.placements.append(placement)
        return bins

    def _pack(self, op: str, items: List[_Item]) -> MapCand:
        """Pack items into bins, then connect bins down to a single root.

        Connection mirrors Chortle-crf's maximum-share idea: two bins
        whose contents fit together are merged outright (saving a LUT);
        otherwise a bin output is wired into another bin's free slot;
        only when every bin is full is a fresh collector bin opened.
        """
        bins = self._ffd(items)
        while len(bins) > 1:
            bins.sort(key=lambda b: b.used)
            a, b = bins[0], bins[1]
            if a.used + b.used <= self.k:
                # Merge contents: one LUT instead of two.
                b.placements.extend(a.placements)
                b.used += a.used
                b.cost += a.cost
                bins.pop(0)
                continue
            receiver = min(bins, key=lambda x: x.used)
            if receiver.used < self.k:
                # Wire the fullest other bin's output into the free slot.
                donor = max(
                    (x for x in bins if x is not receiver),
                    key=lambda x: x.used,
                )
                cand = _make_cand(donor.cost + 1, op, tuple(donor.placements))
                receiver.placements.append(("wire", cand, False))
                receiver.used += 1
                receiver.cost += cand.cost
                bins.remove(donor)
                continue
            # Every bin is full: open a collector over up to K bin outputs.
            collector = _Bin()
            take = bins[: self.k]
            bins = bins[self.k:]
            for donor in take:
                cand = _make_cand(donor.cost + 1, op, tuple(donor.placements))
                collector.placements.append(("wire", cand, False))
                collector.used += 1
                collector.cost += cand.cost
            bins.append(collector)

        root = bins[0]
        return _make_cand(root.cost + 1, op, tuple(root.placements))


def binpack_map_network(network: BooleanNetwork, k: int = 4) -> LUTCircuit:
    """Convenience wrapper around :class:`BinPackMapper`."""
    return BinPackMapper(k=k).map(network)
