"""Post-mapping LUT compaction: absorb single-fanout tables downstream.

A standard cleanup after any LUT mapper: if table ``v`` feeds exactly
one other table ``w`` and the merged support ``inputs(w) \\ {v} ∪
inputs(v)`` still fits K inputs, ``v`` folds into ``w``'s truth table
and disappears.  On Chortle's output this almost never fires (the DP
already absorbed everything absorbable *inside* trees), which the tests
assert; on FlowMap or bin-packing output it recovers real area — and it
also merges across the fanout boundaries Chortle's forest partition
cannot see, occasionally beating the per-tree optimum.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.lut import LUT, LUTCircuit
from repro.truth.truthtable import TruthTable


def _merge_tables(outer: LUT, inner: LUT, k: int) -> Optional[LUT]:
    """Fold ``inner`` into ``outer`` (which reads it); None if > k inputs."""
    new_inputs: List[str] = []
    for name in outer.inputs:
        if name != inner.name and name not in new_inputs:
            new_inputs.append(name)
    for name in inner.inputs:
        if name not in new_inputs:
            new_inputs.append(name)
    if len(new_inputs) > k:
        return None

    n = len(new_inputs)
    position = {name: j for j, name in enumerate(new_inputs)}
    bits = 0
    for m in range(1 << n):
        inner_index = 0
        for j, name in enumerate(inner.inputs):
            if (m >> position[name]) & 1:
                inner_index |= 1 << j
        inner_value = inner.tt.value(inner_index)
        outer_index = 0
        for j, name in enumerate(outer.inputs):
            value = inner_value if name == inner.name else (m >> position[name]) & 1
            if value:
                outer_index |= 1 << j
        if outer.tt.value(outer_index):
            bits |= 1 << m
    return LUT(outer.name, tuple(new_inputs), TruthTable(n, bits))


def merge_luts(circuit: LUTCircuit, k: int, protect_outputs: bool = True) -> LUTCircuit:
    """Return a compacted copy of the circuit (same outputs, fewer LUTs).

    Only single-fanout tables are folded, so no logic is duplicated.
    With ``protect_outputs`` (default), tables whose wire drives an
    output port are kept so the port's named signal survives.
    """
    luts: Dict[str, LUT] = {lut.name: lut for lut in circuit.luts()}
    output_wires: Set[str] = set(circuit.outputs.values())

    changed = True
    while changed:
        changed = False
        fanout: Dict[str, List[str]] = {name: [] for name in luts}
        for lut in luts.values():
            for src in lut.inputs:
                if src in fanout:
                    fanout[src].append(lut.name)
        for name in list(luts):
            readers = fanout.get(name, [])
            if len(readers) != 1:
                continue
            if protect_outputs and name in output_wires:
                continue
            reader = luts[readers[0]]
            merged = _merge_tables(reader, luts[name], k)
            if merged is None:
                continue
            luts[reader.name] = merged
            del luts[name]
            changed = True
            break  # fanout map is stale; recompute

    out = LUTCircuit(circuit.name)
    for name in circuit.inputs:
        out.add_input(name)
    # Preserve a valid topological emission order.
    remaining = dict(luts)
    emitted: Set[str] = set(circuit.inputs)
    while remaining:
        progress = False
        for name in list(remaining):
            lut = remaining[name]
            if all(src in emitted for src in lut.inputs):
                out.add_lut(lut.name, lut.inputs, lut.tt)
                emitted.add(name)
                del remaining[name]
                progress = True
        if not progress:  # pragma: no cover - would indicate a cycle
            raise AssertionError("cyclic LUT dependencies during merge")
    for port, sig in circuit.outputs.items():
        out.set_output(port, sig)
    out.validate(k)
    return out
