"""BLIF emission for networks and mapped LUT circuits."""

from __future__ import annotations

from typing import List

from repro.blif.convert import network_to_blif_model
from repro.blif.parser import BlifModel
from repro.core.lut import LUTCircuit
from repro.network.network import BooleanNetwork


def _model_to_text(model: BlifModel) -> str:
    lines: List[str] = [".model %s" % model.name]
    if model.inputs:
        lines.append(".inputs %s" % " ".join(model.inputs))
    if model.outputs:
        lines.append(".outputs %s" % " ".join(model.outputs))
    for table in model.tables:
        header = ".names %s" % " ".join(list(table.inputs) + [table.output])
        lines.append(header)
        out_ch = str(table.phase)
        for cube in table.cubes:
            lines.append(("%s %s" % (cube, out_ch)) if cube else out_ch)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_network(net: BooleanNetwork) -> str:
    """Serialize an AND/OR network as BLIF text."""
    return _model_to_text(network_to_blif_model(net))


def write_network_file(net: BooleanNetwork, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_network(net))


def write_lut_circuit(circuit: LUTCircuit) -> str:
    """Serialize a LUT circuit as BLIF: one ``.names`` table per LUT."""
    lines: List[str] = [".model %s" % circuit.name]
    if circuit.inputs:
        lines.append(".inputs %s" % " ".join(circuit.inputs))
    outputs = circuit.outputs
    port_lines: List[str] = []
    emitted = set(circuit.inputs)
    body: List[str] = []
    for name in circuit.topological_order():
        lut = circuit.lut(name)
        body.append(".names %s" % " ".join(list(lut.inputs) + [name]))
        minterms = list(lut.tt.minterms())
        if not lut.inputs:
            if minterms:
                body.append("1")
            # constant 0: empty cover
        else:
            for m in minterms:
                cube = "".join(
                    "1" if (m >> j) & 1 else "0" for j in range(len(lut.inputs))
                )
                body.append("%s 1" % cube)
        emitted.add(name)
    # Output ports whose name differs from their driving signal need buffers.
    out_names: List[str] = []
    for port, sig in outputs.items():
        if port == sig:
            out_names.append(port)
        else:
            buf = port if port not in emitted else port + "_out"
            port_lines.append(".names %s %s" % (sig, buf))
            port_lines.append("1 1")
            emitted.add(buf)
            out_names.append(buf)
    if out_names:
        lines.append(".outputs %s" % " ".join(out_names))
    lines.extend(body)
    lines.extend(port_lines)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_lut_circuit_file(circuit: LUTCircuit, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_lut_circuit(circuit))
