"""Sum-of-products covers, the function representation inside ``.names``.

A cover is a list of cubes over the table's input columns plus a phase:
phase 1 means the cubes describe the on-set, phase 0 the off-set (the
function is then the complement of the OR of the cubes), exactly as in
BLIF semantics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import BlifError
from repro.truth.truthtable import TruthTable

_CUBE_CHARS = frozenset("01-")


class SopCover:
    """An SOP cover: ``output = phase XNOR (cube1 | cube2 | ...)``."""

    __slots__ = ("inputs", "output", "cubes", "phase")

    def __init__(
        self,
        inputs: Sequence[str],
        output: str,
        cubes: Sequence[str],
        phase: int = 1,
    ):
        if phase not in (0, 1):
            raise BlifError("cover phase must be 0 or 1, got %r" % (phase,))
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.output = output
        self.cubes: Tuple[str, ...] = tuple(cubes)
        self.phase = phase
        width = len(self.inputs)
        for cube in self.cubes:
            if len(cube) != width:
                raise BlifError(
                    "cube %r has %d columns, table %r has %d inputs"
                    % (cube, len(cube), output, width)
                )
            if not set(cube) <= _CUBE_CHARS:
                raise BlifError("cube %r contains characters outside 0/1/-" % cube)

    # -- queries ------------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    def num_literals(self) -> int:
        """Count of care (non '-') positions across all cubes."""
        return sum(len(c) - c.count("-") for c in self.cubes)

    def is_constant(self) -> bool:
        if not self.cubes:
            return True
        # A single all-don't-care cube is a tautological term: it forces
        # the whole OR of cubes to 1 no matter what else is present.
        return any(set(c) <= {"-"} for c in self.cubes)

    def constant_value(self) -> int:
        """The constant value, assuming :meth:`is_constant` is true."""
        if not self.is_constant():
            raise BlifError("cover of %r is not constant" % self.output)
        # No cubes: OR of nothing is 0; with phase 0 that complements to 1.
        covered = any(set(c) <= {"-"} for c in self.cubes)
        return int(covered == bool(self.phase))

    def cube_matches(self, cube: str, assignment: Sequence[int]) -> bool:
        for ch, v in zip(cube, assignment):
            if ch == "-":
                continue
            if (ch == "1") != bool(v):
                return False
        return True

    def evaluate(self, assignment: Sequence[int]) -> int:
        if len(assignment) != len(self.inputs):
            raise BlifError(
                "expected %d input values, got %d"
                % (len(self.inputs), len(assignment))
            )
        covered = any(self.cube_matches(c, assignment) for c in self.cubes)
        return int(covered == bool(self.phase))

    def truth_table(self) -> TruthTable:
        """The cover's function with variable order = column order."""
        n = len(self.inputs)
        bits = 0
        for m in range(1 << n):
            assignment = [(m >> j) & 1 for j in range(n)]
            if self.evaluate(assignment):
                bits |= 1 << m
        return TruthTable(n, bits)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def constant(cls, output: str, value: int) -> SopCover:
        return cls((), output, ("",) if value else (), phase=1)

    @classmethod
    def from_truth_table(
        cls, inputs: Sequence[str], output: str, tt: TruthTable
    ) -> SopCover:
        """A minterm-per-cube cover of the on-set (no minimization)."""
        if tt.nvars != len(inputs):
            raise BlifError(
                "truth table has %d vars, %d input names given"
                % (tt.nvars, len(inputs))
            )
        cubes = []
        for m in tt.minterms():
            cubes.append(
                "".join("1" if (m >> j) & 1 else "0" for j in range(tt.nvars))
            )
        return cls(inputs, output, cubes, phase=1)

    def __repr__(self) -> str:
        return "SopCover(%r, inputs=%d, cubes=%d, phase=%d)" % (
            self.output,
            len(self.inputs),
            len(self.cubes),
            self.phase,
        )
