"""Conversion between BLIF models and AND/OR boolean networks.

Each ``.names`` table becomes a two-level AND/OR structure: one AND node
per multi-literal cube and an OR node collecting the cubes, with cube
polarities carried on edge labels.  Off-set (phase 0) covers and single
literal covers become inverting/buffering single-fanin gates that the
standard :func:`~repro.network.sweep` pass folds into edge polarities.
"""

from __future__ import annotations

from typing import List

from repro.errors import BlifError
from repro.blif.parser import BlifModel
from repro.blif.sop import SopCover
from repro.network.network import AND, CONST0, CONST1, INPUT, OR, BooleanNetwork, Signal


def _cube_literals(cover: SopCover, cube: str) -> List[Signal]:
    literals = []
    for name, ch in zip(cover.inputs, cube):
        if ch == "-":
            continue
        literals.append(Signal(name, ch == "0"))
    return literals


def _build_table(net: BooleanNetwork, cover: SopCover) -> None:
    """Add nodes computing ``cover`` with output node named cover.output."""
    out_name = cover.output
    if cover.is_constant():
        net.add_const(out_name, bool(cover.constant_value()))
        return

    cube_signals: List[Signal] = []
    for idx, cube in enumerate(cover.cubes):
        literals = _cube_literals(cover, cube)
        if len(literals) == 1:
            cube_signals.append(literals[0])
        else:
            name = net.fresh_name("%s_c%d" % (out_name, idx))
            net.add_gate(name, AND, literals)
            cube_signals.append(Signal(name))

    invert = cover.phase == 0
    if len(cube_signals) == 1:
        sig = cube_signals[0]
        # Single-fanin gate preserving the table's output name; swept later.
        net.add_gate(out_name, AND, [Signal(sig.name, sig.inv != invert)])
    else:
        if invert:
            inner = net.fresh_name(out_name + "_pos")
            net.add_gate(inner, OR, cube_signals)
            net.add_gate(out_name, AND, [Signal(inner, True)])
        else:
            net.add_gate(out_name, OR, cube_signals)


def blif_to_network(model: BlifModel) -> BooleanNetwork:
    """Build an AND/OR network computing the model's outputs."""
    net = BooleanNetwork(model.name)
    for name in model.inputs:
        net.add_input(name)
    # Tables may appear in any order in BLIF; emit in dependency order.
    remaining = {t.output: t for t in model.tables}
    defined = set(model.inputs)
    progress = True
    while remaining and progress:
        progress = False
        for output in list(remaining):
            table = remaining[output]
            if all(i in defined for i in table.inputs):
                _build_table(net, table)
                defined.add(output)
                del remaining[output]
                progress = True
    if remaining:
        raise BlifError(
            "cyclic or dangling table definitions: %s" % ", ".join(sorted(remaining))
        )
    for out in model.outputs:
        net.set_output(out, Signal(out))
    net.validate()
    return net


def network_to_blif_model(net: BooleanNetwork) -> BlifModel:
    """Express an AND/OR network as a BLIF model (one table per gate)."""
    model = BlifModel(net.name)
    model.inputs = list(net.inputs)
    aliases = {}  # output ports needing a buffer table
    for node in net.nodes():
        if node.op == INPUT:
            continue
        if node.op in (CONST0, CONST1):
            model.tables.append(
                SopCover.constant(node.name, 1 if node.op == CONST1 else 0)
            )
            continue
        names = [s.name for s in node.fanins]
        if node.op == AND:
            cube = "".join("0" if s.inv else "1" for s in node.fanins)
            model.tables.append(SopCover(names, node.name, (cube,), phase=1))
        else:
            cubes = []
            for j, s in enumerate(node.fanins):
                cube = ["-"] * len(names)
                cube[j] = "0" if s.inv else "1"
                cubes.append("".join(cube))
            model.tables.append(SopCover(names, node.name, tuple(cubes), phase=1))
    existing = {t.output for t in model.tables} | set(model.inputs)
    for port, sig in net.outputs.items():
        if port == sig.name and not sig.inv:
            model.outputs.append(port)
            continue
        # The port needs its own signal: add a buffer/inverter table.
        buf_name = port if port not in existing else port + "_out"
        cube = "0" if sig.inv else "1"
        model.tables.append(SopCover((sig.name,), buf_name, (cube,), phase=1))
        existing.add(buf_name)
        model.outputs.append(buf_name)
        aliases[port] = buf_name
    model.validate()
    return model
