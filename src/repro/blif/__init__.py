"""BLIF reading and writing.

The MCNC-89 benchmarks the paper maps are distributed in Berkeley Logic
Interchange Format.  This package parses combinational BLIF models into
:class:`~repro.network.BooleanNetwork` objects (converting each ``.names``
sum-of-products table into AND/OR nodes with polarity-labelled edges) and
writes both networks and mapped LUT circuits back out as BLIF.
"""

from repro.blif.sop import SopCover
from repro.blif.parser import BlifModel, parse_blif, parse_blif_file
from repro.blif.convert import blif_to_network, network_to_blif_model
from repro.blif.writer import (
    write_lut_circuit,
    write_lut_circuit_file,
    write_network,
    write_network_file,
)

__all__ = [
    "SopCover",
    "BlifModel",
    "parse_blif",
    "parse_blif_file",
    "blif_to_network",
    "network_to_blif_model",
    "write_network",
    "write_network_file",
    "write_lut_circuit",
    "write_lut_circuit_file",
]
