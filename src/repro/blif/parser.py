"""A BLIF parser for combinational models.

Supports ``.model``, ``.inputs``, ``.outputs``, ``.names``, ``.end``,
comments, and backslash line continuations.  Sequential and hierarchical
constructs (``.latch``, ``.subckt``, ``.gate``) are rejected with a clear
error since the paper's mapping problem is purely combinational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import BlifError
from repro.blif.sop import SopCover

_REJECTED = {".latch", ".subckt", ".gate", ".mlatch", ".clock"}
_IGNORED_PREFIXES = (".default_", ".input_arrival", ".output_required", ".area",
                     ".delay", ".wire_load", ".exdc")


@dataclass
class BlifModel:
    """A parsed combinational BLIF model."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    tables: List[SopCover] = field(default_factory=list)

    def table_map(self) -> Dict[str, SopCover]:
        return {t.output: t for t in self.tables}

    def validate(self) -> None:
        defined = set(self.inputs)
        for table in self.tables:
            if table.output in defined:
                raise BlifError("signal %r defined more than once" % table.output)
            defined.add(table.output)
        for table in self.tables:
            for name in table.inputs:
                if name not in defined:
                    raise BlifError(
                        "table %r reads undefined signal %r" % (table.output, name)
                    )
        for out in self.outputs:
            if out not in defined:
                raise BlifError("output %r is never defined" % out)


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Strip comments, join continuations; returns (lineno, text) pairs."""
    lines: List[Tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        hash_pos = raw.find("#")
        if hash_pos >= 0:
            raw = raw[:hash_pos]
        raw = raw.rstrip()
        if pending:
            current = pending + " " + raw.strip()
            start = pending_start
        else:
            current = raw.strip()
            start = lineno
        if current.endswith("\\"):
            pending = current[:-1].rstrip()
            pending_start = start
            continue
        pending = ""
        if current:
            lines.append((start, current))
    if pending:
        raise BlifError("line %d: dangling line continuation" % pending_start)
    return lines


def parse_blif(text: str, validate: bool = True) -> BlifModel:
    """Parse BLIF text into a :class:`BlifModel` (first model only)."""
    model: Optional[BlifModel] = None
    current_names: Optional[Tuple[List[str], str]] = None
    cube_lines: List[Tuple[int, str]] = []
    ended = False

    def flush_names() -> None:
        nonlocal current_names, cube_lines
        if current_names is None:
            return
        inputs, output = current_names
        cubes: List[str] = []
        phase: Optional[int] = None
        for lineno, line in cube_lines:
            parts = line.split()
            if inputs:
                if len(parts) == 1 and len(parts[0]) == len(inputs) + 1:
                    # Dense form like "11-1" with output glued on.
                    in_part, out_part = parts[0][:-1], parts[0][-1]
                elif len(parts) == 2:
                    in_part, out_part = parts
                else:
                    raise BlifError(
                        "line %d: malformed cube %r for table %r"
                        % (lineno, line, output)
                    )
            else:
                if len(parts) != 1:
                    raise BlifError(
                        "line %d: malformed constant line %r" % (lineno, line)
                    )
                in_part, out_part = "", parts[0]
            if out_part not in ("0", "1"):
                raise BlifError(
                    "line %d: cube output must be 0 or 1, got %r"
                    % (lineno, out_part)
                )
            value = int(out_part)
            if phase is None:
                phase = value
            elif phase != value:
                raise BlifError(
                    "line %d: table %r mixes on-set and off-set lines"
                    % (lineno, output)
                )
            cubes.append(in_part)
        if phase is None:
            phase = 1  # empty cover: constant 0
            cubes = []
        model.tables.append(SopCover(inputs, output, cubes, phase=phase))
        current_names = None
        cube_lines = []

    for lineno, line in _logical_lines(text):
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword in _REJECTED:
                raise BlifError(
                    "line %d: %s is not supported (combinational models only)"
                    % (lineno, keyword)
                )
            if keyword == ".model":
                flush_names()
                if model is not None:
                    break  # only the first model is read
                model = BlifModel(parts[1] if len(parts) > 1 else "model")
                continue
            if model is None:
                raise BlifError("line %d: %s before .model" % (lineno, keyword))
            if ended:
                break
            if keyword == ".inputs":
                flush_names()
                model.inputs.extend(parts[1:])
            elif keyword == ".outputs":
                flush_names()
                model.outputs.extend(parts[1:])
            elif keyword == ".names":
                flush_names()
                if len(parts) < 2:
                    raise BlifError("line %d: .names needs an output" % lineno)
                current_names = (parts[1:-1], parts[-1])
            elif keyword == ".end":
                flush_names()
                ended = True
            elif any(keyword.startswith(p) for p in _IGNORED_PREFIXES):
                continue
            else:
                raise BlifError(
                    "line %d: unsupported construct %r" % (lineno, keyword)
                )
        else:
            if current_names is None:
                raise BlifError(
                    "line %d: cube line %r outside a .names table" % (lineno, line)
                )
            cube_lines.append((lineno, line))

    if model is None:
        raise BlifError("no .model found")
    flush_names()
    if validate:
        model.validate()
    return model


def parse_blif_file(path, validate: bool = True) -> BlifModel:
    """Parse a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read(), validate=validate)
