"""Structural Verilog emission for mapped LUT circuits.

Each lookup table becomes a truth-table wire indexed by the concatenated
inputs — plain synthesizable Verilog-2001 with no vendor primitives, so
the output drops into any simulation or FPGA flow:

    wire [7:0] g_tt = 8'b11101010;
    assign g = g_tt[{c, b, a}];

Identifiers are sanitized (BLIF allows characters Verilog does not) with
collision-free renaming; the port order follows the circuit's.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.core.lut import LUTCircuit

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_KEYWORDS = frozenset(
    "module endmodule input output inout wire reg assign begin end always "
    "if else case endcase for while integer parameter localparam initial "
    "posedge negedge or and not nand nor xor xnor buf signed".split()
)


class _Namer:
    """Deterministic, collision-free identifier sanitization."""

    def __init__(self):
        self._map: Dict[str, str] = {}
        self._used = set(_KEYWORDS)

    def __call__(self, name: str) -> str:
        if name in self._map:
            return self._map[name]
        candidate = re.sub(r"[^A-Za-z0-9_]", "_", name)
        if not candidate or not _IDENT.match(candidate) or candidate in _KEYWORDS:
            candidate = "sig_" + candidate if candidate else "sig"
        if not _IDENT.match(candidate):
            candidate = "sig_" + re.sub(r"[^A-Za-z0-9_]", "_", candidate)
        base = candidate
        counter = 0
        while candidate in self._used:
            counter += 1
            candidate = "%s_%d" % (base, counter)
        self._used.add(candidate)
        self._map[name] = candidate
        return candidate


def write_verilog(circuit: LUTCircuit, module_name: str = None) -> str:
    """Serialize the LUT circuit as a structural Verilog module."""
    name = _Namer()
    module = re.sub(r"[^A-Za-z0-9_]", "_", module_name or circuit.name) or "mapped"
    if not _IDENT.match(module) or module in _KEYWORDS:
        module = "m_" + module

    inputs = [name(n) for n in circuit.inputs]
    outputs = circuit.outputs
    port_names = {port: name("port$" + port) for port in outputs}

    lines: List[str] = []
    lines.append("module %s (" % module)
    decls = ["    input  wire %s" % n for n in inputs]
    decls += ["    output wire %s" % port_names[p] for p in outputs]
    lines.append(",\n".join(decls))
    lines.append(");")
    lines.append("")

    order = circuit.topological_order()
    for lut_name in order:
        lines.append("    wire %s;" % name(lut_name))
    if order:
        lines.append("")

    for lut_name in order:
        lut = circuit.lut(lut_name)
        out = name(lut_name)
        n = len(lut.inputs)
        if n == 0:
            lines.append("    assign %s = 1'b%d;" % (out, lut.tt.bits & 1))
            continue
        width = 1 << n
        table_wire = out + "_tt"
        bits = format(lut.tt.bits, "0%db" % width)
        lines.append(
            "    wire [%d:0] %s = %d'b%s;" % (width - 1, table_wire, width, bits)
        )
        # Bit m of the table is the value for assignment m, with input j
        # at bit j: the index concatenation lists inputs MSB-first.
        index = ", ".join(name(src) for src in reversed(lut.inputs))
        lines.append("    assign %s = %s[{%s}];" % (out, table_wire, index))

    lines.append("")
    for port, sig in outputs.items():
        lines.append("    assign %s = %s;" % (port_names[port], name(sig)))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: LUTCircuit, path, module_name: str = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(circuit, module_name=module_name))
