"""Synthetic stand-ins for the MCNC-89 circuits the paper maps.

Each profile carries the *published interface* of the real benchmark
(primary input and output counts) and a gate budget approximating the
MIS-optimized network size; the generator then produces a deterministic
circuit with that interface and MIS-like multi-level texture.  See
DESIGN.md for why this substitution preserves the paper's (relative)
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.generator import GeneratorConfig, random_network
from repro.network.network import BooleanNetwork


@dataclass(frozen=True)
class McncProfile:
    """Interface and size profile of one MCNC-89 benchmark."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    seed: int


# Input/output counts are the real benchmarks' published interfaces;
# gate budgets approximate the optimized-network sizes the paper mapped.
MCNC_PROFILES: Dict[str, McncProfile] = {
    p.name: p
    for p in [
        McncProfile("9symml", 9, 1, 170, seed=0x9511),
        McncProfile("alu2", 10, 6, 280, seed=0xA122),
        McncProfile("alu4", 14, 8, 540, seed=0xA144),
        McncProfile("apex6", 135, 99, 560, seed=0xAE6),
        McncProfile("apex7", 49, 37, 190, seed=0xAE7),
        McncProfile("count", 35, 16, 120, seed=0xC0),
        McncProfile("des", 256, 245, 2100, seed=0xDE5),
        McncProfile("frg1", 28, 3, 120, seed=0xF61),
        McncProfile("frg2", 143, 139, 620, seed=0xF62),
        McncProfile("k2", 45, 45, 800, seed=0xB2),
        McncProfile("pair", 173, 137, 1100, seed=0x9A12),
        McncProfile("rot", 135, 107, 500, seed=0x207),
        # Additional classic circuits beyond the paper's table (useful for
        # wider sweeps; interfaces follow the published netlists).
        McncProfile("c432", 36, 7, 180, seed=0x432),
        McncProfile("c880", 60, 26, 360, seed=0x880),
        McncProfile("c1355", 41, 32, 520, seed=0x1355),
        McncProfile("dalu", 75, 16, 900, seed=0xDA1),
        McncProfile("i10", 257, 224, 1800, seed=0x110),
        McncProfile("t481", 16, 1, 650, seed=0x481),
    ]
}

# The circuits that appear in the paper's Tables 1-4.
TABLE_CIRCUITS: Tuple[str, ...] = (
    "9symml",
    "alu2",
    "alu4",
    "apex6",
    "apex7",
    "count",
    "des",
    "frg1",
    "frg2",
    "k2",
    "pair",
    "rot",
)


def mcnc_circuit(name: str) -> BooleanNetwork:
    """Generate the synthetic stand-in for one MCNC benchmark."""
    try:
        profile = MCNC_PROFILES[name]
    except KeyError:
        raise KeyError(
            "unknown MCNC profile %r; available: %s"
            % (name, ", ".join(sorted(MCNC_PROFILES)))
        ) from None
    config = GeneratorConfig(
        num_inputs=profile.num_inputs,
        num_outputs=profile.num_outputs,
        num_gates=profile.num_gates,
        seed=profile.seed,
    )
    net = random_network(config)
    net.name = profile.name
    return net


def mcnc_suite(names: Tuple[str, ...] = TABLE_CIRCUITS) -> List[BooleanNetwork]:
    """Generate the whole table suite, in the paper's order."""
    return [mcnc_circuit(name) for name in names]
