"""Workloads: the paper's example network and MCNC-89 stand-in circuits.

The MCNC-89 logic-synthesis benchmarks the paper maps are not
redistributable here, so :mod:`repro.bench.mcnc` generates deterministic
synthetic circuits matching each benchmark's published interface (primary
input/output counts) and the structural texture of MIS-optimized
networks (fanin distribution, multi-level trees, fanout structure).  The
comparison the paper reports is *relative* — Chortle vs MIS on the same
input — so the substitution preserves the measured effect; see DESIGN.md.
"""

from repro.bench.arith import (
    carry_lookahead_adder,
    popcount,
    shift_add_multiplier,
)
from repro.bench.circuits import (
    alu_slice,
    barrel_shifter,
    comparator,
    decoder,
    figure1_network,
    full_adder,
    majority,
    mux_tree,
    parity_tree,
    ripple_adder,
    wide_and,
)
from repro.bench.adversarial import (
    ADVERSARIAL_PRESETS,
    AdversarialConfig,
    adversarial_network,
    adversarial_preset,
    resolve_cell,
)
from repro.bench.generator import GeneratorConfig, random_network
from repro.bench.mcnc import MCNC_PROFILES, mcnc_circuit, mcnc_suite

__all__ = [
    "figure1_network",
    "full_adder",
    "ripple_adder",
    "parity_tree",
    "majority",
    "mux_tree",
    "wide_and",
    "decoder",
    "comparator",
    "barrel_shifter",
    "alu_slice",
    "carry_lookahead_adder",
    "shift_add_multiplier",
    "popcount",
    "GeneratorConfig",
    "random_network",
    "MCNC_PROFILES",
    "mcnc_circuit",
    "mcnc_suite",
    "ADVERSARIAL_PRESETS",
    "AdversarialConfig",
    "adversarial_network",
    "adversarial_preset",
    "resolve_cell",
]
