"""Arithmetic circuit generators: structured (non-random) workloads.

Real arithmetic is the classic stress test for LUT mappers — XOR-rich,
reconvergent, and deeply structured, i.e. everything the synthetic
generator's fanout-free texture is not.  These builders complement the
MCNC stand-ins with fully *deterministic by construction* netlists whose
functions are verified bit-for-bit in the test suite.
"""

from __future__ import annotations

from typing import List

from repro.network.builder import NetworkBuilder
from repro.network.network import BooleanNetwork, Signal


def carry_lookahead_adder(width: int = 8, group: int = 4) -> BooleanNetwork:
    """A group-carry-lookahead adder (generate/propagate trees)."""
    b = NetworkBuilder("cla%d" % width)
    a_bits = [b.input("a%d" % i) for i in range(width)]
    b_bits = [b.input("b%d" % i) for i in range(width)]
    cin = b.input("cin")

    g = [b.and_(a_bits[i], b_bits[i], name="g%d" % i) for i in range(width)]
    p = [b.xor_(a_bits[i], b_bits[i], name="p%d" % i) for i in range(width)]

    carries: List[Signal] = [cin]
    for i in range(width):
        # c[i+1] = g[i] + p[i]&g[i-1] + ... + p[i..0]&cin (lookahead form)
        terms: List[Signal] = [g[i]]
        for j in range(i - 1, -1, -1):
            lits = [p[x] for x in range(j + 1, i + 1)] + [g[j]]
            terms.append(b.and_(*lits, name="t%d_%d" % (i, j)))
        terms.append(
            b.and_(*(p[x] for x in range(i + 1)), carries[0], name="t%d_c" % i)
        )
        carries.append(b.or_(*terms, name="c%d" % (i + 1)))

    for i in range(width):
        b.output("sum%d" % i, b.xor_(p[i], carries[i], name="s%d" % i))
    b.output("cout", carries[width])
    return b.network()


def _ripple_add(b: NetworkBuilder, xs: List, ys: List, tag: str):
    """Helper: ripple-add two equal-length signal vectors; returns sum+cout."""
    out: List[Signal] = []
    carry: Signal = None
    for i, (x, y) in enumerate(zip(xs, ys)):
        if x is None and y is None:
            out.append(None)
            continue
        if x is None or y is None:
            lone = x if y is None else y
            if carry is None:
                out.append(lone)
            else:
                out.append(b.xor_(lone, carry, name="%s_s%d" % (tag, i)))
                carry = b.and_(lone, carry, name="%s_c%d" % (tag, i))
            continue
        axy = b.xor_(x, y, name="%s_x%d" % (tag, i))
        if carry is None:
            out.append(axy)
            carry = b.and_(x, y, name="%s_c%d" % (tag, i))
        else:
            out.append(b.xor_(axy, carry, name="%s_s%d" % (tag, i)))
            carry = b.or_(
                b.and_(x, y, name="%s_g%d" % (tag, i)),
                b.and_(axy, carry, name="%s_p%d" % (tag, i)),
                name="%s_c%d" % (tag, i),
            )
    return out, carry


def shift_add_multiplier(width: int = 4) -> BooleanNetwork:
    """A shift-and-add multiplier: width rows of gated ripple adders."""
    b = NetworkBuilder("mult%d" % width)
    a_bits = [b.input("a%d" % i) for i in range(width)]
    b_bits = [b.input("b%d" % i) for i in range(width)]

    total_bits = 2 * width
    acc: List[Signal] = [None] * total_bits
    for j in range(width):
        row: List[Signal] = [None] * total_bits
        for i in range(width):
            row[i + j] = b.and_(a_bits[i], b_bits[j], name="pp%d_%d" % (i, j))
        if all(s is None for s in acc):
            acc = row
            continue
        summed, carry = _ripple_add(b, acc, row, tag="r%d" % j)
        if carry is not None:
            # Propagate the carry into the next free position.
            top = j + width
            if top < total_bits:
                if summed[top] is None:
                    summed[top] = carry
                else:  # pragma: no cover - construction keeps this free
                    raise AssertionError("carry collision")
        acc = summed
    for i in range(total_bits):
        if acc[i] is not None:
            b.output("p%d" % i, acc[i])
    return b.network()


def popcount(width: int = 8) -> BooleanNetwork:
    """Population count via a tree of small adders."""

    b = NetworkBuilder("popcount%d" % width)
    bits = [[b.input("x%d" % i)] for i in range(width)]

    counter = [0]

    def add_vectors(xs: List, ys: List) -> List:
        counter[0] += 1
        out, carry = _ripple_add(
            b,
            xs + [None] * max(0, len(ys) - len(xs)),
            ys + [None] * max(0, len(xs) - len(ys)),
            tag="v%d" % counter[0],
        )
        if carry is not None:
            out = out + [carry]
        return [s for s in out]

    while len(bits) > 1:
        nxt = []
        for i in range(0, len(bits) - 1, 2):
            nxt.append(add_vectors(bits[i], bits[i + 1]))
        if len(bits) % 2:
            nxt.append(bits[-1])
        bits = nxt
    for i, sig in enumerate(bits[0]):
        if sig is not None:
            b.output("n%d" % i, sig)
    return b.network()
