"""Programmatic experiment runner: suite sweeps with exportable results.

Runs a set of circuits through a set of mappers at a set of K values and
collects :class:`~repro.report.MappingReport` objects, exportable as
JSON or CSV for regression tracking — the machine-readable counterpart
of the pytest benchmark harness.
"""

from __future__ import annotations

import csv
import io
import json
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bench.mcnc import TABLE_CIRCUITS
from repro.errors import BenchError, FlowError
from repro.flow.mappers import mapper_names, resolve_mapper, supports_k
from repro.network.network import BooleanNetwork
from repro.obs import capture, metrics, span
from repro.report import MappingReport, build_report
from repro.verify import verify_equivalence

if TYPE_CHECKING:
    from repro.obs.qor import RunRecord


def _factory(name: str) -> Callable[[int], object]:
    return lambda k: resolve_mapper(name, k)


#: Every mapper the suite can sweep — the raw algorithmic mappers plus the
#: registered flows — resolved through the flow engine's common protocol.
MAPPER_FACTORIES: Dict[str, Callable[[int], object]] = {
    name: _factory(name) for name in mapper_names()
}


def mapper_factory(name: str) -> Callable[[int], object]:
    """The factory for ``name`` — a known mapper, a registered flow, or a
    comma-separated flow spec — or a clean error naming the valid names."""
    try:
        return MAPPER_FACTORIES[name]
    except KeyError:
        pass
    from repro.flow.registry import get_registry

    try:
        flow = get_registry().resolve(name)
        if not flow.is_mapping_flow:
            raise FlowError("flow %r does not produce a LUT circuit" % name)
    except FlowError:
        raise BenchError(
            "unknown mapper %r; valid mappers: %s (or a flow spec such as "
            "'sweep,strash,chortle,merge')"
            % (name, ", ".join(sorted(MAPPER_FACTORIES)))
        ) from None
    return _factory(name)


_CSV_FIELDS = [
    "circuit_name",
    "k",
    "mapper",
    "num_inputs",
    "num_outputs",
    "source_gates",
    "luts",
    "luts_total",
    "depth",
    "seconds",
    "wall_seconds",
    "depth_attribution",
]


def _format_attribution(attribution: Optional[Dict[str, int]]) -> str:
    """The CSV cell for a depth attribution: ``tree=levels;...`` or ``n/a``."""
    if not attribution:
        return "n/a"
    ranked = sorted(attribution.items(), key=lambda kv: (-kv[1], kv[0]))
    return ";".join("%s=%d" % (tree, levels) for tree, levels in ranked)


@dataclass
class SuiteResult:
    """All reports from one sweep, with export helpers."""

    reports: List[MappingReport] = field(default_factory=list)

    def filter(self, **criteria) -> List[MappingReport]:
        out = []
        for report in self.reports:
            if all(getattr(report, key) == val for key, val in criteria.items()):
                out.append(report)
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            [r.to_dict() for r in self.reports], indent=indent, sort_keys=True
        )

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for report in self.reports:
            row = {key: getattr(report, key) for key in _CSV_FIELDS}
            row["depth_attribution"] = _format_attribution(
                report.depth_attribution
            )
            writer.writerow(row)
        return buffer.getvalue()

    def to_records(
        self,
        created_at: str,
        label: str = "",
        environment: Optional[Dict[str, str]] = None,
    ) -> RunRecord:
        """Bundle the reports into a persistent QoR run record.

        ``created_at`` is caller-supplied (ISO-8601 by convention);
        ``environment`` defaults to the live git sha / python / platform.
        """
        from repro.obs.qor import RunRecord, collect_environment

        env = dict(environment) if environment is not None else collect_environment()
        return RunRecord(
            reports=list(self.reports),
            created_at=created_at,
            environment=env,
            label=label,
        )

    def comparison(self, k: int, baseline: str, challenger: str) -> Dict[str, float]:
        """Per-circuit % improvement of challenger over baseline LUTs."""
        gains: Dict[str, float] = {}
        base = {r.circuit_name: r for r in self.filter(k=k, mapper=baseline)}
        for report in self.filter(k=k, mapper=challenger):
            ref = base.get(report.circuit_name)
            if ref is None or ref.luts == 0:
                continue
            gains[report.circuit_name] = 100.0 * (ref.luts - report.luts) / ref.luts
        return gains


def run_one_cell(
    net: BooleanNetwork,
    k: int,
    mapper_name: str,
    verify: bool = False,
    cache=None,
    mapper_opts: Optional[Dict[str, object]] = None,
) -> MappingReport:
    """Run a single (circuit, K, mapper) cell and build its report.

    The mapping is timed through the tracer (one ``bench.run`` span) and
    attributed a counter delta; ``wall_seconds`` additionally records
    the full cell wall clock — mapping plus verification plus report
    assembly — so QoR diffs can flag runtime regressions that live
    outside the mapper proper.
    """
    opts = dict(mapper_opts or {})
    mapper = resolve_mapper(
        mapper_name,
        k,
        cache=cache,
        jobs=int(opts.get("jobs", 1)),
        executor=str(opts.get("executor", "thread")),
    )
    wall_started = time.perf_counter()
    counters_before = metrics.counters()
    # capture() must attach its sink before span() is evaluated, or the
    # tracer hands back the no-op span and the record never materializes.
    with capture() as sink, span(
        "bench.run", circuit=net.name, k=k, mapper=mapper_name
    ):
        circuit = mapper.map(net)
    run_span = sink.by_name("bench.run")[0]
    seconds = run_span.duration
    timings = {
        name: round(total, 6)
        for name, total in sink.stage_timings().items()
        if name not in ("bench.run", "chortle.map_tree")
    }
    if verify:
        verify_equivalence(net, circuit, vectors=256)
    report = build_report(
        net,
        circuit,
        k,
        mapper=mapper_name,
        seconds=round(seconds, 4),
        timings=timings,
        counters=metrics.counter_delta(counters_before),
    )
    return report.with_wall_seconds(
        round(time.perf_counter() - wall_started, 4)
    )


def run_suite(
    circuits: Optional[Sequence] = None,
    mappers: Sequence[str] = ("chortle", "mis"),
    ks: Sequence[int] = (2, 3, 4, 5),
    verify: bool = False,
    jobs: int = 1,
    cache=False,
    progress: object = False,
) -> SuiteResult:
    """Sweep circuits x mappers x K and return the collected reports.

    ``circuits`` may contain MCNC profile names or BooleanNetwork objects;
    default is the full 12-circuit table suite.

    ``jobs > 1`` fans the independent (circuit, mapper, K) cells across
    a process pool; reports come back in the same deterministic order —
    and with the same QoR — as a serial sweep.  ``cache`` enables the
    structural node-table memo for the chortle-engine cells (``True``
    for the process-wide shared cache, or an explicit
    :class:`~repro.perf.memo.NodeTableCache`); in parallel runs each
    worker process keeps its own cache.  ``progress`` takes ``True``
    (heartbeat lines on stderr) or a
    :class:`~repro.obs.progress.ProgressEmitter` for per-cell
    started/finished/ETA events while the sweep runs (parallel sweeps
    emit finished events only, in completion order).
    """
    from repro.obs.progress import resolve_progress

    if circuits is None:
        circuits = TABLE_CIRCUITS
    # Fail fast on bad mapper names, before any (expensive) mapping runs.
    for name in mappers:
        mapper_factory(name)
    from repro.bench.adversarial import resolve_cell

    networks: List[BooleanNetwork] = []
    for entry in circuits:
        if isinstance(entry, BooleanNetwork):
            networks.append(entry)
        else:
            networks.append(resolve_cell(str(entry)))

    # Mixed sweeps may pair a mapper with a K it cannot do (mis stops at
    # K=5, the cut mappers at K=6); those cells are skipped rather than
    # failing the whole sweep, and the skip count is observable.
    cells: List[Tuple[BooleanNetwork, int, str]] = [
        (net, k, mapper_name)
        for net in networks
        for k in ks
        for mapper_name in mappers
        if supports_k(mapper_name, k)
    ]
    skipped = len(networks) * len(ks) * len(mappers) - len(cells)
    if skipped:
        metrics.count("bench.cells_skipped", skipped)
    emitter = resolve_progress(progress, total=len(cells))

    result = SuiteResult()
    if jobs > 1 and len(cells) > 1:
        from repro.perf.parallel import run_cells_processes

        on_result = None
        if emitter is not None:
            def on_result(index: int, row: dict) -> None:
                net, k, mapper_name = cells[index]
                emitter.cell_finished(
                    net.name, k, mapper_name,
                    seconds=float(row.get("wall_seconds") or 0.0),
                )

        with span("bench.suite", jobs=jobs, cells=len(cells)):
            rows = run_cells_processes(
                cells, jobs=jobs, verify=verify, use_cache=bool(cache),
                on_result=on_result,
            )
        result.reports.extend(MappingReport.from_dict(row) for row in rows)
        return result

    from repro.perf.memo import resolve_cache

    cache_obj = resolve_cache(cache)
    for net, k, mapper_name in cells:
        if emitter is not None:
            emitter.cell_started(net.name, k, mapper_name)
        cell_started = time.perf_counter()
        report = run_one_cell(net, k, mapper_name, verify=verify, cache=cache_obj)
        if emitter is not None:
            emitter.cell_finished(
                net.name, k, mapper_name,
                seconds=time.perf_counter() - cell_started,
            )
        result.reports.append(report)
    return result
