"""Hand-written example circuits, including the paper's Figure 1 network."""

from __future__ import annotations

from typing import List

from repro.network.builder import NetworkBuilder
from repro.network.network import BooleanNetwork, Signal


def figure1_network() -> BooleanNetwork:
    """The boolean network of the paper's Figure 1.

    Five inputs ``a..e``; an AND feeding an OR (with an inverted ``c``
    edge), a three-input AND, and an OR collecting both; two outputs so
    the internal node exhibits fanout, as in Figure 3's forest example.
    """
    b = NetworkBuilder("fig1")
    a, bb, c, d, e = b.inputs("a", "b", "c", "d", "e")
    g1 = b.and_(a, bb, name="g1")
    g2 = b.or_(g1, ~c, name="g2")
    g3 = b.and_(c, d, e, name="g3")
    g4 = b.or_(g2, g3, name="g4")
    b.output("z", g4)
    b.output("y", g2)
    return b.network()


def full_adder(prefix: str = "fa", builder: NetworkBuilder = None) -> BooleanNetwork:
    """A one-bit full adder (sum and carry) over inputs a, b, cin."""
    own = builder is None
    b = builder or NetworkBuilder("full_adder")
    a, bb, cin = b.inputs(prefix + "_a", prefix + "_b", prefix + "_cin")
    axb = b.xor_(a, bb, name=prefix + "_axb")
    s = b.xor_(axb, cin, name=prefix + "_sum")
    carry = b.or_(
        b.and_(a, bb, name=prefix + "_ab"),
        b.and_(axb, cin, name=prefix + "_pc"),
        name=prefix + "_cout",
    )
    b.output(prefix + "_s", s)
    b.output(prefix + "_co", carry)
    return b.network() if own else None


def ripple_adder(width: int = 8) -> BooleanNetwork:
    """A ripple-carry adder: the classic deep-tree mapping workload."""
    b = NetworkBuilder("ripple%d" % width)
    carry: Signal = None
    for i in range(width):
        a = b.input("a%d" % i)
        bb = b.input("b%d" % i)
        axb = b.xor_(a, bb, name="p%d" % i)
        if carry is None:
            s = axb
            carry = b.and_(a, bb, name="c%d" % i)
        else:
            s = b.xor_(axb, carry, name="s%d" % i)
            carry = b.or_(
                b.and_(a, bb, name="g%d" % i),
                b.and_(axb, carry, name="t%d" % i),
                name="c%d" % i,
            )
        b.output("sum%d" % i, s)
    b.output("cout", carry)
    return b.network()


def parity_tree(width: int = 8) -> BooleanNetwork:
    """XOR parity over ``width`` inputs, built as a balanced tree."""
    b = NetworkBuilder("parity%d" % width)
    level: List[Signal] = [b.input("x%d" % i) for i in range(width)]
    stage = 0
    while len(level) > 1:
        nxt: List[Signal] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(b.xor_(level[i], level[i + 1], name="p%d_%d" % (stage, i)))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        stage += 1
    b.output("parity", level[0])
    return b.network()


def majority(width: int = 5) -> BooleanNetwork:
    """Majority-of-width function as an OR of all majority-sized ANDs."""
    import itertools

    b = NetworkBuilder("maj%d" % width)
    xs = [b.input("x%d" % i) for i in range(width)]
    need = width // 2 + 1
    terms = []
    for idx, combo in enumerate(itertools.combinations(range(width), need)):
        terms.append(b.and_(*[xs[i] for i in combo], name="t%d" % idx))
    b.output("maj", b.or_(*terms, name="m"))
    return b.network()


def mux_tree(select_bits: int = 3) -> BooleanNetwork:
    """A 2**n-to-1 multiplexer tree: reconvergent select fanout."""
    b = NetworkBuilder("mux%d" % select_bits)
    sels = [b.input("s%d" % i) for i in range(select_bits)]
    level: List[Signal] = [
        b.input("d%d" % i) for i in range(1 << select_bits)
    ]
    for stage, sel in enumerate(sels):
        nxt: List[Signal] = []
        for i in range(0, len(level), 2):
            lo = b.and_(~sel, level[i], name="m%d_%d_l" % (stage, i))
            hi = b.and_(sel, level[i + 1], name="m%d_%d_h" % (stage, i))
            nxt.append(b.or_(lo, hi, name="m%d_%d" % (stage, i)))
        level = nxt
    b.output("y", level[0])
    return b.network()


def wide_and(width: int = 16) -> BooleanNetwork:
    """A single wide AND gate: exercises decomposition and node splitting."""
    b = NetworkBuilder("wide_and%d" % width)
    xs = [b.input("x%d" % i) for i in range(width)]
    b.output("y", b.and_(*xs, name="w"))
    return b.network()


def decoder(select_bits: int = 3) -> BooleanNetwork:
    """An n-to-2^n one-hot decoder: very high select fanout."""
    b = NetworkBuilder("dec%d" % select_bits)
    sels = [b.input("s%d" % i) for i in range(select_bits)]
    for code in range(1 << select_bits):
        literals = [
            sels[i] if (code >> i) & 1 else ~sels[i]
            for i in range(select_bits)
        ]
        b.output("o%d" % code, b.and_(*literals, name="d%d" % code))
    return b.network()


def comparator(width: int = 4) -> BooleanNetwork:
    """An equality + greater-than comparator over two width-bit words."""
    b = NetworkBuilder("cmp%d" % width)
    a_bits = [b.input("a%d" % i) for i in range(width)]
    b_bits = [b.input("b%d" % i) for i in range(width)]
    eq_bits: List[Signal] = []
    for i in range(width):
        eq_bits.append(~b.xor_(a_bits[i], b_bits[i], name="x%d" % i))
    b.output("eq", b.and_(*eq_bits, name="eq_all"))
    # gt: first (from the top) position where a=1, b=0 with equality above.
    terms: List[Signal] = []
    for i in reversed(range(width)):
        lits = [a_bits[i], ~b_bits[i]]
        lits.extend(eq_bits[j] for j in range(i + 1, width))
        terms.append(b.and_(*lits, name="g%d" % i))
    b.output("gt", b.or_(*terms, name="gt_any"))
    return b.network()


def barrel_shifter(width: int = 8) -> BooleanNetwork:
    """A logarithmic left barrel shifter (zero fill): layered MUX stages."""
    import math

    b = NetworkBuilder("bshift%d" % width)
    stages = max(1, int(math.log2(width)))
    sels = [b.input("s%d" % i) for i in range(stages)]
    level: List[Signal] = [b.input("d%d" % i) for i in range(width)]
    zero_sig: List[Signal] = []

    def zero() -> Signal:
        if not zero_sig:
            # A structural constant-0: d0 & ~d0 would be swept; use an
            # explicit extra input tied by convention instead.
            zero_sig.append(b.input("zero"))
        return zero_sig[0]

    for stage, sel in enumerate(sels):
        shift = 1 << stage
        nxt: List[Signal] = []
        for i in range(width):
            shifted = level[i - shift] if i - shift >= 0 else zero()
            keep = b.and_(~sel, level[i], name="k%d_%d" % (stage, i))
            move = b.and_(sel, shifted, name="m%d_%d" % (stage, i))
            nxt.append(b.or_(keep, move, name="r%d_%d" % (stage, i)))
        level = nxt
    for i, sig in enumerate(level):
        b.output("q%d" % i, sig)
    return b.network()


def alu_slice() -> BooleanNetwork:
    """A 1-bit ALU slice: AND/OR/XOR/ADD selected by two opcode bits."""
    b = NetworkBuilder("alu_slice")
    a, bb, cin, op0, op1 = b.inputs("a", "b", "cin", "op0", "op1")
    f_and = b.and_(a, bb, name="f_and")
    f_or = b.or_(a, bb, name="f_or")
    f_xor = b.xor_(a, bb, name="f_xor")
    f_sum = b.xor_(f_xor, cin, name="f_sum")
    cout = b.or_(
        b.and_(a, bb, name="c_ab"),
        b.and_(f_xor, cin, name="c_pc"),
        name="cout_or",
    )
    # 4-to-1 result mux on (op1, op0).
    result = b.or_(
        b.and_(~op1, ~op0, f_and, name="sel_and"),
        b.and_(~op1, op0, f_or, name="sel_or"),
        b.and_(op1, ~op0, f_xor, name="sel_xor"),
        b.and_(op1, op0, f_sum, name="sel_sum"),
        name="result",
    )
    b.output("y", result)
    b.output("cout", cout)
    return b.network()
