"""The adversarial circuit corpus: mapper stress cases gated by SAT.

Five seeded families, each built to defeat a different simplifying
assumption a LUT mapper might make, and — for the wide-input members —
to sit beyond exhaustive simulation's input-count reach so only the SAT
equivalence engine (:mod:`repro.sat`) can formally check the mapping:

* ``reconvergent`` — free meshes of structural XOR motifs whose operands
  fan out into both AND legs, the forest partition's worst case;
* ``xor_chain`` — chained XOR ladders: deep reconvergence where every
  stage depends on the previous one, stressing decomposition depth;
* ``wide_fanin`` — layers of 6–12-input gates over a heavily shared,
  inversion-seasoned operand pool, stressing bin packing;
* ``deep_chain`` — a long alternating AND/OR rail with rotating input
  taps, stressing the tree DP's serial depth;
* ``arith`` — carry-chain arithmetic (ripple adders, with an all-ones
  parity tap) whose >20-input members are the corpus's formally-checked
  flagships, in the spirit of PolyLUT-style wide-input logic.

Every preset is deterministic (seeded) and byte-pinned as a committed
BLIF fixture under ``benchmarks/fixtures/adv_*.blif``; preset names are
first-class cell names wherever MCNC profile names are accepted
(``run_suite``, ``chortle qor``, ``chortle lint``, ``chortle verify``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.bench.circuits import parity_tree, ripple_adder
from repro.bench.generator import ReconvergentConfig, reconvergent_network
from repro.errors import BenchError
from repro.network.network import AND, OR, BooleanNetwork, Signal

FAMILIES = (
    "reconvergent",
    "xor_chain",
    "wide_fanin",
    "deep_chain",
    "arith",
    "parity",
)


@dataclass(frozen=True)
class AdversarialConfig:
    """One adversarial cell: a family plus its seeded shape knobs."""

    family: str
    num_inputs: int
    #: Family-specific size: stages (reconvergent/xor_chain), gates
    #: (wide_fanin), rail length (deep_chain), or adder width (arith).
    size: int
    seed: int = 0
    num_outputs: int = 4


def _reconvergent(config: AdversarialConfig) -> BooleanNetwork:
    return reconvergent_network(
        ReconvergentConfig(
            num_inputs=config.num_inputs,
            num_stages=config.size,
            seed=config.seed,
            window=max(4, config.num_inputs // 2 + 2),
            num_outputs=config.num_outputs,
            chain=False,
        )
    )


def _xor_chain(config: AdversarialConfig) -> BooleanNetwork:
    return reconvergent_network(
        ReconvergentConfig(
            num_inputs=config.num_inputs,
            num_stages=config.size,
            seed=config.seed,
            window=4,
            num_outputs=config.num_outputs,
            chain=True,
        )
    )


def _wide_fanin(config: AdversarialConfig) -> BooleanNetwork:
    """Layers of wide gates over a shared, inversion-seasoned pool."""
    rng = random.Random(config.seed)
    net = BooleanNetwork("wide_s%d" % config.seed)
    pool: List[str] = [
        net.add_input("pi%d" % i).name for i in range(config.num_inputs)
    ]
    for g in range(config.size):
        fanin = rng.randint(6, min(12, len(pool)))
        chosen = rng.sample(pool, fanin)
        fanins = [Signal(src, rng.random() < 0.3) for src in chosen]
        sig = net.add_gate("w%d" % g, rng.choice((AND, OR)), fanins)
        pool.append(sig.name)
    taps = pool[-config.num_outputs:]
    for i, name in enumerate(taps):
        net.set_output("po%d" % i, Signal(name))
    net.validate()
    return net


def _deep_chain(config: AdversarialConfig) -> BooleanNetwork:
    """A long alternating AND/OR rail tapping inputs round-robin."""
    rng = random.Random(config.seed)
    net = BooleanNetwork("deep_s%d" % config.seed)
    inputs = [net.add_input("pi%d" % i).name for i in range(config.num_inputs)]
    prev = Signal(inputs[0])
    op = AND
    milestones: List[str] = []
    for step in range(config.size):
        tap = Signal(
            inputs[(step + 1) % len(inputs)], rng.random() < 0.25
        )
        link = prev if rng.random() >= 0.2 else ~prev
        sig = net.add_gate("d%d" % step, op, [link, tap])
        op = OR if op == AND else AND
        prev = sig
        if step % max(1, config.size // max(1, config.num_outputs)) == 0:
            milestones.append(sig.name)
    taps = (milestones + [prev.name])[-config.num_outputs:]
    for i, name in enumerate(dict.fromkeys(taps)):
        net.set_output("po%d" % i, Signal(name))
    net.validate()
    return net


def _arith(config: AdversarialConfig) -> BooleanNetwork:
    """A ripple adder (width = ``size``) plus a parity tap over its sums."""
    net = ripple_adder(config.size)
    sum_sigs = [net.outputs["sum%d" % i] for i in range(config.size)]
    prev = sum_sigs[0]
    for i, sig in enumerate(sum_sigs[1:]):
        # parity(prev, sig) as the usual 3-gate structural XOR motif
        a = net.add_gate("pr%d_a" % i, AND, [prev, ~sig])
        b = net.add_gate("pr%d_b" % i, AND, [~prev, sig])
        prev = net.add_gate("pr%d" % i, OR, [a, b])
    net.set_output("parity", prev)
    net.validate()
    return net


def _parity(config: AdversarialConfig) -> BooleanNetwork:
    return parity_tree(config.num_inputs)


_BUILDERS = {
    "reconvergent": _reconvergent,
    "xor_chain": _xor_chain,
    "wide_fanin": _wide_fanin,
    "deep_chain": _deep_chain,
    "arith": _arith,
    "parity": _parity,
}


def adversarial_network(config: AdversarialConfig) -> BooleanNetwork:
    """Build the deterministic network of one adversarial config."""
    try:
        builder = _BUILDERS[config.family]
    except KeyError:
        raise BenchError(
            "unknown adversarial family %r (have: %s)"
            % (config.family, ", ".join(sorted(_BUILDERS)))
        ) from None
    return builder(config)


#: The committed corpus.  ``adv_add24`` (24 inputs) and ``adv_parity21``
#: (21 inputs) sit beyond the 20-input exhaustive-simulation hard limit:
#: their mappings are checkable only by the SAT engine.
ADVERSARIAL_PRESETS: Dict[str, AdversarialConfig] = {
    "adv_recon_mesh": AdversarialConfig(
        "reconvergent", num_inputs=12, size=30, seed=0xAD01, num_outputs=5
    ),
    "adv_xor_chain": AdversarialConfig(
        "xor_chain", num_inputs=10, size=24, seed=0xAD02
    ),
    "adv_wide_fanin": AdversarialConfig(
        "wide_fanin", num_inputs=14, size=24, seed=0xAD03
    ),
    "adv_deep_chain": AdversarialConfig(
        "deep_chain", num_inputs=9, size=64, seed=0xAD04
    ),
    "adv_add10": AdversarialConfig(
        "arith", num_inputs=10, size=5, seed=0xAD05, num_outputs=7
    ),
    "adv_add24": AdversarialConfig(
        "arith", num_inputs=24, size=12, seed=0xAD06, num_outputs=14
    ),
    "adv_parity21": AdversarialConfig(
        "parity", num_inputs=21, size=0, seed=0xAD07, num_outputs=1
    ),
}


def adversarial_preset(name: str) -> BooleanNetwork:
    """Generate one committed corpus cell by its fixture name."""
    try:
        config = ADVERSARIAL_PRESETS[name]
    except KeyError:
        raise BenchError(
            "unknown adversarial preset %r (have: %s)"
            % (name, ", ".join(sorted(ADVERSARIAL_PRESETS)))
        ) from None
    net = adversarial_network(config)
    net.name = name  # the fixture file stem, not the seed-derived default
    return net


def resolve_cell(name: str) -> BooleanNetwork:
    """A benchmark cell by name: adversarial preset or MCNC profile."""
    if name in ADVERSARIAL_PRESETS:
        return adversarial_preset(name)
    from repro.bench.mcnc import MCNC_PROFILES, mcnc_circuit

    if name in MCNC_PROFILES:
        return mcnc_circuit(name)
    raise BenchError(
        "unknown benchmark cell %r; adversarial presets: %s; MCNC "
        "profiles: %s"
        % (
            name,
            ", ".join(sorted(ADVERSARIAL_PRESETS)),
            ", ".join(sorted(MCNC_PROFILES)),
        )
    )
