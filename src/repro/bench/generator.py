"""Deterministic random boolean-network generation.

The generator produces networks with the structural texture of
MIS-optimized multi-level logic: mostly 2-4 input AND/OR gates with an
occasional wide gate, alternating-op tendency (factored forms alternate
AND and OR levels), a controllable inverted-edge rate, and sink-driven
output selection.  Crucially, fanout is *concentrated*: most gate outputs
are consumed exactly once (fresh picks), while reuse is steered to
primary inputs and a small set of hub signals — matching the large
fanout-free regions of MIS-optimized netlists that Chortle's forest
partition feeds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.network import AND, OR, BooleanNetwork, Signal
from repro.network.transform import sweep

DEFAULT_FANIN_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (2, 0.42),
    (3, 0.26),
    (4, 0.16),
    (5, 0.08),
    (6, 0.04),
    (8, 0.03),
    (12, 0.01),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic-network generator."""

    num_inputs: int
    num_outputs: int
    num_gates: int
    seed: int = 0
    fanin_weights: Tuple[Tuple[int, float], ...] = DEFAULT_FANIN_WEIGHTS
    invert_prob: float = 0.15
    alternate_prob: float = 0.7  # chance to pick the op opposite the fanins'
    fresh_prob: float = 0.9  # chance to consume a not-yet-used gate output,
    # which yields the large fanout-free regions MIS-optimized networks have
    pi_reuse_bias: float = 0.6  # reused edges drawn from primary inputs...
    hub_bias: float = 0.75  # ...or from already-shared "hub" gates, so
    # fanout concentrates on a few signals instead of spreading everywhere


def _pick_fanin_count(rng: random.Random, weights) -> int:
    total = sum(w for _, w in weights)
    roll = rng.random() * total
    for value, weight in weights:
        roll -= weight
        if roll <= 0:
            return value
    return weights[-1][0]


def random_network(config: GeneratorConfig) -> BooleanNetwork:
    """Generate, sweep, and return a deterministic random network."""
    rng = random.Random(config.seed)
    net = BooleanNetwork("synth_s%d" % config.seed)
    signals: List[str] = []
    ops: Dict[str, str] = {}
    for i in range(config.num_inputs):
        name = "pi%d" % i
        net.add_input(name)
        signals.append(name)
        ops[name] = "input"

    inputs = list(signals)
    unused: List[str] = []
    hubs: List[str] = []
    for g in range(config.num_gates):
        fanin_count = min(_pick_fanin_count(rng, config.fanin_weights), len(signals))
        fanin_count = max(fanin_count, 2)
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < fanin_count:
            attempts += 1
            if unused and rng.random() < config.fresh_prob:
                src = unused[rng.randrange(len(unused))]
            elif rng.random() < config.pi_reuse_bias:
                src = inputs[rng.randrange(len(inputs))]
            elif hubs and rng.random() < config.hub_bias:
                src = hubs[rng.randrange(len(hubs))]
            else:
                # Promote a random existing gate signal to shared (hub) use.
                src = signals[rng.randrange(len(signals))]
                if ops[src] in (AND, OR) and src not in hubs:
                    hubs.append(src)
            if src not in chosen:
                chosen.append(src)
            elif attempts > 20 * fanin_count:
                break
        unused = [u for u in unused if u not in chosen]
        fanins = [
            Signal(src, rng.random() < config.invert_prob) for src in chosen
        ]
        child_ops = [ops[src] for src in chosen if ops[src] in (AND, OR)]
        if child_ops and rng.random() < config.alternate_prob:
            majority_op = AND if child_ops.count(AND) >= child_ops.count(OR) else OR
            op = OR if majority_op == AND else AND
        else:
            op = rng.choice((AND, OR))
        name = "n%d" % g
        net.add_gate(name, op, fanins)
        signals.append(name)
        unused.append(name)
        ops[name] = op

    _assign_outputs(net, rng, config.num_outputs)
    return sweep(net)


def _assign_outputs(net: BooleanNetwork, rng: random.Random, num_outputs: int) -> None:
    fanouts = net.fanout_counts()
    sinks = [n.name for n in net.gates() if fanouts[n.name] == 0]
    gates = [n.name for n in net.gates()]
    if not gates:
        raise ValueError("generated network has no gates")
    chosen: List[str]
    if len(sinks) >= num_outputs:
        chosen = sinks[:num_outputs]
    else:
        chosen = list(sinks)
        pool = [g for g in gates if g not in set(chosen)]
        rng.shuffle(pool)
        chosen.extend(pool[: num_outputs - len(chosen)])
    for i, name in enumerate(chosen):
        net.set_output("po%d" % i, Signal(name))
