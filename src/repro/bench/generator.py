"""Deterministic random boolean-network generation.

The generator produces networks with the structural texture of
MIS-optimized multi-level logic: mostly 2-4 input AND/OR gates with an
occasional wide gate, alternating-op tendency (factored forms alternate
AND and OR levels), a controllable inverted-edge rate, and sink-driven
output selection.  Crucially, fanout is *concentrated*: most gate outputs
are consumed exactly once (fresh picks), while reuse is steered to
primary inputs and a small set of hub signals — matching the large
fanout-free regions of MIS-optimized netlists that Chortle's forest
partition feeds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.network import AND, OR, BooleanNetwork, Signal
from repro.network.transform import sweep

DEFAULT_FANIN_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (2, 0.42),
    (3, 0.26),
    (4, 0.16),
    (5, 0.08),
    (6, 0.04),
    (8, 0.03),
    (12, 0.01),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic-network generator."""

    num_inputs: int
    num_outputs: int
    num_gates: int
    seed: int = 0
    fanin_weights: Tuple[Tuple[int, float], ...] = DEFAULT_FANIN_WEIGHTS
    invert_prob: float = 0.15
    alternate_prob: float = 0.7  # chance to pick the op opposite the fanins'
    fresh_prob: float = 0.9  # chance to consume a not-yet-used gate output,
    # which yields the large fanout-free regions MIS-optimized networks have
    pi_reuse_bias: float = 0.6  # reused edges drawn from primary inputs...
    hub_bias: float = 0.75  # ...or from already-shared "hub" gates, so
    # fanout concentrates on a few signals instead of spreading everywhere


def _pick_fanin_count(rng: random.Random, weights) -> int:
    total = sum(w for _, w in weights)
    roll = rng.random() * total
    for value, weight in weights:
        roll -= weight
        if roll <= 0:
            return value
    return weights[-1][0]


def random_network(config: GeneratorConfig) -> BooleanNetwork:
    """Generate, sweep, and return a deterministic random network."""
    rng = random.Random(config.seed)
    net = BooleanNetwork("synth_s%d" % config.seed)
    signals: List[str] = []
    ops: Dict[str, str] = {}
    for i in range(config.num_inputs):
        name = "pi%d" % i
        net.add_input(name)
        signals.append(name)
        ops[name] = "input"

    inputs = list(signals)
    unused: List[str] = []
    hubs: List[str] = []
    for g in range(config.num_gates):
        fanin_count = min(_pick_fanin_count(rng, config.fanin_weights), len(signals))
        fanin_count = max(fanin_count, 2)
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < fanin_count:
            attempts += 1
            if unused and rng.random() < config.fresh_prob:
                src = unused[rng.randrange(len(unused))]
            elif rng.random() < config.pi_reuse_bias:
                src = inputs[rng.randrange(len(inputs))]
            elif hubs and rng.random() < config.hub_bias:
                src = hubs[rng.randrange(len(hubs))]
            else:
                # Promote a random existing gate signal to shared (hub) use.
                src = signals[rng.randrange(len(signals))]
                if ops[src] in (AND, OR) and src not in hubs:
                    hubs.append(src)
            if src not in chosen:
                chosen.append(src)
            elif attempts > 20 * fanin_count:
                break
        unused = [u for u in unused if u not in chosen]
        fanins = [
            Signal(src, rng.random() < config.invert_prob) for src in chosen
        ]
        child_ops = [ops[src] for src in chosen if ops[src] in (AND, OR)]
        if child_ops and rng.random() < config.alternate_prob:
            majority_op = AND if child_ops.count(AND) >= child_ops.count(OR) else OR
            op = OR if majority_op == AND else AND
        else:
            op = rng.choice((AND, OR))
        name = "n%d" % g
        net.add_gate(name, op, fanins)
        signals.append(name)
        unused.append(name)
        ops[name] = op

    _assign_outputs(net, rng, config.num_outputs)
    return sweep(net)


# -- reconvergent / XOR-heavy presets ----------------------------------------
#
# The paper concedes its one structural loss to MIS: reconvergent XOR
# patterns at K=2, which the forest partition maps piecewise (each XOR
# motif's multi-fanout operands sever the forest, costing three 2-input
# LUTs where a DAG cover needs one).  These presets generate exactly that
# texture — chains and meshes of structural XOR motifs
# ``OR(AND(a, ~b), AND(~a, b))`` — as the committed regression fixtures
# for the cut mapper's win over the tree mapper.


@dataclass(frozen=True)
class ReconvergentConfig:
    """Knobs of the XOR-heavy reconvergent-network generator."""

    num_inputs: int
    num_stages: int
    seed: int = 0
    window: int = 8  # operand pool: the last `window` signals + inputs
    invert_prob: float = 0.2  # edge inversion on the motif's operands
    num_outputs: int = 4
    chain: bool = True  # ladder (prev result always feeds the next stage)
    # versus free mesh (both operands drawn from the window)


def reconvergent_network(config: ReconvergentConfig) -> BooleanNetwork:
    """A deterministic network of chained/meshed structural XOR motifs.

    Every stage emits the three-gate XOR shape over two operands; both
    operands fan out into the stage's two AND gates, so every stage is a
    reconvergence point — the worst case for a forest partition and the
    home turf of a whole-DAG cut cover.
    """
    rng = random.Random(config.seed)
    net = BooleanNetwork("recon_s%d" % config.seed)
    pool: List[str] = []
    for i in range(config.num_inputs):
        name = "pi%d" % i
        net.add_input(name)
        pool.append(name)

    prev: str = pool[0]
    for s in range(config.num_stages):
        window = pool[-config.window :]
        if config.chain:
            a = prev
            b = rng.choice([w for w in window if w != a] or [pool[0]])
        else:
            a, b = rng.sample(window if len(window) >= 2 else pool, 2)
        sa = Signal(a, rng.random() < config.invert_prob)
        sb = Signal(b, rng.random() < config.invert_prob)
        and1 = net.add_gate(
            "x%d_a" % s, AND, [sa, Signal(sb.name, not sb.inv)]
        )
        and2 = net.add_gate(
            "x%d_b" % s, AND, [Signal(sa.name, not sa.inv), sb]
        )
        xor = net.add_gate("x%d" % s, OR, [and1, and2])
        pool.append(xor.name)
        prev = xor.name

    taps = pool[-config.num_outputs :]
    for i, name in enumerate(taps):
        net.set_output("po%d" % i, Signal(name))
    net.validate()
    return net


#: The committed reconvergent scenario presets (fixtures live under
#: ``benchmarks/fixtures/``; tests/test_generator.py pins their BLIF).
RECONVERGENT_PRESETS: Dict[str, ReconvergentConfig] = {
    "xor_ladder": ReconvergentConfig(
        num_inputs=10, num_stages=18, seed=0x5EC1, window=6, chain=True
    ),
    "xor_mesh": ReconvergentConfig(
        num_inputs=12, num_stages=28, seed=0x5EC2, window=10, chain=False
    ),
    "xor_wide": ReconvergentConfig(
        num_inputs=18,
        num_stages=40,
        seed=0x5EC3,
        window=14,
        num_outputs=6,
        chain=False,
    ),
}


def reconvergent_preset(name: str) -> BooleanNetwork:
    """Generate one of the committed reconvergent presets by name."""
    try:
        config = RECONVERGENT_PRESETS[name]
    except KeyError:
        raise ValueError(
            "unknown reconvergent preset %r (have: %s)"
            % (name, ", ".join(sorted(RECONVERGENT_PRESETS)))
        ) from None
    net = reconvergent_network(config)
    net.name = name  # the fixture file stem, not the seed-derived default
    return net


def _assign_outputs(net: BooleanNetwork, rng: random.Random, num_outputs: int) -> None:
    fanouts = net.fanout_counts()
    sinks = [n.name for n in net.gates() if fanouts[n.name] == 0]
    gates = [n.name for n in net.gates()]
    if not gates:
        raise ValueError("generated network has no gates")
    chosen: List[str]
    if len(sinks) >= num_outputs:
        chosen = sinks[:num_outputs]
    else:
        chosen = list(sinks)
        pool = [g for g in gates if g not in set(chosen)]
        rng.shuffle(pool)
        chosen.extend(pool[: num_outputs - len(chosen)])
    for i, name in enumerate(chosen):
        net.set_output("po%d" % i, Signal(name))
