#!/usr/bin/env python
"""Quickstart: build a small network, map it, inspect and verify the result.

Run:  python examples/quickstart.py
"""

from repro import ChortleMapper, NetworkBuilder, verify_equivalence, write_lut_circuit


def main() -> None:
    # Build the boolean network from the paper's Figure 1:
    # z = (a & b) | ~c | (c & d & e),  y = (a & b) | ~c
    b = NetworkBuilder("fig1")
    a, bb, c, d, e = b.inputs("a", "b", "c", "d", "e")
    g1 = b.and_(a, bb, name="g1")
    g2 = b.or_(g1, ~c, name="g2")
    g3 = b.and_(c, d, e, name="g3")
    g4 = b.or_(g2, g3, name="g4")
    b.output("z", g4)
    b.output("y", g2)
    net = b.network()

    # Map into 3-input lookup tables (the paper's Figure 2 example).
    mapper = ChortleMapper(k=3)
    circuit = mapper.map(net)

    print("Mapped %r into %d 3-input lookup tables:" % (net.name, circuit.cost))
    for lut in circuit.luts():
        print(
            "  %s = f(%s)   truth table %s"
            % (lut.name, ", ".join(lut.inputs), lut.tt.to_binary_string())
        )

    # Prove the mapping is functionally equivalent (exhaustive here).
    vectors = verify_equivalence(net, circuit)
    print("verified on %d input vectors" % vectors)

    # Emit the mapped circuit as BLIF.
    print()
    print(write_lut_circuit(circuit))


if __name__ == "__main__":
    main()
