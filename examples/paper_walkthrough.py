#!/usr/bin/env python
"""A guided walk through the paper's algorithm on its own example.

Follows Sections 2-3 step by step: the Figure 1 network, the Figure 3
forest of maximal fanout-free trees, the minmap tables of the tree
mapper, and the final Figure 2 circuit of three 3-input lookup tables.

Run:  python examples/paper_walkthrough.py
"""

from repro.bench.circuits import figure1_network
from repro.core import ChortleMapper, build_forest
from repro.core.forest import check_forest
from repro.core.tree_mapper import ExtItem, TableItem, TreeMapper
from repro.verify import verify_equivalence


def main() -> None:
    net = figure1_network()
    print("Section 2 - the boolean network (Figure 1):")
    for node in net.gates():
        fanins = ", ".join(str(s) for s in node.fanins)
        print("  %s = %s(%s)" % (node.name, node.op.upper(), fanins))
    print("  outputs: %s" % {p: str(s) for p, s in net.outputs.items()})

    print()
    print("Section 3 - creating a forest of trees (Figure 3):")
    forest = build_forest(net)
    check_forest(forest)
    for tree in forest.trees:
        print(
            "  tree rooted at %s: internal %s, leaves %s"
            % (tree.root, sorted(tree.internal), sorted(tree.leaves))
        )
    print(
        "  (node g2 has out-degree 2, so the edge into g4 is redirected "
        "through a pseudo-input, as in Figure 3b)"
    )

    print()
    print("Section 3.1 - minmap(n, U) tables for K=3:")
    mapper = TreeMapper(3)
    for tree in forest.trees:
        print("  tree %s:" % tree.root)
        tables = {}
        for name in net.topological_order():
            if name not in tree.internal:
                continue
            node = net.node(name)
            items = []
            for sig in node.fanins:
                if sig.name in tables:
                    items.append(TableItem(tuple(tables[sig.name]), sig.inv))
                else:
                    items.append(ExtItem(sig.name, sig.inv))
            table = mapper.compute_node_table(node.op, items)
            tables[name] = table
            row = ", ".join(
                "U=%d: %s" % (u, table[u].cost if table[u] else "-")
                for u in range(2, 4)
            )
            print("    minmap(%s): %s" % (name, row))

    print()
    print("Section 3.1.2 - the constructed mapping (Figure 2):")
    circuit = ChortleMapper(k=3).map(net)
    for lut in circuit.luts():
        print(
            "  LUT %-4s inputs (%s)  table %s"
            % (lut.name, ", ".join(lut.inputs), lut.tt.to_binary_string())
        )
    print("  total: %d lookup tables (the paper's Figure 2 uses 3)" % circuit.cost)

    from repro.draw import draw_circuit, draw_network

    print()
    print(draw_network(net))
    print()
    print(draw_circuit(circuit))

    vectors = verify_equivalence(net, circuit)
    print()
    print("Verified against the network on all %d input assignments." % vectors)


if __name__ == "__main__":
    main()
