#!/usr/bin/env python
"""Compare all four mappers on one circuit: area, depth, and runtime.

The scenario the paper's introduction motivates: you have an optimized
boolean network and an FPGA with K-input lookup tables — which mapping
algorithm should you use, and what does each trade away?

Run:  python examples/compare_mappers.py [circuit] [-k 4]
      (circuit is an MCNC profile name, default "count")
"""

import argparse
import time

from repro.baseline import MisMapper
from repro.bench.mcnc import MCNC_PROFILES, mcnc_circuit
from repro.core import ChortleMapper
from repro.extensions import BinPackMapper, DepthBoundedMapper, FlowMapper
from repro.network import network_stats
from repro.verify import verify_equivalence

MAPPERS = [
    ("chortle", "exhaustive decomposition DP (the paper)",
     lambda k: ChortleMapper(k=k)),
    ("mis", "library-based tree covering (the baseline)",
     lambda k: MisMapper(k=k)),
    ("binpack", "FFD bin packing (Chortle-crf lineage)",
     lambda k: BinPackMapper(k=k)),
    ("flowmap", "depth-optimal max-flow labelling",
     lambda k: FlowMapper(k=k)),
    ("depthbnd", "min area at min forest depth (Chortle-d)",
     lambda k: DepthBoundedMapper(k=k, slack=0)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "circuit", nargs="?", default="count", choices=sorted(MCNC_PROFILES)
    )
    parser.add_argument("-k", type=int, default=4)
    args = parser.parse_args()

    net = mcnc_circuit(args.circuit)
    print(network_stats(net))
    print()
    header = "%-8s %8s %8s %8s %9s   %s" % (
        "mapper", "LUTs", "all", "depth", "time", "notes",
    )
    print(header)
    print("-" * (len(header) + 16))
    for name, notes, factory in MAPPERS:
        mapper = factory(args.k)
        start = time.perf_counter()
        circuit = mapper.map(net)
        elapsed = time.perf_counter() - start
        verify_equivalence(net, circuit, vectors=512)
        print(
            "%-8s %8d %8d %8d %8.2fs   %s"
            % (name, circuit.cost, circuit.num_luts, circuit.depth(), elapsed, notes)
        )
    print()
    print(
        "LUTs = multi-input tables (the paper's area metric); "
        "'all' includes interface inverters/buffers."
    )


if __name__ == "__main__":
    main()
