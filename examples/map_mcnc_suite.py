#!/usr/bin/env python
"""Reproduce the paper's Tables 1-4 on the MCNC-89 stand-in suite.

Maps every benchmark with both Chortle and the MIS II-style baseline for
K = 2..5 and prints the comparison tables (LUT counts, % difference,
runtimes).  This is the script version of ``pytest benchmarks/``; use
``--quick`` to map only the small circuits.

Run:  python examples/map_mcnc_suite.py [--quick] [-k 4]
"""

import argparse
import time

from repro.baseline import MisMapper
from repro.bench.mcnc import TABLE_CIRCUITS, mcnc_circuit
from repro.core import ChortleMapper
from repro.verify import verify_equivalence

QUICK = ("9symml", "alu2", "apex7", "count", "frg1")


def run_table(k: int, circuits) -> None:
    header = "%-8s %9s %9s %7s %9s %9s" % (
        "Circuit", "MIS", "Chortle", "%", "t MIS", "t Chtl",
    )
    print()
    print("Table (K=%d)" % k)
    print(header)
    print("-" * len(header))
    gains = []
    for name in circuits:
        net = mcnc_circuit(name)
        start = time.perf_counter()
        mis = MisMapper(k=k).map(net)
        t_mis = time.perf_counter() - start
        start = time.perf_counter()
        chortle = ChortleMapper(k=k).map(net)
        t_chortle = time.perf_counter() - start
        verify_equivalence(net, chortle, vectors=256)
        verify_equivalence(net, mis, vectors=256)
        gain = 100.0 * (mis.cost - chortle.cost) / mis.cost
        gains.append(gain)
        print(
            "%-8s %9d %9d %6.1f%% %8.2fs %8.2fs"
            % (name, mis.cost, chortle.cost, gain, t_mis, t_chortle)
        )
    print("-" * len(header))
    print("average Chortle gain: %.1f%%" % (sum(gains) / len(gains)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small circuits only")
    parser.add_argument(
        "-k", type=int, default=None, help="run a single K instead of 2..5"
    )
    args = parser.parse_args()
    circuits = QUICK if args.quick else TABLE_CIRCUITS
    ks = [args.k] if args.k else [2, 3, 4, 5]
    for k in ks:
        run_table(k, circuits)


if __name__ == "__main__":
    main()
