#!/usr/bin/env python
"""Run a suite sweep and export machine-readable results (JSON + CSV).

The regression-tracking scenario: nightly CI maps the benchmark suite
with every mapper and diffs the numbers against the last release.

Run:  python examples/export_results.py [-o results] [--quick]
"""

import argparse
import pathlib

from repro.bench.runner import run_suite

QUICK = ("count", "frg1", "apex7")
FULL = ("9symml", "alu2", "apex7", "count", "frg1", "k2")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="results", help="output stem")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    circuits = QUICK if args.quick else FULL
    result = run_suite(
        circuits,
        mappers=("chortle", "mis", "binpack", "depthbounded"),
        ks=(3, 4),
        verify=True,
    )

    json_path = pathlib.Path(args.output + ".json")
    csv_path = pathlib.Path(args.output + ".csv")
    json_path.write_text(result.to_json())
    csv_path.write_text(result.to_csv())
    print("wrote %s and %s (%d reports)" % (json_path, csv_path, len(result.reports)))

    for k in (3, 4):
        gains = result.comparison(k, baseline="mis", challenger="chortle")
        avg = sum(gains.values()) / len(gains)
        print(
            "K=%d: Chortle vs MIS average gain %.1f%% over %d circuits"
            % (k, avg, len(gains))
        )


if __name__ == "__main__":
    main()
