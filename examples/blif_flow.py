#!/usr/bin/env python
"""A realistic CAD flow: BLIF in, optimized, mapped, BLIF out, checked.

Models the paper's experimental setup end to end: a two-level BLIF
design is algebraically factored (the MIS-script role), swept, mapped
for a K-input LUT FPGA, written back as BLIF, and independently
re-verified from the emitted file.

Run:  python examples/blif_flow.py [-k 4]
"""

import argparse

from repro.blif import blif_to_network, parse_blif, write_lut_circuit
from repro.core import ChortleMapper
from repro.network import network_stats
from repro.opt import factored_network_from_blif, mis_script
from repro.verify import verify_equivalence

# A small two-level design: a 4-bit comparator slice plus parity.
DESIGN = """
.model cmp4
.inputs a0 a1 a2 a3 b0 b1 b2 b3
.outputs eq gt par
.names a0 b0 e0
11 1
00 1
.names a1 b1 e1
11 1
00 1
.names a2 b2 e2
11 1
00 1
.names a3 b3 e3
11 1
00 1
.names e0 e1 e2 e3 eq
1111 1
.names a3 b3 a2 b2 a1 b1 a0 b0 gt
10------ 1
1110---- 1
0010---- 1
111110-- 1
110010-- 1
001110-- 1
000010-- 1
11111110 1
11001110 1
00111110 1
00001110 1
11110010 1
11000010 1
00110010 1
00000010 1
.names a0 a1 a2 a3 par
1000 1
0100 1
0010 1
0001 1
1110 1
1101 1
1011 1
0111 1
.end
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-k", type=int, default=4)
    args = parser.parse_args()

    model = parse_blif(DESIGN)
    print("parsed BLIF model %r: %d tables" % (model.name, len(model.tables)))

    # Logic optimization: factor each SOP table into multi-level AND/OR
    # form and sweep (the role MIS II plays in the paper's flow).
    two_level = blif_to_network(model)
    optimized = mis_script(factored_network_from_blif(model))
    print("two-level:  %s" % network_stats(two_level))
    print("optimized:  %s" % network_stats(optimized))

    circuit = ChortleMapper(k=args.k).map(optimized)
    print(
        "mapped to %d %d-input lookup tables (depth %d)"
        % (circuit.cost, args.k, circuit.depth())
    )

    verify_equivalence(optimized, circuit)
    # Independent check: re-read the emitted BLIF and compare to the
    # original two-level network.
    emitted = blif_to_network(parse_blif(write_lut_circuit(circuit)))
    from repro.network.simulate import output_truth_tables

    original_tts = output_truth_tables(two_level)
    emitted_tts = output_truth_tables(emitted)
    for port, tt in original_tts.items():
        assert emitted_tts[port] == tt, port
    print("emitted BLIF re-parsed and proven equivalent to the source design")

    # Downstream-tool handoff: timing/wiring analysis and Verilog.
    from repro.analysis import analyze_timing, analyze_wiring
    from repro.verilog import write_verilog

    timing = analyze_timing(circuit)
    wiring = analyze_wiring(circuit)
    print(
        "critical path (%d levels, port %r): %s"
        % (timing.depth, timing.critical_port, " -> ".join(timing.critical_path))
    )
    print(
        "nets %d, pins %d, max fanout %d"
        % (wiring.num_nets, wiring.total_pins, wiring.max_fanout)
    )
    verilog = write_verilog(circuit, module_name="cmp4_mapped")
    print("structural Verilog: %d lines (module cmp4_mapped)" % len(verilog.splitlines()))


if __name__ == "__main__":
    main()
