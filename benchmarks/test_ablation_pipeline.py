"""Ablation: the composed flows vs their individual ingredients.

``map_area`` (sweep → strash → refactor → Chortle → LUT merge) and
``map_delay`` (same front end → depth-bounded mapping → merge) stack the
repository's passes; this benchmark quantifies what each composition
buys over plain Chortle and plain FlowMap.
"""

import pytest

from benchmarks.common import get_network, run_mapper
from repro.pipeline import map_area, map_delay
from repro.verify import verify_equivalence

SAMPLE = ("count", "frg1", "apex7")
_CACHE = {}


def composed(name, kind):
    key = (name, kind)
    if key not in _CACHE:
        net = get_network(name)
        circuit = map_area(net, k=4) if kind == "area" else map_delay(net, k=4)
        verify_equivalence(net, circuit, vectors=256)
        _CACHE[key] = circuit
    return _CACHE[key]


@pytest.mark.parametrize("name", SAMPLE)
def test_area_flow_never_worse(name):
    assert composed(name, "area").cost <= run_mapper(name, 4, "chortle").cost


@pytest.mark.parametrize("name", SAMPLE)
def test_delay_flow_dominates_flowmap(name):
    fm = run_mapper(name, 4, "flowmap")
    fast = composed(name, "delay")
    assert fast.cost <= fm.cost
    assert fast.depth() <= fm.depth + 2


@pytest.mark.parametrize("name", SAMPLE)
def test_area_flow_bench(benchmark, name):
    net = get_network(name)
    circuit = benchmark.pedantic(
        lambda: map_area(net, k=4), rounds=1, iterations=1
    )
    assert circuit.cost > 0


def test_pipeline_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Composed flows, K=4 (LUTs/depth):")
    header = "%-8s %12s %12s %12s %12s" % (
        "Circuit", "Chortle", "map_area", "FlowMap", "map_delay",
    )
    print(header)
    print("-" * len(header))
    for name in SAMPLE:
        ch = run_mapper(name, 4, "chortle")
        fm = run_mapper(name, 4, "flowmap")
        area = composed(name, "area")
        delay = composed(name, "delay")
        print(
            "%-8s %12s %12s %12s %12s"
            % (
                name,
                "%d/%d" % (ch.cost, ch.depth),
                "%d/%d" % (area.cost, area.depth()),
                "%d/%d" % (fm.cost, fm.depth),
                "%d/%d" % (delay.cost, delay.depth()),
            )
        )
