"""Table 1 of the paper: MIS II vs Chortle at K=2.

Reproduces the per-circuit lookup-table counts and runtimes over the
12-circuit MCNC-89 stand-in suite.  The paper's headline for this table
is checked by the summary test; per-circuit timings are captured by
pytest-benchmark.
"""

import pytest

from benchmarks.common import TABLE_CIRCUITS, print_table, run_mapper

K = 2


@pytest.mark.parametrize("name", TABLE_CIRCUITS)
def test_chortle(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_mapper(name, K, "chortle"), rounds=1, iterations=1
    )
    assert result.cost > 0


@pytest.mark.parametrize("name", TABLE_CIRCUITS)
def test_mis(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_mapper(name, K, "mis"), rounds=1, iterations=1
    )
    assert result.cost > 0


def test_summary_shape(benchmark):
    """The paper's Table 1 shape at K=2."""
    avg_gain, time_ratio = benchmark.pedantic(
        lambda: print_table(K), rounds=1, iterations=1
    )
    for name in TABLE_CIRCUITS:
        mis = run_mapper(name, K, "mis")
        chortle = run_mapper(name, K, "chortle")
        # Chortle is optimal per tree; MIS can only win via reconvergent
        # fanout it happens to merge (the paper saw the same at K=2).
        assert chortle.cost <= mis.cost + max(3, mis.cost // 20)
    # K=2: "the results are almost identical" (complete library, forced
    # binary decomposition).
    assert abs(avg_gain) < 2.0
