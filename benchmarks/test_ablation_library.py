"""Ablation for Section 4.1: library coverage.

The paper argues the MIS baseline's K>=4 losses come from library
incompleteness (a complete K=4 library would need thousands of cells).
This benchmark maps the suite sample with progressively poorer libraries
and shows cost rising as coverage drops — and Chortle, which needs no
library at all, sitting at or below the richest library's results.
"""


import pytest

from benchmarks.common import get_network, run_mapper
from repro.baseline.library import Library
from repro.baseline.mis_mapper import MisMapper
from repro.truth.truthtable import TruthTable

SAMPLE = ("count", "frg1", "apex7")


def tiny_library(k: int) -> Library:
    """AND2/OR2 only: the poorest usable library."""
    lib = Library("tiny", k)
    a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
    lib.add(a & b)
    lib.add(a | b)
    return lib


def gates_library(k: int) -> Library:
    """Simple gates up to k inputs, but no multi-level kernel shapes."""
    lib = Library("gates", k)
    for n in range(2, k + 1):
        and_n = TruthTable.const(True, n)
        or_n = TruthTable.const(False, n)
        for j in range(n):
            and_n = and_n & TruthTable.var(j, n)
            or_n = or_n | TruthTable.var(j, n)
        lib.add(and_n)
        lib.add(or_n)
    return lib


@pytest.mark.parametrize("name", SAMPLE)
def test_coverage_ordering(name):
    """More coverage can only help: tiny >= gates >= kernel >= Chortle."""
    k = 4
    net = get_network(name)
    cost_tiny = MisMapper(k=k, library=tiny_library(k)).map(net).cost
    cost_gates = MisMapper(k=k, library=gates_library(k)).map(net).cost
    cost_kernel = run_mapper(name, k, "mis").cost
    cost_chortle = run_mapper(name, k, "chortle").cost
    assert cost_tiny >= cost_gates >= cost_kernel
    assert cost_kernel >= cost_chortle - max(2, cost_chortle // 20)


@pytest.mark.parametrize("name", SAMPLE)
def test_kernel_library_bench(benchmark, name):
    net = get_network(name)
    mapper = MisMapper(k=4)
    circuit = benchmark.pedantic(lambda: mapper.map(net), rounds=1, iterations=1)
    assert circuit.cost > 0


def test_library_coverage_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Library-coverage ablation at K=4 (lookup tables):")
    header = "%-8s %8s %8s %8s %10s" % (
        "Circuit", "AND2/OR2", "gates", "kernels", "Chortle",
    )
    print(header)
    print("-" * len(header))
    for name in SAMPLE:
        net = get_network(name)
        cost_tiny = MisMapper(k=4, library=tiny_library(4)).map(net).cost
        cost_gates = MisMapper(k=4, library=gates_library(4)).map(net).cost
        cost_kernel = run_mapper(name, 4, "mis").cost
        cost_chortle = run_mapper(name, 4, "chortle").cost
        print(
            "%-8s %8d %8d %8d %10d"
            % (name, cost_tiny, cost_gates, cost_kernel, cost_chortle)
        )
