"""Ablation: what the exhaustive decomposition search buys.

Chortle's defining feature is considering *all* decompositions of every
node (Section 3.1.3).  This benchmark replaces that search with the
first-fit-decreasing bin packer (the Chortle-crf lineage) and measures
the area cost of giving it up, per K, over a sample of the suite.
"""

import pytest

from benchmarks.common import run_mapper

SAMPLE = ("count", "frg1", "apex7", "alu2", "k2")


@pytest.mark.parametrize("k", [2, 3, 4, 5])
@pytest.mark.parametrize("name", SAMPLE)
def test_exhaustive_never_much_worse(name, k):
    """Per tree the DP is optimal *below the split threshold*; circuits
    with fanin-11+ nodes (which Section 3.1.4 splits, forfeiting the
    guarantee) can cede a LUT or two to the packer, never more."""
    exact = run_mapper(name, k, "chortle")
    packed = run_mapper(name, k, "binpack")
    assert exact.cost <= packed.cost + 2


@pytest.mark.parametrize("name", SAMPLE)
def test_binpack_speed(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_mapper(name, 5, "binpack"), rounds=1, iterations=1
    )
    assert result.cost > 0


def test_decomposition_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Decomposition-search ablation (exhaustive vs FFD bin packing):")
    header = "%-8s %4s %10s %10s %8s" % ("Circuit", "K", "exhaustive", "binpack", "loss")
    print(header)
    print("-" * len(header))
    losses = []
    for name in SAMPLE:
        for k in (3, 4, 5):
            exact = run_mapper(name, k, "chortle")
            packed = run_mapper(name, k, "binpack")
            loss = 100.0 * (packed.cost - exact.cost) / exact.cost
            losses.append(loss)
            print(
                "%-8s %4d %10d %10d %7.1f%%"
                % (name, k, exact.cost, packed.cost, loss)
            )
    avg = sum(losses) / len(losses)
    print("average area loss without exhaustive search: %.1f%%" % avg)
    # The heuristic tracks the exhaustive search closely on this suite;
    # slightly negative per-circuit values happen only where node
    # splitting (fanin > 10) forfeits the DP's optimality guarantee.
    assert -2.0 <= avg < 25.0
