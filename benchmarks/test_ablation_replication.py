"""Ablation for Section 5 future work: logic duplication at fanout nodes.

The paper ends with "optimizations that may result from the duplication
of logic at fanout nodes" as an open question, noting that MIS's greedy
duplication rarely paid off.  This benchmark answers the question on the
stand-in suite: duplicating small shared gates before mapping sometimes
helps and sometimes hurts — the honest mixed result the paper hints at.
"""

import pytest

from benchmarks.common import get_network, run_mapper
from repro.core.chortle import ChortleMapper
from repro.extensions.replicate import replicate_fanout_nodes
from repro.verify import verify_equivalence

SAMPLE = ("count", "frg1", "apex7", "alu2")


@pytest.mark.parametrize("name", SAMPLE)
def test_replicated_mapping_correct(name):
    net = get_network(name)
    replicated = replicate_fanout_nodes(net, max_fanin=2, max_fanout=2)
    circuit = ChortleMapper(k=4).map(replicated)
    verify_equivalence(replicated, circuit, vectors=256)


@pytest.mark.parametrize("name", SAMPLE)
def test_replication_bench(benchmark, name):
    net = get_network(name)

    def run():
        replicated = replicate_fanout_nodes(net, max_fanin=2, max_fanout=2)
        return ChortleMapper(k=4).map(replicated)

    circuit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert circuit.cost > 0


def test_replication_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Fanout-duplication ablation, K=4 (lookup tables):")
    from repro.extensions.replicate import replicate_until_tree

    header = "%-8s %8s %12s %12s %12s" % (
        "Circuit", "plain", "dup(2-in)", "dup(4-in)", "dup(full)",
    )
    print(header)
    print("-" * len(header))
    deltas = []
    for name in SAMPLE:
        net = get_network(name)
        plain = run_mapper(name, 4, "chortle").cost
        conservative = ChortleMapper(k=4).map(
            replicate_fanout_nodes(net, max_fanin=2, max_fanout=2)
        ).cost
        aggressive = ChortleMapper(k=4).map(
            replicate_fanout_nodes(net, max_fanin=4, max_fanout=4)
        ).cost
        full = ChortleMapper(k=4).map(
            replicate_until_tree(net, max_growth=3.0)
        ).cost
        deltas.append(conservative - plain)
        print(
            "%-8s %8d %12d %12d %12d"
            % (name, plain, conservative, aggressive, full)
        )
    # The mixed-result claim: conservative duplication is within a few
    # percent either way; it is not a uniform win.
    assert any(d <= 0 for d in deltas) or min(deltas) < 10
