"""Table 4 of the paper: MIS II vs Chortle at K=5.

Reproduces the per-circuit lookup-table counts and runtimes over the
12-circuit MCNC-89 stand-in suite.  The paper's headline for this table
is checked by the summary test; per-circuit timings are captured by
pytest-benchmark.
"""

import pytest

from benchmarks.common import TABLE_CIRCUITS, print_table, run_mapper

K = 5


@pytest.mark.parametrize("name", TABLE_CIRCUITS)
def test_chortle(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_mapper(name, K, "chortle"), rounds=1, iterations=1
    )
    assert result.cost > 0


@pytest.mark.parametrize("name", TABLE_CIRCUITS)
def test_mis(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_mapper(name, K, "mis"), rounds=1, iterations=1
    )
    assert result.cost > 0


def test_summary_shape(benchmark):
    """The paper's Table 4 shape at K=5."""
    avg_gain, time_ratio = benchmark.pedantic(
        lambda: print_table(K), rounds=1, iterations=1
    )
    for name in TABLE_CIRCUITS:
        mis = run_mapper(name, K, "mis")
        chortle = run_mapper(name, K, "chortle")
        # Chortle is optimal per tree; MIS can only win via reconvergent
        # fanout it happens to merge (the paper saw the same at K=2).
        assert chortle.cost <= mis.cost + max(3, mis.cost // 20)
    # K=5: the paper's largest gap (~14%): lowest library coverage.
    assert avg_gain > 3.0
    # "The execution speed of Chortle ranges from a factor of 1 to 10
    # times faster than MIS II."  At K=5 the baseline's 5-input Boolean
    # matching is at its most expensive, so Chortle should not lose;
    # allow for wall-clock noise in shared benchmark sessions.
    assert time_ratio > 0.8
