"""The paper's thesis, demonstrated past its own table range.

Chortle's whole argument is that a K-input lookup table implements any
function of K inputs, so no library is needed — and therefore nothing
special happens as K grows.  The library-based flow, by contrast, needs
2^2^K functions: already unenumerable at K=4 (the paper's Section 1),
and our NP-closure matching becomes intractable past K=5.  This
benchmark maps the suite sample at K = 2..8 with the library-free
mappers and shows the baseline hitting its wall.
"""

import pytest

from benchmarks.common import get_network
from repro.baseline.mis_mapper import MisMapper
from repro.core.chortle import ChortleMapper
from repro.errors import LibraryError
from repro.verify import verify_equivalence

SAMPLE = ("count", "frg1")
WIDE_KS = (2, 3, 4, 5, 6, 7, 8)


@pytest.mark.parametrize("name", SAMPLE)
@pytest.mark.parametrize("k", [6, 8])
def test_chortle_maps_any_k(name, k):
    net = get_network(name)
    circuit = ChortleMapper(k=k).map(net)
    verify_equivalence(net, circuit, vectors=256)
    circuit.validate(k)


def test_library_flow_hits_its_wall():
    """A complete K=4 library is refused (2^16 functions), and the kernel
    library is capped where NP matching becomes intractable."""
    from repro.baseline.library import complete_library

    with pytest.raises(LibraryError):
        complete_library(4)
    with pytest.raises(LibraryError):
        MisMapper(k=6)


@pytest.mark.parametrize("name", SAMPLE)
def test_wide_k_bench(benchmark, name):
    net = get_network(name)
    mapper = ChortleMapper(k=8)
    circuit = benchmark.pedantic(lambda: mapper.map(net), rounds=1, iterations=1)
    assert circuit.cost > 0


def test_wide_k_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Library-free scaling: Chortle LUT counts for K = 2..8")
    header = "%-8s " % "Circuit" + " ".join("K=%d" % k for k in WIDE_KS)
    print(header)
    print("-" * len(header))
    for name in SAMPLE:
        net = get_network(name)
        costs = [ChortleMapper(k=k).map(net).cost for k in WIDE_KS]
        print("%-8s " % name + " ".join("%3d" % c for c in costs))
        # Monotone: more LUT inputs never cost area.
        assert all(a >= b for a, b in zip(costs, costs[1:]))
    print("(the library-based baseline cannot be built past K=5 at all)")
