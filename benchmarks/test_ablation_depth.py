"""Ablation: the area/depth trade-off curve (Chortle-d direction).

Sweeps the depth slack of :class:`DepthBoundedMapper` from 0 (minimum
forest-respecting depth) upward and reports the lookup-table cost at
each point, bracketed by FlowMap (depth-optimal, area-expensive) and
Chortle (area-optimal, depth-oblivious).
"""

import pytest

from benchmarks.common import get_network, run_mapper
from repro.extensions.pareto import DepthBoundedMapper
from repro.verify import verify_equivalence

SAMPLE = ("count", "frg1", "apex7")


@pytest.mark.parametrize("name", SAMPLE)
def test_depth_bounded_bench(benchmark, name):
    net = get_network(name)
    mapper = DepthBoundedMapper(k=4, slack=0)
    circuit = benchmark.pedantic(lambda: mapper.map(net), rounds=1, iterations=1)
    assert circuit.cost > 0


@pytest.mark.parametrize("name", SAMPLE)
def test_depth_bound_respected(name):
    net = get_network(name)
    mapper = DepthBoundedMapper(k=4, slack=0)
    circuit = mapper.map(net)
    verify_equivalence(net, circuit, vectors=256)
    assert circuit.depth() <= mapper.optimal_depth(net)


def test_tradeoff_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Area/depth trade-off (K=4): slack sweep of DepthBoundedMapper")
    header = "%-8s %10s %14s %14s %14s %12s" % (
        "Circuit", "FlowMap", "slack=0", "slack=2", "slack=inf", "Chortle",
    )
    print(header)
    print("-" * len(header))
    for name in SAMPLE:
        net = get_network(name)
        fm = run_mapper(name, 4, "flowmap")
        ch = run_mapper(name, 4, "chortle")
        cells = []
        for slack in (0, 2, 10_000):
            circuit = DepthBoundedMapper(k=4, slack=slack).map(net)
            cells.append("%d/%d" % (circuit.cost, circuit.depth()))
        print(
            "%-8s %10s %14s %14s %14s %12s"
            % (
                name,
                "%d/%d" % (fm.cost, fm.depth),
                cells[0],
                cells[1],
                cells[2],
                "%d/%d" % (ch.cost, ch.depth),
            )
        )
    print("cells are LUTs/depth; slack=inf recovers Chortle's area.")
    # Sanity on the trade-off direction for one circuit.
    net = get_network(SAMPLE[0])
    tight = DepthBoundedMapper(k=4, slack=0).map(net)
    loose = DepthBoundedMapper(k=4, slack=10_000).map(net)
    assert tight.depth() <= loose.depth()
    assert tight.cost >= loose.cost
