"""Robustness check: the headline gap is not an artifact of one seed.

The synthetic workloads replace the MCNC netlists, so the key validity
question is whether the Chortle-vs-MIS gap depends on the particular
random circuits drawn.  This benchmark regenerates one mid-size profile
under several seeds and reports the per-seed gap at each K: the sign and
rough magnitude must be stable.
"""

import statistics

import pytest

from repro.baseline.mis_mapper import MisMapper
from repro.bench.generator import GeneratorConfig, random_network
from repro.core.chortle import ChortleMapper

SEEDS = (11, 23, 37, 51, 73)
_CACHE = {}


def gap_for(seed: int, k: int) -> float:
    key = (seed, k)
    if key not in _CACHE:
        net = random_network(GeneratorConfig(45, 45, 500, seed=seed))
        chortle = ChortleMapper(k=k).map(net).cost
        mis = MisMapper(k=k).map(net).cost
        _CACHE[key] = 100.0 * (mis - chortle) / mis
    return _CACHE[key]


@pytest.mark.parametrize("seed", SEEDS)
def test_seed_bench(benchmark, seed):
    result = benchmark.pedantic(lambda: gap_for(seed, 4), rounds=1, iterations=1)
    assert result is not None


def test_seed_robustness_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Seed-robustness of the Chortle-vs-MIS gap (500-gate profile):")
    header = "%-6s " % "K" + " ".join("s=%-4d" % s for s in SEEDS) + "   mean   stdev"
    print(header)
    print("-" * len(header))
    for k in (2, 3, 4, 5):
        gaps = [gap_for(seed, k) for seed in SEEDS]
        print(
            "%-6d " % k
            + " ".join("%+5.1f%%" % g for g in gaps)
            + "  %+5.1f%% %6.2f" % (statistics.mean(gaps), statistics.stdev(gaps))
        )
    # Stability assertions: near-zero at K=2, clearly positive at K>=3,
    # with modest spread.
    k2 = [gap_for(s, 2) for s in SEEDS]
    assert max(abs(g) for g in k2) < 2.5
    for k in (3, 4, 5):
        gaps = [gap_for(s, k) for s in SEEDS]
        assert min(gaps) > 1.0
        assert statistics.stdev(gaps) < 5.0
