"""Shared infrastructure for the paper-table benchmarks.

Each of Tables 1-4 compares the number of lookup tables and the runtime
of MIS II and Chortle over the 12 MCNC-89 circuits at one value of K.
Networks and mapping results are cached per-process so the per-circuit
pytest-benchmark timings and the printed summary table share one run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.baseline.mis_mapper import MisMapper
from repro.bench.mcnc import TABLE_CIRCUITS, mcnc_circuit
from repro.core.chortle import ChortleMapper
from repro.core.lut import LUTCircuit
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper
from repro.verify import verify_equivalence

_NETWORKS: Dict[str, object] = {}
_RESULTS: Dict[Tuple[str, int, str], "MapResult"] = {}

MAPPERS = {
    "chortle": lambda k: ChortleMapper(k=k),
    "mis": lambda k: MisMapper(k=k),
    "flowmap": lambda k: FlowMapper(k=k),
    "binpack": lambda k: BinPackMapper(k=k),
}


@dataclass(frozen=True)
class MapResult:
    circuit_name: str
    k: int
    mapper: str
    cost: int
    num_luts: int
    depth: int
    seconds: float


def get_network(name: str):
    if name not in _NETWORKS:
        _NETWORKS[name] = mcnc_circuit(name)
    return _NETWORKS[name]


def run_mapper(name: str, k: int, mapper: str, verify: bool = False) -> MapResult:
    """Map circuit `name` at the given K, caching the result."""
    key = (name, k, mapper)
    if key in _RESULTS:
        return _RESULTS[key]
    net = get_network(name)
    instance = MAPPERS[mapper](k)
    start = time.perf_counter()
    circuit: LUTCircuit = instance.map(net)
    seconds = time.perf_counter() - start
    if verify:
        verify_equivalence(net, circuit, vectors=256)
    result = MapResult(
        circuit_name=name,
        k=k,
        mapper=mapper,
        cost=circuit.cost,
        num_luts=circuit.num_luts,
        depth=circuit.depth(),
        seconds=seconds,
    )
    _RESULTS[key] = result
    return result


def print_table(k: int, circuits=TABLE_CIRCUITS) -> Tuple[float, float]:
    """Print a Table 1-4 style comparison; returns (avg % gain, speed ratio)."""
    header = (
        "%-8s %9s %9s %7s %9s %9s" % ("Circuit", "MIS", "Chortle", "%", "t MIS", "t Chtl")
    )
    print()
    print("Table (K=%d): lookup tables and mapping time, MIS II vs Chortle" % k)
    print(header)
    print("-" * len(header))
    total_gain = 0.0
    total_mis_time = 0.0
    total_chortle_time = 0.0
    for name in circuits:
        mis = run_mapper(name, k, "mis")
        chortle = run_mapper(name, k, "chortle")
        gain = 100.0 * (mis.cost - chortle.cost) / mis.cost if mis.cost else 0.0
        total_gain += gain
        total_mis_time += mis.seconds
        total_chortle_time += chortle.seconds
        print(
            "%-8s %9d %9d %6.1f%% %8.2fs %8.2fs"
            % (name, mis.cost, chortle.cost, gain, mis.seconds, chortle.seconds)
        )
    avg_gain = total_gain / len(circuits)
    ratio = total_mis_time / total_chortle_time if total_chortle_time else 0.0
    print("-" * len(header))
    print(
        "average Chortle gain: %.1f%%   MIS/Chortle time ratio: %.2fx"
        % (avg_gain, ratio)
    )
    return avg_gain, ratio
