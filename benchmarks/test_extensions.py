"""Benchmarks for the post-paper extensions (Section 5 directions).

FlowMap (depth-optimal mapping) against Chortle (area-optimal per tree):
the classic area/depth trade-off that the paper's closing section points
toward.
"""

import pytest

from benchmarks.common import get_network, run_mapper

SAMPLE = ("count", "frg1", "alu2", "apex7")


@pytest.mark.parametrize("name", SAMPLE)
def test_flowmap_depth_never_much_worse(name):
    """FlowMap's optimum is per subject graph; Chortle's restructuring of
    wide nodes can occasionally undercut it by a level or two."""
    fm = run_mapper(name, 4, "flowmap")
    ch = run_mapper(name, 4, "chortle")
    assert fm.depth <= ch.depth + 2


@pytest.mark.parametrize("name", SAMPLE)
def test_flowmap_bench(benchmark, name):
    result = benchmark.pedantic(
        lambda: run_mapper(name, 4, "flowmap"), rounds=1, iterations=1
    )
    assert result.cost > 0


@pytest.mark.parametrize("name", SAMPLE)
def test_clb_packing_bench(benchmark, name):
    """Packing K=4 mappings into XC3000-style two-output CLBs."""
    from repro.core.chortle import ChortleMapper
    from repro.extensions.clb import pack_clbs

    net = get_network(name)
    circuit = ChortleMapper(k=4).map(net)
    packing = benchmark.pedantic(
        lambda: pack_clbs(circuit), rounds=1, iterations=1
    )
    assert packing.num_clbs <= circuit.num_luts
    assert packing.num_clbs >= (circuit.num_luts + 1) // 2


def test_clb_packing_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.core.chortle import ChortleMapper
    from repro.extensions.clb import pack_clbs

    print()
    print("Commercial-architecture extension: XC3000-style CLB packing (K=4):")
    header = "%-8s %8s %8s %10s" % ("Circuit", "LUTs", "CLBs", "LUTs/CLB")
    print(header)
    print("-" * len(header))
    for name in SAMPLE:
        net = get_network(name)
        circuit = ChortleMapper(k=4).map(net)
        packing = pack_clbs(circuit)
        print(
            "%-8s %8d %8d %10.2f"
            % (name, circuit.num_luts, packing.num_clbs, packing.packing_ratio)
        )


def test_extension_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Extensions: area-optimal (Chortle) vs depth-optimal (FlowMap), K=4:")
    header = "%-8s %12s %12s %12s %12s" % (
        "Circuit", "Chtl LUTs", "Chtl depth", "FM LUTs", "FM depth",
    )
    print(header)
    print("-" * len(header))
    for name in SAMPLE:
        ch = run_mapper(name, 4, "chortle")
        fm = run_mapper(name, 4, "flowmap")
        print(
            "%-8s %12d %12d %12d %12d"
            % (name, ch.cost, ch.depth, fm.cost, fm.depth)
        )
    # The trade-off direction must hold on aggregate.
    total_ch_depth = sum(run_mapper(n, 4, "chortle").depth for n in SAMPLE)
    total_fm_depth = sum(run_mapper(n, 4, "flowmap").depth for n in SAMPLE)
    assert total_fm_depth < total_ch_depth
