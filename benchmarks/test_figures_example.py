"""Figures 1-3 of the paper: the worked example, regenerated.

* Figure 1 — the example boolean network (hand-coded in
  :func:`repro.bench.circuits.figure1_network`);
* Figure 2 — its implementation in three 3-input lookup tables;
* Figure 3 — the forest of maximal fanout-free trees created by cutting
  the multi-fanout edge.
"""

import pytest

from repro.bench.circuits import figure1_network
from repro.core.chortle import ChortleMapper
from repro.core.forest import build_forest
from repro.verify import verify_equivalence


@pytest.fixture(scope="module")
def fig1():
    return figure1_network()


def test_figure1_network_shape(fig1):
    """Figure 1: 5 inputs, AND/OR nodes with polarity-labelled edges."""
    assert fig1.num_inputs == 5
    assert fig1.num_gates == 4
    assert any(s.inv for g in fig1.gates() for s in g.fanins)


def test_figure3_forest_creation(fig1):
    """Figure 3: the multi-fanout node becomes a pseudo-input, giving a
    forest of two maximal fanout-free trees."""
    forest = build_forest(fig1)
    assert forest.num_trees == 2
    by_root = {t.root: t for t in forest.trees}
    assert set(by_root) == {"g2", "g4"}
    assert "g2" in by_root["g4"].leaves  # the redirected edge of Fig. 3


def test_figure2_three_lut_mapping(fig1, benchmark):
    """Figure 2: the network maps into three 3-input lookup tables."""
    circuit = benchmark.pedantic(
        lambda: ChortleMapper(k=3).map(fig1), rounds=3, iterations=1
    )
    assert circuit.cost == 3
    assert all(lut.utilization <= 3 for lut in circuit.luts())
    verify_equivalence(fig1, circuit)


def test_example_mapping_summary(fig1, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Paper worked example (Figures 1-3):")
    forest = build_forest(fig1)
    print(
        "  forest: %d trees, roots %s"
        % (forest.num_trees, [t.root for t in forest.trees])
    )
    for k in (2, 3, 4, 5):
        circuit = ChortleMapper(k=k).map(fig1)
        verify_equivalence(fig1, circuit)
        print(
            "  K=%d: %d lookup tables (depth %d)"
            % (k, circuit.cost, circuit.depth())
        )
