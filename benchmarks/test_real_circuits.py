"""Structured (non-synthetic) workloads: arithmetic circuits.

The synthetic suite reproduces the paper's *relative* results; this
benchmark complements it with fully deterministic arithmetic netlists
whose functions are known exactly (and bit-verified in the test suite).
XOR-rich reconvergent logic is Chortle's admitted weak spot — the
mapper cannot see sharing across its fanout cuts — so this is where the
baseline's Boolean-matching cuts and the LUT-merge post-pass earn their
keep.
"""

import pytest

from repro.baseline.mis_mapper import MisMapper
from repro.bench.arith import carry_lookahead_adder, popcount, shift_add_multiplier
from repro.core.chortle import ChortleMapper
from repro.extensions.lutmerge import merge_luts
from repro.verify import verify_equivalence

CIRCUITS = {
    "cla8": lambda: carry_lookahead_adder(8),
    "mult4": lambda: shift_add_multiplier(4),
    "popcnt8": lambda: popcount(8),
}

_NETS = {}


def net_for(name):
    if name not in _NETS:
        _NETS[name] = CIRCUITS[name]()
    return _NETS[name]


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_chortle_bench(benchmark, name):
    net = net_for(name)
    mapper = ChortleMapper(k=4)
    circuit = benchmark.pedantic(lambda: mapper.map(net), rounds=1, iterations=1)
    verify_equivalence(net, circuit, vectors=256)


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_mis_bench(benchmark, name):
    net = net_for(name)
    mapper = MisMapper(k=4)
    circuit = benchmark.pedantic(lambda: mapper.map(net), rounds=1, iterations=1)
    verify_equivalence(net, circuit, vectors=256)


def test_real_circuits_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Arithmetic circuits, K=4 (LUTs; +merge = after LUT compaction):")
    header = "%-8s %9s %12s %9s %8s" % (
        "Circuit", "Chortle", "Chtl+merge", "MIS", "gap",
    )
    print(header)
    print("-" * len(header))
    for name in sorted(CIRCUITS):
        net = net_for(name)
        chortle = ChortleMapper(k=4).map(net)
        merged = merge_luts(chortle, 4)
        mis = MisMapper(k=4).map(net)
        gap = 100.0 * (mis.cost - chortle.cost) / mis.cost
        print(
            "%-8s %9d %12d %9d %+7.1f%%"
            % (name, chortle.cost, merged.cost, mis.cost, gap)
        )
    # On XOR-rich logic the sign of the gap may flip (the paper's own
    # reconvergent-fanout caveat); what must hold is that compaction
    # never hurts and everything verifies.
    for name in sorted(CIRCUITS):
        net = net_for(name)
        chortle = ChortleMapper(k=4).map(net)
        assert merge_luts(chortle, 4).cost <= chortle.cost
