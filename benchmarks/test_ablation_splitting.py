"""Ablation for Section 3.1.4: node splitting at fanin > 10.

The paper claims that splitting a wide node into two roughly equal
halves (a) makes the decomposition search tractable and (b) costs no
lookup tables in practice, because wide nodes have many minimum-cost
decompositions.  This benchmark measures both halves of the claim on
circuits rich in wide-fanin nodes.
"""

import time

import pytest

from repro.bench.generator import GeneratorConfig, random_network
from repro.core.chortle import ChortleMapper
from repro.verify import verify_equivalence

# Fanin distribution with a heavy wide tail (up to 13 inputs per node).
WIDE_WEIGHTS = ((2, 0.25), (3, 0.2), (4, 0.15), (6, 0.12), (8, 0.1),
                (10, 0.08), (11, 0.05), (12, 0.03), (13, 0.02))


@pytest.fixture(scope="module")
def wide_network():
    cfg = GeneratorConfig(
        num_inputs=24,
        num_outputs=8,
        num_gates=120,
        seed=0x51,
        fanin_weights=WIDE_WEIGHTS,
    )
    return random_network(cfg)


@pytest.mark.parametrize("k", [4, 5])
def test_split_quality_matches_unsplit(wide_network, k):
    """Splitting at the paper's threshold (10) loses no lookup tables
    compared to exhaustively decomposing up to fanin 13."""
    split = ChortleMapper(k=k, split_threshold=10).map(wide_network)
    unsplit = ChortleMapper(k=k, split_threshold=13).map(wide_network)
    verify_equivalence(wide_network, split, vectors=256)
    assert split.cost <= unsplit.cost + max(1, unsplit.cost // 50)


def test_split_speed(wide_network, benchmark):
    result = benchmark.pedantic(
        lambda: ChortleMapper(k=5, split_threshold=10).map(wide_network),
        rounds=1,
        iterations=1,
    )
    assert result.cost > 0


def test_split_speedup_summary(wide_network, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Node-splitting ablation (Section 3.1.4), K=5:")
    rows = []
    for threshold in (13, 12, 11, 10, 8, 6):
        start = time.perf_counter()
        circuit = ChortleMapper(k=5, split_threshold=threshold).map(wide_network)
        seconds = time.perf_counter() - start
        rows.append((threshold, circuit.cost, seconds))
        print(
            "  split threshold %2d: %4d LUTs in %6.2fs"
            % (threshold, circuit.cost, seconds)
        )
    # The paper's claim: lower thresholds are much faster at (almost)
    # unchanged area.
    full_cost, full_time = rows[0][1], rows[0][2]
    paper_cost, paper_time = rows[3][1], rows[3][2]
    assert paper_time <= full_time
    assert paper_cost <= full_cost * 1.02 + 1
