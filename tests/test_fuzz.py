"""Fuzz tests: malformed inputs must fail cleanly, never crash oddly.

Two layers: structured fuzz (hypothesis-generated BLIF-ish documents fed
to the parser must either parse or raise BlifError) and full-pipeline
fuzz (random valid models round-trip through every transformation with
functions preserved).
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blif.convert import blif_to_network
from repro.blif.parser import parse_blif
from repro.blif.writer import write_network
from repro.errors import BlifError, ReproError
from repro.network.simulate import output_truth_tables


# -- layer 1: hostile text ---------------------------------------------------

_token = st.text(alphabet=string.ascii_lowercase + "012-_.", min_size=1, max_size=6)
_line = st.one_of(
    st.just(".model m"),
    st.just(".inputs a b"),
    st.just(".outputs y"),
    st.just(".end"),
    st.builds(lambda ts: ".names " + " ".join(ts), st.lists(_token, max_size=4)),
    st.builds(lambda ts: " ".join(ts), st.lists(_token, min_size=1, max_size=3)),
    st.builds(lambda t: "." + t, _token),
    st.just("11 1"),
    st.just("0- 0"),
    st.just("# comment"),
    st.just("\\"),
)


@given(st.lists(_line, max_size=20))
@settings(max_examples=200, deadline=None)
def test_parser_never_crashes(lines):
    text = "\n".join(lines)
    try:
        model = parse_blif(text)
    except BlifError:
        return
    except RecursionError:  # pragma: no cover - would be a real bug
        raise
    # If it parsed, the model must be internally consistent enough to
    # convert or to fail conversion with a clean error.
    try:
        blif_to_network(model)
    except ReproError:
        pass


# -- layer 2: random valid models --------------------------------------------


@st.composite
def valid_models(draw):
    num_inputs = draw(st.integers(1, 4))
    inputs = ["i%d" % j for j in range(num_inputs)]
    signals = list(inputs)
    tables = []
    for t in range(draw(st.integers(1, 4))):
        name = "t%d" % t
        width = draw(st.integers(0, min(3, len(signals))))
        cols = draw(
            st.lists(
                st.sampled_from(signals), min_size=width, max_size=width, unique=True
            )
        )
        n_cubes = draw(st.integers(0, 3))
        cubes = [
            "".join(draw(st.sampled_from("01-")) for _ in range(width))
            for _ in range(n_cubes)
        ]
        phase = draw(st.integers(0, 1))
        tables.append((cols, name, cubes, phase))
        signals.append(name)
    output = tables[-1][1]
    lines = [".model fuzz", ".inputs " + " ".join(inputs), ".outputs " + output]
    for cols, name, cubes, phase in tables:
        lines.append(".names " + " ".join(list(cols) + [name]))
        for cube in cubes:
            lines.append(("%s %d" % (cube, phase)) if cube else str(phase))
    lines.append(".end")
    return "\n".join(lines)


@given(valid_models())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_valid_models_full_pipeline(text):
    model = parse_blif(text)
    net = blif_to_network(model)
    # Round-trip through the writer.
    back = blif_to_network(parse_blif(write_network(net)))
    assert output_truth_tables(net) == output_truth_tables(back)
    # And through the mapper.
    from repro.core.chortle import ChortleMapper
    from repro.verify import verify_equivalence

    circuit = ChortleMapper(k=3).map(net)
    verify_equivalence(net, circuit)


@given(valid_models())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_valid_models_optimization_pipeline(text):
    from repro.opt.refactor import refactor_network
    from repro.opt.script import factored_network_from_blif

    model = parse_blif(text)
    baseline = output_truth_tables(blif_to_network(model))
    factored = factored_network_from_blif(model, minimize=True)
    assert output_truth_tables(factored) == baseline
    refactored = refactor_network(factored)
    assert output_truth_tables(refactored) == baseline
