"""Tests for the LUT circuit model."""

import pytest

from repro.core.lut import LUTCircuit
from repro.errors import NetworkError
from repro.truth.truthtable import TruthTable


def xor_circuit():
    c = LUTCircuit("xor")
    c.add_input("a")
    c.add_input("b")
    c.add_lut("g", ("a", "b"), TruthTable.var(0, 2) ^ TruthTable.var(1, 2))
    c.set_output("y", "g")
    return c


class TestConstruction:
    def test_basic(self):
        c = xor_circuit()
        assert c.num_luts == 1
        assert c.cost == 1
        assert c.lut("g").utilization == 2
        assert "g" in c and "a" in c and "zz" not in c

    def test_duplicate_names_rejected(self):
        c = xor_circuit()
        with pytest.raises(NetworkError):
            c.add_input("a")
        with pytest.raises(NetworkError):
            c.add_lut("g", ("a",), TruthTable.var(0, 1))

    def test_arity_mismatch_rejected(self):
        c = xor_circuit()
        with pytest.raises(NetworkError):
            c.add_lut("h", ("a", "b"), TruthTable.var(0, 1))

    def test_duplicate_input_wires_rejected(self):
        c = xor_circuit()
        with pytest.raises(NetworkError):
            c.add_lut("h", ("a", "a"), TruthTable.var(0, 2))

    def test_unknown_lut_lookup(self):
        with pytest.raises(NetworkError):
            xor_circuit().lut("nope")

    def test_empty_port_rejected(self):
        with pytest.raises(NetworkError):
            xor_circuit().set_output("", "g")

    def test_fresh_name(self):
        c = xor_circuit()
        assert c.fresh_name("new") == "new"
        assert c.fresh_name("g") == "g_0"


class TestCostAccounting:
    def test_inverters_not_counted(self):
        """Single-input tables are free, per the paper's accounting."""
        c = xor_circuit()
        c.add_lut("inv", ("g",), ~TruthTable.var(0, 1))
        c.set_output("ny", "inv")
        assert c.num_luts == 2
        assert c.cost == 1

    def test_constants_not_counted(self):
        c = xor_circuit()
        c.add_lut("one", (), TruthTable.const(True, 0))
        assert c.cost == 1

    def test_utilization_histogram(self):
        c = xor_circuit()
        c.add_lut("inv", ("g",), ~TruthTable.var(0, 1))
        assert c.utilization_histogram() == {2: 1, 1: 1}


class TestStructure:
    def test_topological_order(self):
        c = xor_circuit()
        c.add_lut("h", ("g", "a"), TruthTable.var(0, 2) & TruthTable.var(1, 2))
        order = c.topological_order()
        assert order.index("g") < order.index("h")

    def test_depth(self):
        c = xor_circuit()
        c.add_lut("h", ("g", "a"), TruthTable.var(0, 2) & TruthTable.var(1, 2))
        c.set_output("z", "h")
        assert c.depth() == 2

    def test_validate_k_bound(self):
        c = xor_circuit()
        c.validate(2)
        with pytest.raises(NetworkError):
            c.validate(1)

    def test_validate_dangling_wire(self):
        c = LUTCircuit()
        c.add_lut("g", ("ghost",), TruthTable.var(0, 1))
        with pytest.raises(NetworkError):
            c.validate()

    def test_validate_dangling_output(self):
        c = LUTCircuit()
        c.add_input("a")
        c.set_output("y", "ghost")
        with pytest.raises(NetworkError):
            c.validate()


class TestSimulation:
    def test_xor_simulation(self):
        c = xor_circuit()
        vals = c.simulate({"a": 0b0011, "b": 0b0101}, 4)
        assert vals["g"] == 0b0110

    def test_constant_lut_simulation(self):
        c = LUTCircuit()
        c.add_input("a")
        c.add_lut("one", (), TruthTable.const(True, 0))
        c.add_lut("zero", (), TruthTable.const(False, 0))
        vals = c.simulate({"a": 0}, 4)
        assert vals["one"] == 0b1111
        assert vals["zero"] == 0

    def test_missing_input(self):
        with pytest.raises(NetworkError):
            xor_circuit().simulate({}, 4)

    def test_repr(self):
        assert "cost=1" in repr(xor_circuit())
