"""Tests for the observability subsystem (repro.obs)."""

import io
import json
import sys

import pytest

from repro.bench.mcnc import mcnc_circuit
from repro.core.chortle import ChortleMapper
from repro.obs import (
    JsonLinesSink,
    MemorySink,
    MetricsRegistry,
    StderrSink,
    Tracer,
    capture,
    get_tracer,
    metrics,
    recursion_limit,
    render_span_tree,
    span,
)
from repro.obs.tracer import _NULL_SPAN
from repro.pipeline import map_area


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Tests must not leave sinks on the process-wide tracer."""
    tracer = get_tracer()
    before = tracer._sinks
    yield
    assert tracer._sinks == before, "test leaked a tracer sink"


class TestSpans:
    def test_nesting_and_attributes(self):
        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())
        with tracer.span("outer", k=4) as outer:
            with tracer.span("inner", tree="t0") as inner:
                inner.set("luts", 3)
        assert [r.name for r in sink.records] == ["inner", "outer"]
        rec_inner, rec_outer = sink.records
        assert rec_inner.parent_id == rec_outer.span_id
        assert rec_inner.depth == 1
        assert rec_outer.parent_id is None
        assert rec_outer.depth == 0
        assert rec_outer.attrs == {"k": 4}
        assert rec_inner.attrs == {"tree": "t0", "luts": 3}
        assert rec_outer.duration >= rec_inner.duration >= 0.0

    def test_sequential_siblings_share_parent(self):
        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = sink.by_name("a")[0], sink.by_name("b")[0]
        assert a.parent_id == b.parent_id == root.span_id
        assert a.start <= b.start

    def test_null_span_when_no_sink(self):
        tracer = Tracer()
        sp = tracer.span("anything", k=4)
        assert sp is _NULL_SPAN
        # The null span is a reusable, attribute-silent context manager.
        with sp as inner:
            inner.set("ignored", 1)
        assert tracer.span("again") is _NULL_SPAN

    def test_global_span_null_path(self):
        assert span("x") is _NULL_SPAN

    def test_capture_attaches_and_detaches(self):
        tracer = get_tracer()
        assert not tracer.enabled
        with capture() as sink:
            assert tracer.enabled
            with span("captured"):
                pass
        assert not tracer.enabled
        assert [r.name for r in sink.records] == ["captured"]

    def test_exception_still_records_span(self):
        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert [r.name for r in sink.records] == ["boom"]
        assert not tracer._stack

    def test_memory_sink_helpers(self):
        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf"):
                pass
        root = sink.roots()[0]
        assert root.name == "root"
        assert [r.name for r in sink.children(root)] == ["leaf", "leaf"]
        timings = sink.stage_timings()
        assert set(timings) == {"root", "leaf"}
        assert timings["leaf"] == pytest.approx(
            sum(r.duration for r in sink.by_name("leaf"))
        )


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        sink = tracer.add_sink(JsonLinesSink(path))
        with tracer.span("outer", circuit="c"), tracer.span("inner"):
            pass
        sink.close()
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == 1
        assert outer["attrs"] == {"circuit": "c"}
        assert outer["duration"] >= 0.0

    def test_jsonl_stream_target(self):
        buffer = io.StringIO()
        tracer = Tracer()
        tracer.add_sink(JsonLinesSink(buffer))
        with tracer.span("s"):
            pass
        assert json.loads(buffer.getvalue())["name"] == "s"

    def test_stderr_sink_format(self):
        buffer = io.StringIO()
        tracer = Tracer()
        tracer.add_sink(StderrSink(buffer))
        with tracer.span("outer"):
            with tracer.span("inner", n=1):
                pass
        lines = buffer.getvalue().splitlines()
        assert lines[0].startswith("[trace]   inner")
        assert "n=1" in lines[0]
        assert lines[1].startswith("[trace] outer")

    def test_multiple_sinks_all_emit(self):
        tracer = Tracer()
        a = tracer.add_sink(MemorySink())
        b = tracer.add_sink(MemorySink())
        with tracer.span("s"):
            pass
        assert len(a.records) == len(b.records) == 1
        tracer.remove_sink(a)
        with tracer.span("t"):
            pass
        assert len(a.records) == 1 and len(b.records) == 2

    def test_render_span_tree(self):
        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())
        with tracer.span("root"):
            with tracer.span("child", luts=2):
                pass
        text = render_span_tree(sink.records)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "luts=2" in lines[1]

    def test_jsonl_flushes_every_record(self, tmp_path):
        # Crash safety: each record must be on disk the moment its span
        # finishes, without waiting for close().
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        sink = tracer.add_sink(JsonLinesSink(path))
        try:
            with tracer.span("first"):
                pass
            with open(path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            assert len(lines) == 1
            assert json.loads(lines[0])["name"] == "first"
        finally:
            sink.close()

    def test_jsonl_registers_and_unregisters_atexit(self, tmp_path):
        import atexit

        path = str(tmp_path / "trace.jsonl")
        sink = JsonLinesSink(path)
        # close() must unregister so a closed sink is never re-closed at
        # interpreter exit, and must be idempotent.
        sink.close()
        assert sink._handle.closed
        sink.close()
        # Stream-target sinks never touch atexit and close() only flushes.
        buffer = io.StringIO()
        stream_sink = JsonLinesSink(buffer)
        stream_sink.close()
        assert not buffer.closed
        atexit.unregister(sink.close)  # no-op: already unregistered


class TestMetrics:
    def test_counter_accumulation_and_reset(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        reg.count("b", 2)
        assert reg.counter("a") == 5
        assert reg.counter("b") == 2
        assert reg.counter("missing") == 0
        reg.reset()
        assert reg.counter("a") == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.gauge_value("g") == 7.5
        assert reg.gauge_value("missing") is None

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        for value in (2, 8, 5):
            reg.observe("h", value)
        stat = reg.histogram("h")
        assert stat.count == 3
        assert stat.min == 2 and stat.max == 8
        assert stat.mean == pytest.approx(5.0)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 3 and snap["sum"] == 15.0

    def test_counter_delta(self):
        reg = MetricsRegistry()
        reg.count("a", 3)
        before = reg.counters()
        reg.count("a", 2)
        reg.count("new", 1)
        assert reg.counter_delta(before) == {"a": 2, "new": 1}

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.count("c", 1)
        reg.gauge("g", 0.5)
        reg.observe("h", 3)
        json.dumps(reg.snapshot())


class TestRecursionLimit:
    def test_restores_previous_limit(self):
        before = sys.getrecursionlimit()
        with recursion_limit(before + 5000):
            assert sys.getrecursionlimit() == before + 5000
        assert sys.getrecursionlimit() == before

    def test_never_lowers(self):
        before = sys.getrecursionlimit()
        with recursion_limit(10):
            assert sys.getrecursionlimit() == before
        assert sys.getrecursionlimit() == before

    def test_restores_on_exception(self):
        before = sys.getrecursionlimit()
        with pytest.raises(RuntimeError):
            with recursion_limit(before + 1000):
                raise RuntimeError("x")
        assert sys.getrecursionlimit() == before

    def test_chortle_map_does_not_leak_limit(self):
        before = sys.getrecursionlimit()
        net = mcnc_circuit("count")
        ChortleMapper(k=4).map(net)
        assert sys.getrecursionlimit() == before


class TestPipelineIntegration:
    def test_map_area_emits_stage_spans_in_order(self):
        net = mcnc_circuit("9symml")
        before = metrics.counters()
        with capture() as sink:
            circuit = map_area(net, k=4)
        assert circuit.cost > 0

        # Top-level stages under the flow root, in execution order.  The
        # stage index makes every span name unique, so the two strash
        # stages never aggregate into one timing row.
        root = [r for r in sink.records if r.name == "flow.run"][0]
        assert root.attrs["flow"] == "area"
        stages = [r.name for r in sorted(sink.children(root), key=lambda r: r.start)]
        assert stages == [
            "flow.stage.0.sweep",
            "flow.stage.1.strash",
            "flow.stage.2.refactor",
            "flow.stage.3.strash",
            "flow.stage.4.chortle",
            "flow.stage.5.merge",
        ]
        assert len(set(stages)) == len(stages)
        # The mapper core traced under its pipeline stage.
        names = {r.name for r in sink.records}
        assert {"chortle.map", "chortle.map_tree", "transform.sweep"} <= names
        assert root.attrs["luts"] == circuit.cost

        delta = metrics.counter_delta(before)
        assert delta["chortle.minmap_entries"] > 0
        assert delta["chortle.decomp_candidates"] > 0
        assert delta["chortle.luts_emitted"] > 0
        assert delta["chortle.trees_mapped"] > 0
        assert delta["sweep.runs"] > 0

    def test_verify_counters(self):
        from repro.verify import verify_equivalence
        from tests.util import make_random_network

        net = make_random_network(3, num_gates=10)
        circuit = ChortleMapper(k=4).map(net)
        before = metrics.counters()
        with capture() as sink:
            width = verify_equivalence(net, circuit)
        delta = metrics.counter_delta(before)
        assert delta["verify.vectors"] == width
        assert delta["verify.runs"] == 1
        record = sink.by_name("verify.equivalence")[0]
        assert record.attrs["vectors"] == width


class TestConcurrency:
    """Thread/process-safety of the obs primitives under real pools."""

    def test_registry_counts_lose_no_updates(self):
        from concurrent.futures import ThreadPoolExecutor

        registry = MetricsRegistry()

        def bump(_):
            for _ in range(500):
                registry.count("c.hits")
                registry.count("c.bytes", 3)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(bump, range(8)))
        assert registry.counters()["c.hits"] == 8 * 500
        assert registry.counters()["c.bytes"] == 8 * 500 * 3

    def test_registry_observes_lose_no_updates(self):
        from concurrent.futures import ThreadPoolExecutor

        registry = MetricsRegistry()

        def observe(worker):
            for i in range(200):
                registry.observe("h.latency", float(worker * 200 + i))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(observe, range(8)))
        stats = registry.histogram("h.latency")
        assert stats.count == 8 * 200
        assert stats.min == 0.0
        assert stats.max == float(8 * 200 - 1)
        assert stats.total == sum(range(8 * 200))

    def test_span_ids_unique_across_worker_threads(self):
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())

        def work(i):
            with tracer.span("w.outer", worker=i):
                with tracer.span("w.inner"):
                    pass

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(64)))
        records = sink.records
        assert len(records) == 128
        ids = [r.span_id for r in records]
        assert len(set(ids)) == len(ids), "span-id allocation raced"

    def test_worker_spans_have_well_formed_parent_links(self):
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()
        sink = tracer.add_sink(MemorySink())

        def work(i):
            with tracer.span("w.outer", worker=i):
                with tracer.span("w.inner", worker=i):
                    pass

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(32)))
        by_id = {r.span_id: r for r in sink.records}
        outers = [r for r in sink.records if r.name == "w.outer"]
        inners = [r for r in sink.records if r.name == "w.inner"]
        assert len(outers) == len(inners) == 32
        # Thread-local stacks: every outer is a root on its thread, and
        # every inner's parent is the outer from the *same* work item —
        # never a span from a sibling thread.
        for outer in outers:
            assert outer.parent_id is None
            assert outer.depth == 0
        for inner in inners:
            parent = by_id[inner.parent_id]
            assert parent.name == "w.outer"
            assert parent.attrs["worker"] == inner.attrs["worker"]
            assert inner.depth == 1

    def test_global_metrics_registry_under_mapping_pool(self):
        # End to end: parallel tree mapping writes shared counters from
        # pool threads; the delta must equal the serial run's.
        net = mcnc_circuit("count")
        before = metrics.counters()
        ChortleMapper(k=4).map(net)
        serial = metrics.counter_delta(before)["chortle.luts_emitted"]
        before = metrics.counters()
        ChortleMapper(k=4, jobs=4).map(net)
        parallel = metrics.counter_delta(before)["chortle.luts_emitted"]
        assert parallel == serial
