"""Tests for the SAT engine: solver, CNF encoder, and miter checker.

Covers the CDCL solver on hand-built CNF (sat/unsat/assumptions/budget),
random-CNF fuzz against brute force, the Tseitin encoder's special forms,
SAT-vs-exhaustive-simulation agreement on random networks across mappers
(the issue's acceptance fuzz), and per-LUT localization of a
deliberately corrupted LUT with a concrete counterexample.
"""

import itertools
import random

import pytest

from repro.core.chortle import ChortleMapper
from repro.core.lut import LUTCircuit
from repro.errors import SatError, VerificationError
from repro.flow.mappers import resolve_mapper
from repro.network.network import BooleanNetwork, Signal
from repro.network.simulate import exhaustive_input_words, simulate
from repro.sat import (
    CdclSolver,
    Encoder,
    check_equivalence,
    check_per_lut,
    luby,
)
from repro.truth.truthtable import TruthTable
from repro.verify import verify_equivalence

from tests.util import make_random_network


class TestSolver:
    def test_trivial_sat(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        assert s.add_clause([a, b])
        assert s.add_clause([-a])
        assert s.solve()
        assert not s.model_value(a)
        assert s.model_value(b)

    def test_trivial_unsat(self):
        s = CdclSolver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.add_clause([-a]) or not s.solve()

    def test_empty_clause_is_unsat(self):
        s = CdclSolver()
        assert not s.add_clause([])
        assert not s.solve()

    def test_tautology_is_dropped(self):
        s = CdclSolver()
        a = s.new_var()
        assert s.add_clause([a, -a])
        assert s.solve()

    def test_three_var_unsat_core(self):
        # All eight clauses over three variables: classically UNSAT.
        s = CdclSolver()
        lits = [s.new_var() for _ in range(3)]
        for signs in itertools.product((1, -1), repeat=3):
            s.add_clause([sign * lit for sign, lit in zip(signs, lits)])
        assert not s.solve()

    def test_assumptions(self):
        s = CdclSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve([-a])  # forces b
        assert s.model_value(b)
        assert s.solve([a])
        # Contradictory assumptions: UNSAT under them, SAT again without.
        s.add_clause([-a, -b])
        assert not s.solve([a, b])
        assert s.solve()

    def test_assumption_of_fixed_literal(self):
        s = CdclSolver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve([a])
        assert not s.solve([-a])
        assert s.solve()  # solver state survives a failed assumption

    def test_conflict_budget_raises(self):
        rng = random.Random(11)
        s = CdclSolver()
        lits = [s.new_var() for _ in range(30)]
        for _ in range(130):
            clause = rng.sample(lits, 3)
            s.add_clause([lit if rng.random() < 0.5 else -lit for lit in clause])
        with pytest.raises(SatError):
            s.solve(max_conflicts=1)

    def test_pigeonhole_unsat(self):
        # PHP(4,3): 4 pigeons into 3 holes — UNSAT, needs real learning.
        s = CdclSolver()
        holes = 3
        var = {
            (p, h): s.new_var() for p in range(holes + 1) for h in range(holes)
        }
        for p in range(holes + 1):
            s.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    s.add_clause([-var[p1, h], -var[p2, h]])
        assert not s.solve()
        assert s.stats.conflicts > 0

    def test_fuzz_against_brute_force(self):
        rng = random.Random(2026)
        for trial in range(60):
            nvars = rng.randint(1, 8)
            nclauses = rng.randint(1, 4 * nvars)
            clauses = []
            for _ in range(nclauses):
                width = rng.randint(1, min(3, nvars))
                chosen = rng.sample(range(1, nvars + 1), width)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in chosen]
                )
            brute = any(
                all(
                    any(
                        (assignment >> (abs(lit) - 1)) & 1 == (lit > 0)
                        for lit in clause
                    )
                    for clause in clauses
                )
                for assignment in range(1 << nvars)
            )
            s = CdclSolver()
            for _ in range(nvars):
                s.new_var()
            ok = True
            for clause in clauses:
                ok = s.add_clause(clause) and ok
            got = ok and s.solve()
            assert got == brute, "trial %d: solver %s, brute force %s" % (
                trial, got, brute,
            )
            if got:  # the model must actually satisfy every clause
                for clause in clauses:
                    assert any(
                        s.model_value(abs(lit)) == (lit > 0) for lit in clause
                    )

    def test_luby_sequence(self):
        assert [luby(i) for i in range(1, 10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]


class TestEncoder:
    def _exhaustive_agree(self, net):
        """The CNF projection of every output equals exhaustive simulation."""
        solver = CdclSolver()
        encoder = Encoder(solver)
        from repro.sat.cnf import network_output_lits

        out_lits = network_output_lits(net, encoder.encode_network(net))
        inputs = sorted(net.inputs)
        words = exhaustive_input_words(net.inputs)
        width = 1 << len(inputs)
        values = simulate(net, words, width)
        for m in range(width):
            assumptions = []
            for name in inputs:
                lit = encoder.input_lit(name)
                bit = (words[name] >> m) & 1
                assumptions.append(lit if bit else -lit)
            assert solver.solve(assumptions)
            for port, sig in net.outputs.items():
                expected = (values[sig.name] >> m) & 1
                if sig.inv:
                    expected ^= 1
                lit = out_lits[port]
                if encoder.is_true(lit):
                    got = 1
                elif encoder.is_false(lit):
                    got = 0
                else:
                    got = int(solver.model_value(lit))
                assert got == expected, (port, m)

    def test_network_encoding_matches_simulation(self):
        self._exhaustive_agree(make_random_network(7, num_inputs=5, num_gates=9))

    def test_lut_special_forms(self):
        # parity, single-minterm, single-maxterm, constants, inverters:
        # every nvars<=4 table must encode to the same function.
        rng = random.Random(5)
        tables = [
            TruthTable(3, 0b10010110),  # 3-input parity
            TruthTable(3, 0b01101001),  # complement parity
            TruthTable(2, 0b1000),  # AND
            TruthTable(2, 0b0111),  # NAND
            TruthTable(1, 0b01),  # inverter
            TruthTable(1, 0b10),  # buffer
            TruthTable(2, 0b0000),  # constant 0
            TruthTable(2, 0b1111),  # constant 1
            TruthTable(3, 0b11001100),  # depends only on var 1
        ]
        tables += [
            TruthTable(4, rng.getrandbits(16)) for _ in range(12)
        ]
        for tt in tables:
            solver = CdclSolver()
            encoder = Encoder(solver)
            lits = [encoder.input_lit("i%d" % j) for j in range(tt.nvars)]
            out = encoder.lit_lut(tt, lits)
            for m in range(1 << tt.nvars):
                assumptions = [
                    lit if (m >> j) & 1 else -lit
                    for j, lit in enumerate(lits)
                ]
                expected = bool(tt.value(m))
                if encoder.is_true(out):
                    got = True
                elif encoder.is_false(out):
                    got = False
                else:
                    assert solver.solve(assumptions)
                    got = solver.model_value(out)
                assert got == expected, (tt, m)

    def test_strash_shares_structure(self):
        solver = CdclSolver()
        encoder = Encoder(solver)
        a, b = encoder.input_lit("a"), encoder.input_lit("b")
        x = encoder.lit_and([a, b])
        y = encoder.lit_and([b, a])  # same key after sorting
        assert x == y
        assert encoder.strash_hits >= 1


def _corrupt_one_lut(circuit, name, flip_mask=None):
    """A copy of ``circuit`` with one LUT's table XORed with a mask.

    The default mask complements the whole table, which is guaranteed
    to change the wire on every reachable assignment; a single-row flip
    can silently land on an unreachable row of a correlated cone.
    """
    bad = LUTCircuit(circuit.name + "_bad")
    for inp in circuit.inputs:
        bad.add_input(inp)
    for lut_name in circuit.topological_order():
        lut = circuit.lut(lut_name)
        tt = lut.tt
        if lut_name == name:
            mask = (1 << (1 << tt.nvars)) - 1 if flip_mask is None else flip_mask
            tt = TruthTable(tt.nvars, tt.bits ^ mask)
        bad.add_lut(lut.name, lut.inputs, tt)
    for port, wire in circuit.outputs.items():
        bad.set_output(port, wire)
    return bad


class TestMiter:
    def test_equivalent_mapping_proves(self, fig1):
        circuit = ChortleMapper(k=4).map(fig1)
        result = check_equivalence(fig1, circuit)
        assert result.equivalent
        assert result.method == "sat"
        assert result.stats["vars"] > 0

    def test_simulation_refutes_with_counterexample(self, fig1):
        circuit = ChortleMapper(k=4).map(fig1)
        root = circuit.outputs["z"]
        bad = _corrupt_one_lut(circuit, root)
        result = check_equivalence(fig1, bad)
        assert not result.equivalent
        assert result.counterexample is not None
        assert set(result.counterexample) == set(fig1.inputs)
        assert result.expected != result.actual
        # The counterexample must actually reproduce the mismatch.
        words = {n: v for n, v in result.counterexample.items()}
        got = bad.simulate(words, 1)[circuit.outputs[result.failing_output]]
        assert got & 1 == result.actual

    def test_sat_refutes_without_simulation(self, fig1):
        circuit = ChortleMapper(k=4).map(fig1)
        bad = _corrupt_one_lut(circuit, circuit.outputs["z"])
        result = check_equivalence(fig1, bad, use_simulation=False)
        assert not result.equivalent
        assert result.method == "sat"
        assert result.counterexample is not None

    def test_interface_mismatch_raises(self, fig1):
        wrong = LUTCircuit("w")
        wrong.add_input("zz")
        with pytest.raises(VerificationError):
            check_equivalence(fig1, wrong)

    def test_circuit_vs_circuit(self, fig1):
        a = ChortleMapper(k=3).map(fig1)
        b = ChortleMapper(k=5).map(fig1)
        assert check_equivalence(a, b).equivalent

    def test_fuzz_sat_agrees_with_exhaustive_sim(self):
        # Acceptance: SAT and exhaustive simulation agree on random
        # <=10-input networks across mappers, for both equivalent and
        # deliberately broken candidates.
        for seed, mapper_name in [
            (1, "chortle"), (2, "mis"), (3, "cutmap"),
            (4, "flowmap"), (5, "binpack"), (6, "chortle"), (7, "cutmap"),
        ]:
            net = make_random_network(
                seed, num_inputs=4 + seed % 5, num_gates=8 + 2 * seed
            )
            circuit = resolve_mapper(mapper_name, 4).map(net)
            # Equivalent direction: exhaustive sim passes and SAT proves.
            assert verify_equivalence(net, circuit, method="sim")
            assert check_equivalence(net, circuit).equivalent
            # Broken direction: both must refute.
            victim = circuit.outputs[sorted(circuit.outputs)[0]]
            if victim in circuit.inputs:
                continue  # port wired straight to an input; nothing to corrupt
            bad = _corrupt_one_lut(circuit, victim)
            assert not check_equivalence(net, bad).equivalent
            with pytest.raises(VerificationError):
                verify_equivalence(net, bad, method="sim")


class TestPerLut:
    def test_clean_mapping_all_cones_prove(self, fig1):
        circuit = ChortleMapper(k=4).map(fig1)
        result = check_per_lut(fig1, circuit)
        assert result.equivalent
        assert result.checked_luts > 0
        assert result.failing_lut is None

    def test_localizes_injected_corruption(self):
        # Acceptance: corrupt exactly one named LUT; per-LUT checking
        # must name that LUT and carry a concrete counterexample.
        net = make_random_network(9, num_inputs=6, num_gates=14)
        circuit = ChortleMapper(k=4).map(net)
        words = exhaustive_input_words(net.inputs)
        width = 1 << len(net.inputs)
        full = (1 << width) - 1
        base = circuit.simulate(words, width)
        victims = [
            name
            for name in circuit.topological_order()
            if name in net and circuit.lut(name).tt.nvars >= 2
        ]
        # Find a single-row flip that is reachable (the wire actually
        # changes) and not a pure complement (per-LUT treats inverted
        # cones as legal polarity choices, not corruption).
        chosen = None
        for victim in victims:
            tt = circuit.lut(victim).tt
            for row in range(1 << tt.nvars):
                bad = _corrupt_one_lut(circuit, victim, 1 << row)
                word = bad.simulate(words, width)[victim]
                if word != base[victim] and word != ~base[victim] & full:
                    chosen = (victim, bad)
                    break
            if chosen:
                break
        assert chosen is not None, "no reachable single-row corruption found"
        victim, bad = chosen
        result = check_per_lut(net, bad)
        assert not result.equivalent
        assert result.failing_lut == victim
        assert result.counterexample is not None
        assert result.expected != result.actual
        # Replaying the counterexample reproduces the corrupted value.
        got = bad.simulate(dict(result.counterexample), 1)[victim]
        assert got & 1 == result.actual

    def test_inverted_cone_reported_not_failed(self):
        net = BooleanNetwork("inv")
        for n in ("a", "b"):
            net.add_input(n)
        net.add_gate("g", "and", [Signal("a"), Signal("b")])
        net.set_output("o", Signal("g"))
        circuit = LUTCircuit("cand")
        for n in ("a", "b"):
            circuit.add_input(n)
        # The candidate computes NAND at wire "g" (complement cone) and
        # fixes polarity downstream — legal mapper behavior.
        circuit.add_lut("g", ("a", "b"), TruthTable(2, 0b0111))
        circuit.add_lut("o", ("g",), TruthTable(1, 0b01))
        circuit.set_output("o", "o")
        result = check_per_lut(net, circuit)
        assert result.equivalent
        assert "g" in result.inverted_luts
