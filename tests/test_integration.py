"""Cross-module integration tests: full flows end to end."""

import pytest

from tests.util import make_random_network
from repro.baseline import MisMapper
from repro.bench.mcnc import mcnc_circuit
from repro.blif.convert import blif_to_network
from repro.blif.parser import parse_blif
from repro.blif.writer import write_lut_circuit, write_network
from repro.core import ChortleMapper
from repro.extensions import BinPackMapper, FlowMapper
from repro.network.simulate import exhaustive_input_words, simulate
from repro.opt.script import factored_network_from_blif, mis_script
from repro.verify import verify_equivalence


def blif_round_trip_equivalent(net, circuit):
    """Mapped circuit -> BLIF -> network; compare against the source."""
    back = blif_to_network(parse_blif(write_lut_circuit(circuit)))
    if len(net.inputs) > 14:
        return True  # covered by direct verification elsewhere
    words = exhaustive_input_words(net.inputs)
    width = 1 << len(net.inputs)
    mask = (1 << width) - 1
    net_vals = simulate(net, words, width)
    back_vals = simulate(back, words, width)
    for port, sig in net.outputs.items():
        expected = net_vals[sig.name] ^ (mask if sig.inv else 0)
        bsig = back.outputs[port]
        actual = back_vals[bsig.name] ^ (mask if bsig.inv else 0)
        if expected != actual:
            return False
    return True


class TestFullFlow:
    @pytest.mark.parametrize("seed", range(4))
    def test_generate_map_write_reparse_verify(self, seed):
        net = make_random_network(seed, num_gates=15)
        for k in (3, 4):
            circuit = ChortleMapper(k=k).map(net)
            verify_equivalence(net, circuit)
            assert blif_round_trip_equivalent(net, circuit)

    def test_blif_factor_map_flow(self):
        """network -> BLIF -> factored network -> map -> verify."""
        net = make_random_network(2, num_gates=12)
        text = write_network(net)
        model = parse_blif(text)
        factored = mis_script(factored_network_from_blif(model))
        circuit = ChortleMapper(k=4).map(factored)
        verify_equivalence(factored, circuit)
        # The factored network must equal the original too.
        from repro.network.simulate import output_truth_tables

        assert output_truth_tables(net) == output_truth_tables(factored)

    def test_mcnc_circuit_all_mappers_agree_functionally(self):
        net = mcnc_circuit("frg1")
        mappers = [
            ChortleMapper(k=4),
            MisMapper(k=4),
            FlowMapper(k=4),
            BinPackMapper(k=4),
        ]
        for mapper in mappers:
            circuit = mapper.map(net)
            verify_equivalence(net, circuit, vectors=1024)

    def test_paper_ordering_on_real_suite_sample(self):
        """The headline result on one stand-in: Chortle <= MIS at K=4,
        near parity at K=2."""
        net = mcnc_circuit("count")
        c2 = ChortleMapper(k=2).map(net).cost
        m2 = MisMapper(k=2).map(net).cost
        c4 = ChortleMapper(k=4).map(net).cost
        m4 = MisMapper(k=4).map(net).cost
        assert abs(c2 - m2) <= max(2, m2 // 25)
        assert c4 <= m4

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_k_sweep_monotone_cost(self, k):
        """More LUT inputs never cost more area."""
        net = mcnc_circuit("frg1")
        costs = [ChortleMapper(k=kk).map(net).cost for kk in (2, 3, 4, 5)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
