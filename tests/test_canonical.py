"""Tests for P/NP/NPN canonicalization."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truth.canonical import np_canonical, npn_canonical, p_canonical
from repro.truth.truthtable import TruthTable


def tables(n):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable(n, bits)
    )


class TestPCanonical:
    def test_and_permutations_collapse(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert p_canonical(a & ~b) == p_canonical(b & ~a)

    def test_distinct_functions_stay_distinct(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert p_canonical(a & b) != p_canonical(a | b)

    def test_canonical_is_member_of_class(self):
        tt = TruthTable(3, 0b11010010)
        canon = p_canonical(tt)
        members = {
            tt.permute(list(p)).bits for p in itertools.permutations(range(3))
        }
        assert canon.bits in members
        assert canon.bits == min(members)

    @given(tables(3), st.randoms(use_true_random=False))
    @settings(max_examples=50)
    def test_invariant_under_permutation(self, tt, rnd):
        perm = list(range(3))
        rnd.shuffle(perm)
        assert p_canonical(tt) == p_canonical(tt.permute(perm))


class TestNPCanonical:
    def test_polarity_collapse(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert np_canonical(a & b) == np_canonical(a & ~b)
        assert np_canonical(a & b) == np_canonical(~a & ~b)

    def test_xor_xnor_same_np_class(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        # xnor = xor with one input complemented
        assert np_canonical(a ^ b) == np_canonical(~(a ^ b))

    def test_and_or_distinct_np_classes(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert np_canonical(a & b) != np_canonical(a | b)

    @given(tables(3), st.integers(0, 7), st.randoms(use_true_random=False))
    @settings(max_examples=50)
    def test_invariant_under_np_transform(self, tt, mask, rnd):
        perm = list(range(3))
        rnd.shuffle(perm)
        transformed = tt.negate_inputs(mask).permute(perm)
        assert np_canonical(tt) == np_canonical(transformed)


class TestNPNCanonical:
    def test_and_nand_same_npn_class(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert npn_canonical(a & b) == npn_canonical(~(a & b))

    def test_and_or_same_npn_class(self):
        # OR is NAND of complemented inputs: same NPN class as AND.
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert npn_canonical(a & b) == npn_canonical(a | b)

    def test_npn_class_count_2vars(self):
        # The classical result: 4 NPN classes of 2-variable functions.
        classes = {npn_canonical(TruthTable(2, bits)).bits for bits in range(16)}
        assert len(classes) == 4

    def test_npn_class_count_3vars(self):
        # The classical result: 14 NPN classes of 3-variable functions.
        classes = {npn_canonical(TruthTable(3, bits)).bits for bits in range(256)}
        assert len(classes) == 14

    @given(tables(3))
    @settings(max_examples=50)
    def test_invariant_under_output_negation(self, tt):
        assert npn_canonical(tt) == npn_canonical(~tt)


class TestClassHierarchy:
    @given(tables(3))
    @settings(max_examples=40)
    def test_np_refines_npn(self, tt):
        """Functions in the same NP class are in the same NPN class."""
        assert npn_canonical(np_canonical(tt)) == npn_canonical(tt)

    @given(tables(3))
    @settings(max_examples=40)
    def test_p_refines_np(self, tt):
        assert np_canonical(p_canonical(tt)) == np_canonical(tt)

    @given(tables(3))
    @settings(max_examples=40)
    def test_canonicalization_idempotent(self, tt):
        assert p_canonical(p_canonical(tt)) == p_canonical(tt)
        assert np_canonical(np_canonical(tt)) == np_canonical(tt)
        assert npn_canonical(npn_canonical(tt)) == npn_canonical(tt)
