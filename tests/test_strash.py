"""Tests for structural hashing."""

import pytest

from tests.util import make_random_network
from repro.core.chortle import ChortleMapper
from repro.network.builder import NetworkBuilder
from repro.network.simulate import output_truth_tables
from repro.network.transform import strash
from repro.verify import verify_equivalence


class TestStrash:
    def test_commutative_duplicates_shared(self):
        b = NetworkBuilder("s")
        a, c, d = b.inputs("a", "c", "d")
        g1 = b.and_(a, ~c, name="g1")
        g2 = b.and_(~c, a, name="g2")
        b.output("y1", b.or_(g1, d))
        b.output("y2", b.or_(g2, ~d))
        net = b.network()
        shared = strash(net)
        assert shared.num_gates == net.num_gates - 1
        assert output_truth_tables(net) == output_truth_tables(shared)

    def test_different_polarity_not_shared(self):
        b = NetworkBuilder("p")
        a, c = b.inputs("a", "c")
        g1 = b.and_(a, c, name="g1")
        g2 = b.and_(a, ~c, name="g2")
        b.output("y", b.or_(g1, g2))
        shared = strash(b.network())
        assert shared.num_gates == 3

    def test_cascaded_sharing(self):
        """Sharing one level exposes sharing at the next."""
        b = NetworkBuilder("c")
        a, c, d = b.inputs("a", "c", "d")
        g1 = b.and_(a, c, name="g1")
        g2 = b.and_(c, a, name="g2")
        h1 = b.or_(g1, d, name="h1")
        h2 = b.or_(g2, d, name="h2")
        b.output("y1", b.and_(h1, a))
        b.output("y2", b.and_(h2, ~a))
        shared = strash(b.network())
        # g2 folds into g1, then h2 into h1.
        assert shared.num_gates == 4

    def test_op_distinguishes(self):
        b = NetworkBuilder("o")
        a, c = b.inputs("a", "c")
        b.output("y1", b.and_(a, c))
        b.output("y2", b.or_(a, c))
        shared = strash(b.network())
        assert shared.num_gates == 2

    def test_outputs_rewired(self):
        b = NetworkBuilder("w")
        a, c = b.inputs("a", "c")
        g1 = b.and_(a, c, name="g1")
        g2 = b.and_(c, a, name="g2")
        b.output("y1", g1)
        b.output("y2", ~g2)
        shared = strash(b.network())
        assert shared.outputs["y2"].name == shared.outputs["y1"].name
        assert shared.outputs["y2"].inv != shared.outputs["y1"].inv

    @pytest.mark.parametrize("seed", range(8))
    def test_function_preserved_random(self, seed):
        net = make_random_network(seed, num_gates=15)
        shared = strash(net)
        assert output_truth_tables(net) == output_truth_tables(shared)
        assert shared.num_gates <= net.num_gates
        shared.validate()

    @pytest.mark.parametrize("seed", range(4))
    def test_mappable_after_strash(self, seed):
        net = strash(make_random_network(seed, num_gates=15))
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)

    def test_idempotent(self):
        net = make_random_network(2, num_gates=15)
        once = strash(net)
        twice = strash(once)
        assert sorted(twice.names()) == sorted(once.names())
