"""End-to-end tests for the Chortle mapper."""

import pytest

from tests.util import make_random_network, make_random_tree_network
from repro.bench.circuits import (
    figure1_network,
    majority,
    mux_tree,
    parity_tree,
    ripple_adder,
    wide_and,
)
from repro.core.chortle import ChortleMapper, map_network
from repro.core.cover import check_cover
from repro.errors import MappingError
from repro.network.network import BooleanNetwork, Signal
from repro.verify import verify_equivalence


class TestPaperExample:
    def test_figure2_mapping_k3(self, fig1):
        """Figure 2 implements the Figure 1 network in three 3-input LUTs."""
        circuit = ChortleMapper(k=3).map(fig1)
        assert circuit.cost == 3
        verify_equivalence(fig1, circuit)

    @pytest.mark.parametrize("k,expected", [(2, 5), (3, 3), (4, 2), (5, 2)])
    def test_figure1_costs_across_k(self, fig1, k, expected):
        circuit = ChortleMapper(k=k).map(fig1)
        assert circuit.cost == expected
        verify_equivalence(fig1, circuit)

    def test_root_luts_named_after_nodes(self, fig1):
        circuit = ChortleMapper(k=3).map(fig1)
        assert "g2" in circuit
        assert "g4" in circuit


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_random_networks(self, seed, k):
        net = make_random_network(seed, num_gates=12)
        circuit = ChortleMapper(k=k).map(net)
        verify_equivalence(net, circuit)
        check_cover(net, circuit, k)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees(self, seed):
        net = make_random_tree_network(seed)
        for k in (2, 4):
            circuit = ChortleMapper(k=k).map(net)
            verify_equivalence(net, circuit)

    @pytest.mark.parametrize(
        "maker",
        [
            figure1_network,
            lambda: parity_tree(8),
            lambda: ripple_adder(4),
            lambda: majority(5),
            lambda: mux_tree(3),
            lambda: wide_and(16),
        ],
    )
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_library_circuits(self, maker, k):
        net = maker()
        circuit = ChortleMapper(k=k).map(net)
        verify_equivalence(net, circuit)
        circuit.validate(k)


class TestStructuralProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_lut_input_bound(self, seed):
        net = make_random_network(seed)
        for k in (2, 3, 4, 5):
            circuit = ChortleMapper(k=k).map(net)
            for lut in circuit.luts():
                assert len(lut.inputs) <= k

    @pytest.mark.parametrize("seed", range(6))
    def test_cost_counts_multi_input_luts(self, seed):
        net = make_random_network(seed)
        circuit = ChortleMapper(k=4).map(net)
        assert circuit.cost == sum(
            1 for lut in circuit.luts() if len(lut.inputs) >= 2
        )

    def test_lower_bound_gates_over_k(self):
        """Any mapping needs at least edges-ish/k LUTs; check a weak bound."""
        net = make_random_network(4, num_gates=15)
        circuit = ChortleMapper(k=4).map(net)
        # Each LUT absorbs at most k-1 of the network's edge count.
        assert circuit.cost >= (net.num_edges - net.num_gates) // 4


class TestEdgeCases:
    def test_output_directly_from_input(self):
        net = BooleanNetwork("passthru")
        net.add_input("a")
        net.set_output("y", "a")
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)
        assert circuit.cost == 0

    def test_inverted_output_gets_free_inverter(self):
        net = BooleanNetwork("inv")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", "and", ["a", "b"])
        net.set_output("y", Signal("g", True))
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)
        assert circuit.cost == 1  # the inverter is not a logic block

    def test_inverted_input_output(self):
        net = BooleanNetwork("invin")
        net.add_input("a")
        net.set_output("y", Signal("a", True))
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)

    def test_constant_output(self):
        net = BooleanNetwork("c1")
        net.add_input("a")
        net.add_const("one", True)
        net.set_output("y", "one")
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)
        assert circuit.cost == 0

    def test_constant_folded_from_logic(self):
        net = BooleanNetwork("fold")
        net.add_input("a")
        net.add_gate("g", "or", [Signal("a"), Signal("a", True)])
        net.set_output("y", "g")
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)

    def test_shared_output_ports(self):
        net = BooleanNetwork("shared")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", "and", ["a", "b"])
        net.set_output("y1", "g")
        net.set_output("y2", Signal("g", True))
        net.set_output("y3", Signal("g", True))
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit)
        # One AND LUT + one shared inverter.
        assert circuit.num_luts == 2

    def test_unswept_single_fanin_rejected_without_preprocess(self):
        net = BooleanNetwork("buf")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", "and", ["a", "b"])
        net.add_gate("buf", "and", ["g"])
        net.set_output("y", "buf")
        with pytest.raises(MappingError):
            ChortleMapper(k=4, preprocess=False).map(net)
        # With preprocessing it is fine.
        verify_equivalence(net, ChortleMapper(k=4).map(net))

    def test_k_validated(self):
        with pytest.raises(MappingError):
            ChortleMapper(k=1)

    def test_map_network_helper(self, fig1):
        assert map_network(fig1, k=3).cost == 3


class TestCostAccountingInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_predicted_cost_equals_emitted(self, seed):
        """The mapper raises internally if DP cost != emitted LUTs; this
        exercises that path across many shapes."""
        for k in (2, 3, 4, 5):
            net = make_random_network(seed, num_gates=20, max_fanin=6)
            circuit = ChortleMapper(k=k).map(net)
            circuit.validate(k)
