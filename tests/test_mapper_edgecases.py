"""Edge-case matrix: every mapper against every degenerate input shape."""

import pytest

from repro.baseline.mis_mapper import MisMapper
from repro.core.chortle import ChortleMapper
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper
from repro.extensions.pareto import DepthBoundedMapper
from repro.network.builder import NetworkBuilder
from repro.network.network import BooleanNetwork, Signal
from repro.verify import verify_equivalence

ALL_MAPPERS = [
    pytest.param(lambda k: ChortleMapper(k=k), id="chortle"),
    pytest.param(lambda k: MisMapper(k=k), id="mis"),
    pytest.param(lambda k: FlowMapper(k=k), id="flowmap"),
    pytest.param(lambda k: BinPackMapper(k=k), id="binpack"),
    pytest.param(lambda k: DepthBoundedMapper(k=k), id="depthbounded"),
]


def empty_network():
    net = BooleanNetwork("empty")
    net.add_input("a")
    return net


def passthrough_network():
    net = BooleanNetwork("pass")
    net.add_input("a")
    net.add_input("b")
    net.set_output("y", "a")
    net.set_output("ny", Signal("b", True))
    return net


def single_gate_network():
    net = BooleanNetwork("one")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("g", "and", ["a", Signal("b", True)])
    net.set_output("y", "g")
    return net


def constant_outputs_network():
    net = BooleanNetwork("consts")
    net.add_input("a")
    net.add_gate("g", "or", [Signal("a"), Signal("a", True)])
    net.add_gate("h", "and", [Signal("a"), Signal("a", True)])
    net.set_output("one", "g")
    net.set_output("zero", "h")
    return net


def duplicate_port_network():
    net = BooleanNetwork("dup")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("g", "or", ["a", "b"])
    net.set_output("y1", "g")
    net.set_output("y2", "g")
    net.set_output("y3", Signal("g", True))
    return net


SHAPES = [
    pytest.param(empty_network, id="no-gates"),
    pytest.param(passthrough_network, id="passthrough"),
    pytest.param(single_gate_network, id="single-gate"),
    pytest.param(constant_outputs_network, id="constant-outputs"),
    pytest.param(duplicate_port_network, id="duplicate-ports"),
]


@pytest.mark.parametrize("factory", ALL_MAPPERS)
@pytest.mark.parametrize("shape", SHAPES)
def test_degenerate_shapes(factory, shape):
    net = shape()
    circuit = factory(3).map(net)
    verify_equivalence(net, circuit)
    circuit.validate(3)


@pytest.mark.parametrize("factory", ALL_MAPPERS)
def test_k_wider_than_any_node(factory, fig1):
    # The MIS baseline is library-bound to the paper's K range (<=5);
    # the library-free mappers take any K.
    k = 5 if isinstance(factory(2), MisMapper) else 8
    circuit = factory(k).map(fig1)
    verify_equivalence(fig1, circuit)
    circuit.validate(k)


def test_kernel_library_k_capped():
    from repro.errors import LibraryError

    with pytest.raises(LibraryError):
        MisMapper(k=8)


@pytest.mark.parametrize("factory", ALL_MAPPERS)
def test_figure1_all_mappers(factory, fig1):
    for k in (2, 3, 4, 5):
        circuit = factory(k).map(fig1)
        verify_equivalence(fig1, circuit)


def test_whole_network_is_single_wide_gate():
    b = NetworkBuilder("wide")
    xs = b.inputs(*["x%d" % i for i in range(12)])
    b.output("y", b.or_(*xs, name="g"))
    net = b.network()
    for factory in (
        lambda k: ChortleMapper(k=k),
        lambda k: MisMapper(k=k),
        lambda k: BinPackMapper(k=k),
        lambda k: DepthBoundedMapper(k=k),
    ):
        circuit = factory(4).map(net)
        verify_equivalence(net, circuit)


def test_deep_chain_network():
    """A 60-level chain: recursion limits and deep trees."""
    b = NetworkBuilder("chain")
    a = b.input("a")
    cur = a
    for i in range(60):
        other = b.input("x%d" % i)
        cur = b.and_(cur, other, name="c%d" % i) if i % 2 else b.or_(
            cur, ~other, name="c%d" % i
        )
    b.output("y", cur)
    net = b.network()
    for k in (2, 5):
        circuit = ChortleMapper(k=k).map(net)
        verify_equivalence(net, circuit, vectors=512)
