"""Tests for the BLIF parser."""

import pytest

from repro.blif.parser import parse_blif, parse_blif_file
from repro.errors import BlifError

SIMPLE = """
.model simple
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
"""


class TestBasicParsing:
    def test_simple_model(self):
        model = parse_blif(SIMPLE)
        assert model.name == "simple"
        assert model.inputs == ["a", "b", "c"]
        assert model.outputs == ["y"]
        assert len(model.tables) == 2
        t = model.table_map()["t"]
        assert t.inputs == ("a", "b")
        assert t.cubes == ("11",)

    def test_comments_stripped(self):
        text = SIMPLE.replace(".inputs a b c", ".inputs a b c  # the inputs")
        model = parse_blif(text)
        assert model.inputs == ["a", "b", "c"]

    def test_line_continuation(self):
        text = SIMPLE.replace(".inputs a b c", ".inputs a \\\nb c")
        model = parse_blif(text)
        assert model.inputs == ["a", "b", "c"]

    def test_dangling_continuation(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a \\")

    def test_multiple_inputs_lines(self):
        text = SIMPLE.replace(".inputs a b c", ".inputs a b\n.inputs c")
        model = parse_blif(text)
        assert model.inputs == ["a", "b", "c"]

    def test_missing_model(self):
        with pytest.raises(BlifError):
            parse_blif(".inputs a\n")

    def test_only_first_model_read(self):
        text = SIMPLE + "\n.model second\n.inputs x\n.outputs z\n.names x z\n1 1\n.end\n"
        model = parse_blif(text)
        assert model.name == "simple"


class TestCovers:
    def test_phase0_cover(self):
        text = """
.model m
.inputs a b
.outputs y
.names a b y
11 0
00 0
.end
"""
        model = parse_blif(text)
        cover = model.tables[0]
        assert cover.phase == 0
        assert cover.evaluate([1, 0]) == 1
        assert cover.evaluate([1, 1]) == 0

    def test_mixed_phase_rejected(self):
        text = """
.model m
.inputs a
.outputs y
.names a y
1 1
0 0
.end
"""
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_constant_one_table(self):
        text = ".model m\n.outputs y\n.names y\n1\n.end\n"
        model = parse_blif(text)
        assert model.tables[0].is_constant()
        assert model.tables[0].constant_value() == 1

    def test_constant_zero_empty_table(self):
        text = ".model m\n.outputs y\n.names y\n.end\n"
        model = parse_blif(text)
        assert model.tables[0].constant_value() == 0

    def test_dense_cube_form(self):
        # Some writers glue the output bit onto the cube: "111" == "11 1".
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n111\n.end\n"
        model = parse_blif(text)
        assert model.tables[0].cubes == ("11",)

    def test_malformed_cube(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1 1 1\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_bad_output_bit(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 2\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_cube_outside_table(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n11 1\n.end\n")


class TestRejectedConstructs:
    @pytest.mark.parametrize("construct", [".latch a b", ".subckt foo x=a", ".gate nand2 a=x"])
    def test_sequential_and_hierarchy_rejected(self, construct):
        text = ".model m\n.inputs a\n.outputs y\n%s\n.end\n" % construct
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_unknown_construct_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.bogus x\n.end\n")

    def test_ignorable_constructs_skipped(self):
        text = ".model m\n.inputs a\n.outputs y\n.default_input_arrival 1 1\n.names a y\n1 1\n.end\n"
        model = parse_blif(text)
        assert len(model.tables) == 1

    def test_names_without_output(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.names\n.end\n")


class TestValidation:
    def test_double_definition_rejected(self):
        text = """
.model m
.inputs a
.outputs y
.names a y
1 1
.names a y
0 1
.end
"""
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_undefined_table_input(self):
        text = ".model m\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_undefined_output(self):
        text = ".model m\n.inputs a\n.outputs ghost\n.names a y\n1 1\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_validation_can_be_disabled(self):
        text = ".model m\n.inputs a\n.outputs ghost\n.names a y\n1 1\n.end\n"
        model = parse_blif(text, validate=False)
        assert model.outputs == ["ghost"]

    def test_parse_file(self, tmp_path):
        path = tmp_path / "m.blif"
        path.write_text(SIMPLE)
        model = parse_blif_file(path)
        assert model.name == "simple"
