"""Smoke tests: every example script must run end to end.

Examples are documentation that executes; these tests keep them from
rotting as the API evolves.  Each script runs in-process via runpy with
a controlled argv (quick variants where available).
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/paper_walkthrough.py", []),
    ("examples/blif_flow.py", ["-k", "4"]),
    ("examples/compare_mappers.py", ["frg1", "-k", "4"]),
    ("examples/map_mcnc_suite.py", ["--quick", "-k", "3"]),
]


@pytest.mark.parametrize("path,argv", EXAMPLES, ids=[p for p, _ in EXAMPLES])
def test_example_runs(path, argv, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"


def test_export_results_example(tmp_path, capsys, monkeypatch):
    stem = str(tmp_path / "results")
    monkeypatch.setattr(
        sys, "argv", ["export_results.py", "--quick", "-o", stem]
    )
    runpy.run_path("examples/export_results.py", run_name="__main__")
    assert (tmp_path / "results.json").exists()
    assert (tmp_path / "results.csv").exists()


def test_quickstart_reports_three_luts(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "3 3-input lookup tables" in out
    assert "verified on 32 input vectors" in out
