"""Tests for MIS baseline libraries (Section 4.1)."""

import pytest

from repro.baseline.library import (
    Library,
    complete_library,
    kernel_library,
    library_for,
)
from repro.errors import LibraryError
from repro.opt.algebra import make_expr
from repro.opt.kernels import is_level0_kernel
from repro.truth.truthtable import TruthTable


def v(j, n):
    return TruthTable.var(j, n)


class TestCompleteLibrary:
    def test_k2_matches_everything_2var(self):
        lib = complete_library(2)
        for bits in range(16):
            tt = TruthTable(2, bits)
            assert lib.matches(tt)

    def test_k3_matches_everything_3var(self):
        lib = complete_library(3)
        for bits in range(0, 256, 7):
            assert lib.matches(TruthTable(3, bits))

    def test_support_bound_enforced(self):
        lib = complete_library(2)
        f = v(0, 3) & v(1, 3) & v(2, 3)
        assert not lib.matches(f)

    def test_wide_support_function_with_small_support_ok(self):
        lib = complete_library(2)
        f = (v(0, 4) & v(3, 4))  # 4-var table, 2-var support
        assert lib.matches(f)

    def test_complete_k4_refused(self):
        """The library-size problem that motivates Chortle."""
        with pytest.raises(LibraryError):
            complete_library(4)

    def test_repr_mentions_complete(self):
        assert "complete" in repr(complete_library(2))


class TestKernelLibrary:
    def test_basic_gates_present(self):
        lib = kernel_library(4)
        assert lib.matches(v(0, 2) & v(1, 2))  # AND2
        assert lib.matches(v(0, 4) & v(1, 4) & v(2, 4) & v(3, 4))  # AND4
        assert lib.matches(v(0, 3) | v(1, 3) | v(2, 3))  # OR3
        assert lib.matches(v(0, 2) ^ v(1, 2))  # XOR2

    def test_level0_kernel_shapes_present(self):
        lib = kernel_library(4)
        a, b, c, d = (v(j, 4) for j in range(4))
        assert lib.matches((a & b) | c)  # ab+c
        assert lib.matches((a & b) | (c & d))  # ab+cd
        assert lib.matches((a & b & c) | d)  # abc+d
        assert lib.matches((a | b) & (c | d))  # dual of ab+cd

    def test_input_inversions_free(self):
        lib = kernel_library(4)
        a, b, c = (v(j, 3) for j in range(3))
        assert lib.matches((~a & b) | ~c)

    def test_complement_fallback(self):
        lib = kernel_library(4)
        a, b, c, d = (v(j, 4) for j in range(4))
        aoi22 = ~((a & b) | (c & d))
        assert lib.matches(aoi22)

    def test_incompleteness_depth3_shapes_missing(self):
        """The structural gap the paper measures: read-once depth-3 mixes
        like a(b+cd) are not level-0 kernels and are absent."""
        lib = kernel_library(4)
        a, b, c, d = (v(j, 4) for j in range(4))
        assert not lib.matches(a & (b | (c & d)))
        assert not lib.matches((a & (b | c)) | d)

    def test_k5_extends_coverage(self):
        lib = kernel_library(5)
        a, b, c, d, e = (v(j, 5) for j in range(5))
        assert lib.matches((a & b) | (c & d) | e)  # ab+cd+e
        assert lib.matches((a & b) | (c & d & e))  # ab+cde

    def test_shapes_are_level0_kernels(self):
        """The generator recipe really produces level-0 kernels."""
        # ab+cd over distinct vars, algebraically:
        assert is_level0_kernel(make_expr(["a", "b"], ["c", "d"]))
        assert is_level0_kernel(make_expr(["a", "b"], ["c"], ["d"]))

    def test_k_bound_validated(self):
        with pytest.raises(LibraryError):
            kernel_library(1)

    def test_library_for_dispatch(self):
        assert library_for(2).complete
        assert library_for(3).complete
        assert not library_for(4).complete
        assert not library_for(5).complete

    def test_cell_counts_small(self):
        """The whole point: the K>=4 library is tiny vs 9014 classes."""
        assert kernel_library(4).num_cells < 50
        assert kernel_library(5).num_cells < 80


class TestLibraryMechanics:
    def test_add_oversupport_cell_rejected(self):
        lib = Library("t", 2)
        with pytest.raises(LibraryError):
            lib.add(v(0, 3) & v(1, 3) & v(2, 3))

    def test_free_inverters_flag(self):
        a, b = v(0, 2), v(1, 2)
        strict = Library("strict", 2, free_inverters=False)
        strict.add(a & b)
        assert strict.matches(a & ~b)  # input negation is still NP
        assert not strict.matches(~(a & b))  # but output negation is not
        lax = Library("lax", 2, free_inverters=True)
        lax.add(a & b)
        assert lax.matches(~(a & b))

    def test_match_cache_consistency(self):
        lib = kernel_library(4)
        f = (v(0, 3) & v(1, 3)) | v(2, 3)
        assert lib.matches(f)
        assert lib.matches(f)  # cached path

    def test_cells_by_support(self):
        lib = kernel_library(4)
        buckets = lib.cells_by_support()
        assert set(buckets) <= {1, 2, 3, 4}
        assert all(count > 0 for count in buckets.values())
