"""Tests for post-mapping LUT compaction."""

import pytest

from tests.util import make_random_network
from repro.core.chortle import ChortleMapper
from repro.core.lut import LUTCircuit
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper
from repro.extensions.lutmerge import _merge_tables, merge_luts
from repro.truth.truthtable import TruthTable
from repro.verify import verify_equivalence


def chain_circuit():
    """inv -> and2 chain that is trivially mergeable at K>=3."""
    c = LUTCircuit("chain")
    for name in ("a", "b"):
        c.add_input(name)
    c.add_lut("inv", ("a",), ~TruthTable.var(0, 1))
    c.add_lut("g", ("inv", "b"), TruthTable.var(0, 2) & TruthTable.var(1, 2))
    c.set_output("y", "g")
    return c


class TestMergeTables:
    def test_simple_fold(self):
        c = chain_circuit()
        merged = _merge_tables(c.lut("g"), c.lut("inv"), 4)
        assert merged is not None
        assert set(merged.inputs) == {"a", "b"}
        # g = ~a & b, whatever input order the merge chose.
        ai = merged.inputs.index("a")
        bi = merged.inputs.index("b")
        for a in (0, 1):
            for b in (0, 1):
                values = [0, 0]
                values[ai] = a
                values[bi] = b
                assert merged.tt.evaluate(values) == ((not a) and b)

    def test_overflow_returns_none(self):
        c = LUTCircuit("wide")
        for name in "abcdefgh":
            c.add_input(name)
        c.add_lut("v", tuple("abcd"), TruthTable.const(True, 4))
        c.add_lut("w", ("v", "e", "f", "g"), TruthTable.const(True, 4))
        assert _merge_tables(c.lut("w"), c.lut("v"), 4) is None
        assert _merge_tables(c.lut("w"), c.lut("v"), 7) is not None

    def test_shared_inputs_dedupe(self):
        c = LUTCircuit("s")
        for name in ("a", "b"):
            c.add_input(name)
        c.add_lut("v", ("a", "b"), TruthTable.var(0, 2) ^ TruthTable.var(1, 2))
        c.add_lut("w", ("v", "a"), TruthTable.var(0, 2) | TruthTable.var(1, 2))
        merged = _merge_tables(c.lut("w"), c.lut("v"), 2)
        assert merged is not None
        assert set(merged.inputs) == {"a", "b"}


class TestMergeLuts:
    def test_chain_collapses(self):
        c = chain_circuit()
        merged = merge_luts(c, 4)
        assert merged.num_luts == 1
        vals = merged.simulate({"a": 0b0011, "b": 0b0101}, 4)
        assert vals[merged.outputs["y"]] == 0b0100

    def test_output_wires_protected(self):
        c = chain_circuit()
        c.set_output("mid", "inv")  # inv now drives a port
        merged = merge_luts(c, 4)
        assert "inv" in merged
        assert merged.num_luts == 2

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mapper_cls", [FlowMapper, BinPackMapper, ChortleMapper])
    def test_equivalence_preserved(self, seed, mapper_cls):
        net = make_random_network(seed, num_gates=15)
        circuit = mapper_cls(k=4).map(net)
        merged = merge_luts(circuit, 4)
        verify_equivalence(net, merged)
        assert merged.num_luts <= circuit.num_luts

    @pytest.mark.parametrize("seed", range(6))
    def test_never_increases_cost(self, seed):
        net = make_random_network(seed, num_gates=15)
        circuit = FlowMapper(k=4).map(net)
        assert merge_luts(circuit, 4).cost <= circuit.cost

    def test_recovers_flowmap_area(self):
        """Aggregate: the pass must find real savings on FlowMap output."""
        saved = 0
        for seed in range(6):
            net = make_random_network(seed, num_gates=15)
            circuit = FlowMapper(k=4).map(net)
            saved += circuit.cost - merge_luts(circuit, 4).cost
        assert saved > 0

    def test_k_bound_respected(self):
        net = make_random_network(3, num_gates=15)
        circuit = FlowMapper(k=4).map(net)
        merged = merge_luts(circuit, 4)
        assert all(len(lut.inputs) <= 4 for lut in merged.luts())

    def test_idempotent(self):
        net = make_random_network(4, num_gates=15)
        circuit = FlowMapper(k=4).map(net)
        once = merge_luts(circuit, 4)
        twice = merge_luts(once, 4)
        assert twice.num_luts == once.num_luts
