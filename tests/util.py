"""Shared test helpers (importable; fixtures live in conftest.py)."""

from __future__ import annotations

import random

from repro.network.builder import NetworkBuilder
from repro.network.network import BooleanNetwork, Signal
from repro.network.transform import sweep


def make_random_network(
    seed: int,
    num_inputs: int = 6,
    num_gates: int = 10,
    max_fanin: int = 5,
    num_outputs: int = 2,
    invert_prob: float = 0.3,
) -> BooleanNetwork:
    """A small random AND/OR DAG, swept and ready to map."""
    rng = random.Random(seed)
    b = NetworkBuilder("rnd%d" % seed)
    sigs = list(b.inputs(*["i%d" % i for i in range(num_inputs)]))
    for _ in range(num_gates):
        fan = rng.randint(2, max_fanin)
        picks = rng.sample(sigs, min(fan, len(sigs)))
        fanins = [Signal(s.name, rng.random() < invert_prob) for s in picks]
        op = rng.choice([b.and_, b.or_])
        sigs.append(op(*fanins))
    for j in range(num_outputs):
        b.output("o%d" % j, sigs[-(j + 1)])
    return sweep(b.network())


def make_random_tree_network(
    seed: int, depth: int = 3, max_fanin: int = 4, invert_prob: float = 0.3
) -> BooleanNetwork:
    """A single fanout-free tree (every gate read exactly once)."""
    rng = random.Random(seed)
    b = NetworkBuilder("tree%d" % seed)
    counter = [0]

    def fresh_leaf() -> Signal:
        counter[0] += 1
        return b.input("x%d" % counter[0])

    def build(level: int) -> Signal:
        if level == 0:
            return fresh_leaf()
        fan = rng.randint(2, max_fanin)
        children = []
        for _ in range(fan):
            child = build(level - 1) if rng.random() < 0.7 else fresh_leaf()
            if rng.random() < invert_prob:
                child = ~child
            children.append(child)
        op = b.and_ if rng.random() < 0.5 else b.or_
        return op(*children)

    root = build(depth)
    if root.name.startswith("x"):  # degenerate: force at least one gate
        other = fresh_leaf()
        root = b.and_(root, other)
    b.output("y", root)
    return sweep(b.network())
