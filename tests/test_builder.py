"""Tests for the expression-style network builder."""


from repro.network.builder import NetworkBuilder
from repro.network.simulate import output_truth_tables
from repro.truth.truthtable import TruthTable


class TestBuilder:
    def test_inputs(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        assert a.name == "a" and c.name == "c"

    def test_and_or(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        y = b.or_(b.and_(a, c), ~a)
        b.output("y", y)
        net = b.network()
        tts = output_truth_tables(net)
        va, vc = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert tts["y"] == (va & vc) | ~va

    def test_named_gates(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        s = b.and_(a, c, name="myand")
        assert s.name == "myand"

    def test_nand_nor(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("nand", b.nand_(a, c))
        b.output("nor", b.nor_(a, c))
        tts = output_truth_tables(b.network())
        va, vc = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert tts["nand"] == ~(va & vc)
        assert tts["nor"] == ~(va | vc)

    def test_xor(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("x", b.xor_(a, c))
        tts = output_truth_tables(b.network())
        assert tts["x"] == TruthTable.var(0, 2) ^ TruthTable.var(1, 2)

    def test_auto_names_unique(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        s1 = b.and_(a, c)
        s2 = b.and_(a, ~c)
        assert s1.name != s2.name

    def test_validation_runs(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("y", b.and_(a, c))
        net = b.network(validate=True)
        assert net.num_gates == 1

    def test_inverted_output(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("y", ~b.and_(a, c))
        tts = output_truth_tables(b.network())
        assert tts["y"] == ~(TruthTable.var(0, 2) & TruthTable.var(1, 2))
