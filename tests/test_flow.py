"""Tests for the declarative pass/flow engine (repro.flow)."""

import pytest

from tests.util import make_random_network
from repro.bench.circuits import parity_tree, ripple_adder
from repro.core.lut import LUTCircuit
from repro.errors import FlowError
from repro.flow import (
    CORE_MAPPERS,
    Flow,
    FlowContext,
    FlowMapperAdapter,
    PASSES,
    area_flow,
    get_registry,
    mapper_names,
    resolve_mapper,
)
from repro.flow.registry import FlowRegistry
from repro.obs import capture, metrics
from repro.pipeline import map_area, map_delay
from repro.verify import verify_equivalence


def bench_networks():
    return [ripple_adder(4), parity_tree(6), make_random_network(7, num_gates=14)]


class TestFlowConstruction:
    def test_type_mismatch_rejected_at_construction(self):
        with pytest.raises(FlowError) as excinfo:
            Flow("bad", [PASSES["merge"], PASSES["sweep"]])
        message = str(excinfo.value)
        assert "stage 1" in message and "stage 0" in message

    def test_two_mappers_rejected(self):
        with pytest.raises(FlowError):
            Flow("bad", [PASSES["chortle"], PASSES["mis"]])

    def test_empty_flow_rejected(self):
        with pytest.raises(FlowError):
            Flow("empty", [])

    def test_spec_round_trips(self):
        flow = get_registry().parse("sweep,strash,chortle,merge")
        assert flow.spec == "sweep,strash,chortle,merge"
        again = get_registry().parse(flow.spec)
        assert [p.name for p in again.passes] == [p.name for p in flow.passes]

    def test_domains(self):
        flow = area_flow()
        assert flow.input_domain == "network"
        assert flow.output_domain == "circuit"
        assert flow.is_mapping_flow
        net_only = get_registry().parse("sweep,strash")
        assert not net_only.is_mapping_flow


class TestRegistry:
    def test_builtins_registered(self):
        names = get_registry().names()
        assert "area" in names and "delay" in names

    def test_unknown_flow_clean_error(self):
        with pytest.raises(FlowError) as excinfo:
            get_registry().get("bogus")
        assert "area" in str(excinfo.value)

    def test_unknown_pass_clean_error(self):
        with pytest.raises(FlowError) as excinfo:
            get_registry().parse("sweep,bogus")
        assert "sweep" in str(excinfo.value)

    def test_empty_spec_rejected(self):
        with pytest.raises(FlowError):
            get_registry().parse(" , ")

    def test_duplicate_registration_rejected(self):
        registry = FlowRegistry()
        registry.register(area_flow())
        with pytest.raises(FlowError):
            registry.register(area_flow())
        registry.register(area_flow(), replace=True)

    def test_resolve_prefers_registered_name(self):
        assert get_registry().resolve("area").spec == area_flow().spec


class TestFlowExecution:
    @pytest.mark.parametrize("name", ["area", "delay"])
    def test_registered_flows_verified_on_bench_circuits(self, name):
        flow = get_registry().get(name)
        for net in bench_networks():
            circuit = flow.run(net, FlowContext(k=4))
            assert isinstance(circuit, LUTCircuit)
            verify_equivalence(net, circuit)
            circuit.validate(4)

    def test_shims_match_flow_engine_lut_for_lut(self):
        """map_area/map_delay must equal the registered flows exactly."""
        for net in bench_networks():
            for k in (3, 4):
                via_shim = map_area(net, k=k)
                via_flow = get_registry().get("area").run(net, FlowContext(k=k))
                assert [
                    (lut.name, lut.inputs, lut.tt.bits) for lut in via_shim.luts()
                ] == [
                    (lut.name, lut.inputs, lut.tt.bits) for lut in via_flow.luts()
                ]
                fast_shim = map_delay(net, k=k, slack=0)
                fast_flow = get_registry().get("delay").run(
                    net, FlowContext(k=k, config={"slack": 0})
                )
                assert fast_shim.cost == fast_flow.cost
                assert fast_shim.depth() == fast_flow.depth()

    def test_stage_results_recorded(self):
        net = make_random_network(1, num_gates=12)
        ctx = FlowContext(k=4)
        get_registry().get("area").run(net, ctx)
        assert [s.name for s in ctx.stages] == [
            "sweep", "strash", "refactor", "strash", "chortle", "merge",
        ]
        assert [s.index for s in ctx.stages] == list(range(6))
        assert all(s.seconds >= 0.0 for s in ctx.stages)
        assert ctx.stages[-1].domain == "circuit"

    def test_stage_spans_unique_and_sized(self):
        net = make_random_network(2, num_gates=12)
        with capture() as sink:
            get_registry().get("area").run(net, FlowContext(k=4))
        stage_names = [
            r.name for r in sink.records if r.name.startswith("flow.stage.")
        ]
        assert len(stage_names) == len(set(stage_names)) == 6
        for record in sink.records:
            if record.name.startswith("flow.stage."):
                assert record.attrs["size_in"] > 0
                assert record.attrs["size_out"] > 0

    def test_flow_counters(self):
        net = make_random_network(3, num_gates=10)
        before = metrics.counters()
        get_registry().get("area").run(net, FlowContext(k=4))
        delta = metrics.counter_delta(before)
        assert delta["flow.runs"] == 1
        assert delta["flow.stages_run"] == 6
        assert delta["flow.pass.strash.runs"] == 2
        assert delta["flow.pass.chortle.runs"] == 1

    def test_network_only_flow_returns_network(self):
        from repro.network.network import BooleanNetwork

        net = make_random_network(4, num_gates=10)
        out = get_registry().parse("sweep,strash").run(net, FlowContext())
        assert isinstance(out, BooleanNetwork)

    def test_context_sinks_attached_for_run(self):
        from repro.obs import MemorySink, get_tracer

        net = make_random_network(5, num_gates=8)
        sink = MemorySink()
        get_registry().get("area").run(net, FlowContext(k=4, sinks=(sink,)))
        assert not get_tracer().enabled
        assert sink.by_name("flow.run")


class TestCheckedMode:
    @pytest.mark.parametrize("name", ["area", "delay"])
    def test_checked_flows_pass_and_count(self, name):
        net = make_random_network(6, num_gates=12)
        before = metrics.counters()
        ctx = FlowContext(k=4, checked=True)
        circuit = get_registry().get(name).run(net, ctx)
        verify_equivalence(net, circuit)
        delta = metrics.counter_delta(before)
        assert delta["flow.stages_checked"] == len(ctx.stages)
        assert all(s.checked for s in ctx.stages)

    def test_checked_failure_names_the_stage(self):
        """A pass that corrupts the logic is caught and attributed."""
        from repro.flow.passes import NetworkPass
        from repro.network.network import Signal

        class BrokenPass(NetworkPass):
            name = "broken"

            def run(self, value, ctx):
                out = value.copy()
                # Invert one output port: functionally wrong, same shape.
                port, sig = next(iter(out.outputs.items()))
                out.set_output(port, Signal(sig.name, not sig.inv))
                return out

        flow = Flow("evil", [PASSES["sweep"], BrokenPass(), PASSES["chortle"]])
        net = make_random_network(7, num_gates=10)
        with pytest.raises(FlowError) as excinfo:
            flow.run(net, FlowContext(k=4, checked=True))
        message = str(excinfo.value)
        assert "stage 1" in message and "broken" in message

    def test_unchecked_does_not_verify(self):
        net = make_random_network(8, num_gates=10)
        before = metrics.counters()
        get_registry().get("area").run(net, FlowContext(k=4))
        delta = metrics.counter_delta(before)
        assert "flow.stages_checked" not in delta


class TestMapperProtocol:
    def test_mapper_names_cover_core_and_flows(self):
        names = mapper_names()
        assert set(CORE_MAPPERS) <= set(names)
        assert {"area", "delay"} <= set(names)

    def test_resolve_raw_mapper(self):
        mapper = resolve_mapper("chortle", k=4)
        assert mapper.name == "chortle"
        net = make_random_network(9, num_gates=10)
        verify_equivalence(net, mapper.map(net))

    def test_resolve_flow_and_spec(self):
        net = make_random_network(10, num_gates=10)
        for spec in ("delay", "sweep,strash,chortle,merge"):
            mapper = resolve_mapper(spec, k=4, checked=True)
            verify_equivalence(net, mapper.map(net))

    def test_checked_raw_mapper_rejected(self):
        with pytest.raises(FlowError):
            resolve_mapper("chortle", k=4, checked=True)

    def test_adapter_rejects_network_only_flow(self):
        with pytest.raises(FlowError):
            FlowMapperAdapter(get_registry().parse("sweep,strash"), k=4)

    def test_all_mappers_have_names(self):
        for name, factory in CORE_MAPPERS.items():
            assert factory(4).name == name


class TestMergeGuard:
    def test_merge_rejection_counted(self, monkeypatch):
        """A depth-increasing merge is kept out and counted, not dropped."""
        import repro.flow.passes as passes_mod

        net = make_random_network(11, num_gates=12)

        def bad_merge(circuit, k, protect_outputs=True):
            from repro.extensions.lutmerge import merge_luts as real

            merged = real(circuit, k, protect_outputs=protect_outputs)
            # Pretend the merge came back deeper than the input.
            monkeypatch.setattr(
                type(merged), "depth", lambda self: 10 ** 6, raising=True
            )
            return merged

        monkeypatch.setattr(passes_mod, "merge_luts", bad_merge)
        before = metrics.counters()
        circuit = map_delay(net, k=4)
        delta = metrics.counter_delta(before)
        assert delta.get("pipeline.merge_rejected") == 1
        verify_equivalence(net, circuit)
