"""Tests for trace analytics (repro.obs.traceview)."""

import json

import pytest

from repro.errors import PerfError
from repro.obs import capture, span
from repro.obs.tracer import SpanRecord
from repro.obs.traceview import (
    aggregate_by_name,
    build_span_tree,
    critical_path,
    folded_stacks,
    hotspots,
    load_trace,
    render_critical_path,
    render_hotspots,
)


def rec(span_id, parent_id, name, start, duration, depth=0):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent_id,
        depth=depth,
        name=name,
        start=start,
        duration=duration,
    )


@pytest.fixture
def forest():
    """root(10s) -> [a(4s) -> leaf(1s), b(3s)]; second root c(2s)."""
    return [
        rec(4, 2, "leaf", 1.5, 1.0, depth=2),
        rec(2, 1, "a", 1.0, 4.0, depth=1),
        rec(3, 1, "b", 5.0, 3.0, depth=1),
        rec(1, None, "root", 0.0, 10.0),
        rec(5, None, "c", 20.0, 2.0),
    ]


class TestSpanTree:
    def test_roots_and_children(self, forest):
        roots = build_span_tree(forest)
        assert [r.name for r in roots] == ["root", "c"]
        root = roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_orphan_parent_becomes_root(self):
        # Parent span 99 never finished (aborted run): the child must
        # still be accounted for, as a root.
        roots = build_span_tree([rec(1, 99, "orphan", 0.0, 1.0)])
        assert [r.name for r in roots] == ["orphan"]

    def test_self_time(self, forest):
        roots = build_span_tree(forest)
        root, c = roots
        assert root.self_seconds == pytest.approx(3.0)  # 10 - (4 + 3)
        assert root.children[0].self_seconds == pytest.approx(3.0)  # 4 - 1
        assert c.self_seconds == pytest.approx(2.0)

    def test_self_time_floored_at_zero(self):
        # Timer jitter can make children sum past their parent; the
        # floor keeps the aggregate sane.
        roots = build_span_tree(
            [rec(2, 1, "child", 0.0, 1.1), rec(1, None, "p", 0.0, 1.0)]
        )
        assert roots[0].self_seconds == 0.0

    def test_self_time_telescopes_to_root_duration(self, forest):
        roots = build_span_tree(forest)
        total_self = sum(
            s.self_seconds for s in aggregate_by_name(roots)
        )
        wall = sum(r.duration for r in roots)
        assert total_self == pytest.approx(wall)


class TestAggregation:
    def test_sorted_by_self_time(self, forest):
        stats = aggregate_by_name(build_span_tree(forest))
        names = [s.name for s in stats]
        assert names[0] in ("root", "a")  # both 3.0s self
        assert names[-1] == "leaf"

    def test_counts_and_totals(self):
        records = [
            rec(1, None, "x", 0.0, 1.0),
            rec(2, None, "x", 2.0, 3.0),
        ]
        (stat,) = aggregate_by_name(build_span_tree(records))
        assert stat.count == 2
        assert stat.total_seconds == pytest.approx(4.0)
        assert stat.self_seconds == pytest.approx(4.0)
        assert stat.mean_self_seconds == pytest.approx(2.0)

    def test_hotspots_top_and_wall(self, forest):
        stats, wall = hotspots(forest, top=2)
        assert len(stats) == 2
        assert wall == pytest.approx(12.0)  # 10 + 2, root durations only

    def test_live_capture_sums_to_wall(self):
        with capture() as sink, span("t.root"):
            with span("t.a"):
                with span("t.leaf"):
                    pass
            with span("t.b"):
                pass
        stats, wall = hotspots(sink.records)
        total_self = sum(s.self_seconds for s in stats)
        assert total_self == pytest.approx(wall, rel=1e-9)


class TestCriticalPath:
    def test_follows_heaviest_child(self, forest):
        path = critical_path(build_span_tree(forest))
        assert [n.name for n in path] == ["root", "a", "leaf"]

    def test_empty(self):
        assert critical_path([]) == []

    def test_render(self, forest):
        text = render_critical_path(critical_path(build_span_tree(forest)))
        assert "root" in text and "leaf" in text


class TestFoldedStacks:
    def test_format_and_values(self, forest):
        lines = folded_stacks(forest)
        folded = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        assert folded["root"] == 3_000_000
        assert folded["root;a"] == 3_000_000
        assert folded["root;a;leaf"] == 1_000_000
        assert folded["root;b"] == 3_000_000
        assert folded["c"] == 2_000_000

    def test_every_line_is_stack_space_int(self, forest):
        for line in folded_stacks(forest):
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            assert all(part for part in stack.split(";"))

    def test_identical_stacks_merge(self):
        records = [
            rec(1, None, "x", 0.0, 1.0),
            rec(2, None, "x", 2.0, 1.0),
        ]
        (line,) = folded_stacks(records)
        assert line == "x 2000000"

    def test_separator_characters_cleaned(self):
        records = [rec(1, None, "a;b c", 0.0, 1.0)]
        (line,) = folded_stacks(records)
        assert line.startswith("a:b_c ")

    def test_zero_self_time_dropped(self):
        records = [
            rec(2, 1, "child", 0.0, 1.0),
            rec(1, None, "wrapper", 0.0, 1.0),
        ]
        lines = folded_stacks(records)
        assert lines == ["wrapper;child 1000000"]


class TestLoadTrace:
    def _write(self, path, records, extra=""):
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict()) + "\n")
            handle.write(extra)

    def test_round_trip(self, tmp_path, forest):
        path = tmp_path / "t.jsonl"
        self._write(path, forest)
        loaded = load_trace(str(path))
        assert [r.name for r in loaded] == [r.name for r in forest]
        assert loaded[0].attrs == {}

    def test_truncated_final_line_dropped(self, tmp_path, forest):
        path = tmp_path / "t.jsonl"
        self._write(path, forest, extra='{"span_id": 9, "name": "cut')
        assert len(load_trace(str(path))) == len(forest)

    def test_malformed_interior_line_raises(self, tmp_path, forest):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(forest[0].to_dict()) + "\n")
        with pytest.raises(PerfError, match="line 1"):
            load_trace(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PerfError):
            load_trace(str(tmp_path / "absent.jsonl"))


class TestRendering:
    def test_hotspot_table(self, forest):
        stats, wall = hotspots(forest)
        text = render_hotspots(stats, wall)
        assert "span" in text and "self" in text and "count" in text
        assert "listed self time" in text
        assert "100.0%" in text  # full forest accounts for all root time
