"""Tests for fanout-node replication."""

import pytest

from tests.util import make_random_network
from repro.core.chortle import ChortleMapper
from repro.extensions.replicate import replicate_fanout_nodes
from repro.network.builder import NetworkBuilder
from repro.network.simulate import output_truth_tables
from repro.verify import verify_equivalence


def shared_gate_network():
    """g is shared by two consumers and drives no port."""
    b = NetworkBuilder("shared")
    a, c, d, e = b.inputs("a", "c", "d", "e")
    g = b.and_(a, c, name="g")
    b.output("y1", b.or_(g, d, name="u1"))
    b.output("y2", b.or_(g, e, name="u2"))
    return b.network()


class TestReplication:
    def test_duplicates_shared_gate(self):
        net = shared_gate_network()
        rep = replicate_fanout_nodes(net)
        # g is gone (not port-driven); two copies exist.
        assert "g" not in rep
        dups = [n for n in rep.names() if n.startswith("g_dup")]
        assert len(dups) == 2

    def test_functions_preserved(self):
        net = shared_gate_network()
        rep = replicate_fanout_nodes(net)
        assert output_truth_tables(net) == output_truth_tables(rep)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks_preserved(self, seed):
        net = make_random_network(seed, num_gates=12)
        rep = replicate_fanout_nodes(net)
        assert output_truth_tables(net) == output_truth_tables(rep)
        rep.validate()

    def test_port_driven_gate_kept(self):
        b = NetworkBuilder()
        a, c, d = b.inputs("a", "c", "d")
        g = b.and_(a, c, name="g")
        b.output("direct", g)
        b.output("other", b.or_(g, d, name="u"))
        rep = replicate_fanout_nodes(b.network())
        assert "g" in rep  # still drives the port
        assert output_truth_tables(b.network()) == output_truth_tables(rep)

    def test_wide_gates_not_duplicated(self):
        b = NetworkBuilder()
        xs = b.inputs(*["x%d" % i for i in range(6)])
        g = b.and_(*xs, name="g")
        b.output("y1", b.or_(g, xs[0], name="u1"))
        b.output("y2", b.or_(g, xs[1], name="u2"))
        rep = replicate_fanout_nodes(b.network(), max_fanin=4)
        assert "g" in rep  # fanin 6 > max_fanin, untouched

    def test_multiple_rounds(self):
        net = shared_gate_network()
        rep = replicate_fanout_nodes(net, rounds=2)
        assert output_truth_tables(net) == output_truth_tables(rep)

    def test_no_op_when_nothing_shared(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("y", b.and_(a, c, name="g"))
        net = b.network()
        rep = replicate_fanout_nodes(net)
        assert sorted(rep.names()) == sorted(net.names())


class TestReplicateUntilTree:
    @pytest.mark.parametrize("seed", range(5))
    def test_functions_preserved(self, seed):
        from repro.extensions.replicate import replicate_until_tree

        net = make_random_network(seed, num_gates=12)
        dup = replicate_until_tree(net)
        assert output_truth_tables(net) == output_truth_tables(dup)
        dup.validate()

    @pytest.mark.parametrize("seed", range(5))
    def test_reduces_tree_count(self, seed):
        from repro.core.forest import build_forest
        from repro.extensions.replicate import replicate_until_tree

        net = make_random_network(seed, num_gates=12)
        dup = replicate_until_tree(net)
        assert build_forest(dup).num_trees <= build_forest(net).num_trees + 1

    def test_growth_budget_respected(self):
        from repro.extensions.replicate import replicate_until_tree

        net = make_random_network(2, num_gates=12)
        dup = replicate_until_tree(net, max_growth=1.5)
        # One more round may land just past the budget, never runaway.
        assert dup.num_gates <= net.num_gates * 1.5 * 3

    def test_bad_growth_rejected(self):
        from repro.extensions.replicate import replicate_until_tree

        with pytest.raises(ValueError):
            replicate_until_tree(shared_gate_network(), max_growth=0.5)

    def test_duplication_usually_costs_area(self):
        """The paper: "it is difficult to realize any savings by this
        greedy approach" — full duplication inflates LUT counts."""
        from repro.extensions.replicate import replicate_until_tree

        worse = 0
        for seed in range(5):
            net = make_random_network(seed, num_gates=12)
            plain = ChortleMapper(k=4).map(net).cost
            dup = ChortleMapper(k=4).map(replicate_until_tree(net)).cost
            if dup >= plain:
                worse += 1
        assert worse >= 4


class TestMappingInteraction:
    def test_replication_helps_absorption(self):
        """The textbook win: the duplicated AND2 folds into each consumer's
        LUT, eliminating its own table."""
        net = shared_gate_network()
        plain = ChortleMapper(k=3).map(net)
        rep_net = replicate_fanout_nodes(net)
        replicated = ChortleMapper(k=3).map(rep_net)
        verify_equivalence(net, plain)
        verify_equivalence(rep_net, replicated)
        assert plain.cost == 3  # g + two consumers
        assert replicated.cost == 2  # each consumer absorbs its copy

    @pytest.mark.parametrize("seed", range(4))
    def test_mapped_results_equivalent(self, seed):
        net = make_random_network(seed, num_gates=10)
        rep = replicate_fanout_nodes(net)
        circuit = ChortleMapper(k=4).map(rep)
        verify_equivalence(net, circuit)
