"""Tests for XC3000-style CLB packing."""

import math

import pytest

from tests.util import make_random_network
from repro.core.chortle import ChortleMapper
from repro.core.lut import LUTCircuit
from repro.errors import MappingError
from repro.extensions.clb import ClbPacker, pack_clbs
from repro.truth.truthtable import TruthTable


def circuit_with_luts(specs):
    """Build a LUT circuit from (name, input-names) specs."""
    circuit = LUTCircuit("t")
    signals = set()
    for _, inputs in specs:
        signals.update(inputs)
    for sig in sorted(signals):
        circuit.add_input(sig)
    for name, inputs in specs:
        tt = TruthTable.const(True, len(inputs))
        circuit.add_lut(name, tuple(inputs), tt)
    return circuit


class TestCompatibility:
    def test_small_pair_no_sharing_needed(self):
        packer = ClbPacker()
        assert packer.can_pair(frozenset("ab"), frozenset("cd"))

    def test_wide_pair_needs_sharing(self):
        packer = ClbPacker()
        assert not packer.can_pair(frozenset("abcd"), frozenset("efgh"))
        assert packer.can_pair(frozenset("abcd"), frozenset("abce"))

    def test_five_input_lut_not_pairable(self):
        packer = ClbPacker()
        assert not packer.can_pair(frozenset("abcde"), frozenset("a"))


class TestPacking:
    def test_disjoint_small_luts_pair(self):
        circuit = circuit_with_luts([("l1", ["a", "b"]), ("l2", ["c", "d"])])
        packing = pack_clbs(circuit)
        assert packing.num_clbs == 1
        assert packing.num_pairs == 1
        assert packing.packing_ratio == 2.0

    def test_sharing_pair(self):
        circuit = circuit_with_luts(
            [("l1", ["a", "b", "c", "d"]), ("l2", ["a", "b", "c", "e"])]
        )
        packing = pack_clbs(circuit)
        assert packing.num_clbs == 1
        assert set(packing.clbs[0].inputs) == {"a", "b", "c", "d", "e"}

    def test_unpairable_wide_luts(self):
        circuit = circuit_with_luts(
            [("l1", ["a", "b", "c", "d"]), ("l2", ["e", "f", "g", "h"])]
        )
        packing = pack_clbs(circuit)
        assert packing.num_clbs == 2
        assert packing.num_pairs == 0

    def test_five_input_lut_occupies_block_alone(self):
        circuit = circuit_with_luts(
            [("l1", ["a", "b", "c", "d", "e"]), ("l2", ["a", "b"])]
        )
        packing = pack_clbs(circuit)
        assert packing.num_clbs == 2

    def test_six_input_lut_rejected(self):
        circuit = circuit_with_luts([("l1", list("abcdef"))])
        with pytest.raises(MappingError):
            pack_clbs(circuit)

    def test_triangle_matches_one_pair(self):
        # Three mutually pairable LUTs: exactly one pair + one single.
        circuit = circuit_with_luts(
            [("l1", ["a", "b"]), ("l2", ["a", "c"]), ("l3", ["b", "c"])]
        )
        packing = pack_clbs(circuit)
        assert packing.num_clbs == 2
        assert packing.num_pairs == 1

    def test_inverter_pairs_with_anything(self):
        circuit = circuit_with_luts(
            [("inv", ["a"]), ("l2", ["b", "c", "d", "e"])]
        )
        packing = pack_clbs(circuit)
        assert packing.num_clbs == 1

    def test_bad_method_rejected(self):
        with pytest.raises(MappingError):
            ClbPacker(method="magic")


class TestMatchingQuality:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_at_least_as_good_as_greedy(self, seed):
        net = make_random_network(seed, num_gates=20)
        circuit = ChortleMapper(k=4).map(net)
        exact = ClbPacker(method="exact").pack(circuit)
        greedy = ClbPacker(method="greedy").pack(circuit)
        assert exact.num_clbs <= greedy.num_clbs

    @pytest.mark.parametrize("seed", range(6))
    def test_bounds(self, seed):
        net = make_random_network(seed, num_gates=20)
        circuit = ChortleMapper(k=4).map(net)
        packing = pack_clbs(circuit)
        assert math.ceil(circuit.num_luts / 2) <= packing.num_clbs
        assert packing.num_clbs <= circuit.num_luts
        assert packing.num_luts == circuit.num_luts

    @pytest.mark.parametrize("seed", range(6))
    def test_every_lut_in_exactly_one_clb(self, seed):
        net = make_random_network(seed, num_gates=20)
        circuit = ChortleMapper(k=4).map(net)
        packing = pack_clbs(circuit)
        placed = [name for clb in packing.clbs for name in clb.luts]
        assert sorted(placed) == sorted(lut.name for lut in circuit.luts())

    @pytest.mark.parametrize("seed", range(6))
    def test_every_clb_legal(self, seed):
        net = make_random_network(seed, num_gates=20)
        circuit = ChortleMapper(k=4).map(net)
        packer = ClbPacker()
        for clb in packer.pack(circuit).clbs:
            assert len(clb.inputs) <= 5
            if clb.is_paired:
                for name in clb.luts:
                    assert len(circuit.lut(name).inputs) <= 4
