"""Tests for the dynamic-programming tree mapper (Section 3.1)."""

import math

import pytest

from tests.util import make_random_network, make_random_tree_network
from repro.core.divisions import exhaustive_map_tree
from repro.core.forest import build_forest
from repro.core.tree_mapper import ExtItem, MapCand, TreeMapper
from repro.errors import MappingError
from repro.network.builder import NetworkBuilder
from repro.network.network import AND


def map_single_tree(net, k, split_threshold=10):
    forest = build_forest(net)
    assert forest.num_trees == 1
    mapper = TreeMapper(k, split_threshold=split_threshold)
    return mapper.map_tree(net, forest.trees[0])


class TestParameters:
    def test_k_must_be_at_least_2(self):
        with pytest.raises(MappingError):
            TreeMapper(1)

    def test_split_threshold_validated(self):
        with pytest.raises(MappingError):
            TreeMapper(4, split_threshold=1)

    def test_single_fanin_rejected(self):
        mapper = TreeMapper(4)
        with pytest.raises(MappingError):
            mapper.compute_node_table(AND, [ExtItem("a", False)])

    def test_no_fanin_rejected(self):
        with pytest.raises(MappingError):
            TreeMapper(4).compute_node_table(AND, [])


class TestSingleNodes:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    @pytest.mark.parametrize("fanin", [2, 3, 4, 5, 6, 7, 8])
    def test_wide_gate_optimal_cost(self, k, fanin):
        """A single f-input gate needs ceil((f-1)/(k-1)) LUTs."""
        b = NetworkBuilder()
        xs = b.inputs(*["x%d" % i for i in range(fanin)])
        b.output("y", b.and_(*xs, name="g"))
        cand = map_single_tree(b.network(), k)
        assert cand.cost == math.ceil((fanin - 1) / (k - 1))

    def test_fanin_equal_k_is_one_lut(self):
        b = NetworkBuilder()
        xs = b.inputs("a", "b", "c", "d")
        b.output("y", b.or_(*xs, name="g"))
        assert map_single_tree(b.network(), 4).cost == 1


class TestSameOpTrees:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    @pytest.mark.parametrize("seed", range(5))
    def test_same_op_tree_reaches_leaf_bound(self, k, seed):
        """For an all-AND tree the optimum is ceil((L-1)/(K-1)) where L is
        the number of leaf edges: decompositions can rebalance freely."""
        import random

        rng = random.Random(seed)
        b = NetworkBuilder()
        leaf_count = [0]

        def leaf():
            leaf_count[0] += 1
            return b.input("x%d" % leaf_count[0])

        def build(depth):
            fan = rng.randint(2, 4)
            children = [
                build(depth - 1) if depth > 0 and rng.random() < 0.6 else leaf()
                for _ in range(fan)
            ]
            return b.and_(*children)

        b.output("y", build(3))
        net = b.network()
        cand = map_single_tree(net, k)
        leaves = leaf_count[0]
        assert cand.cost == math.ceil((leaves - 1) / (k - 1))


class TestOracleCrossCheck:
    """The fast subset DP must equal the paper's exhaustive pseudo-code."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_random_trees_match_oracle(self, seed, k):
        net = make_random_tree_network(seed, depth=3, max_fanin=4)
        forest = build_forest(net)
        fast = TreeMapper(k).map_tree(net, forest.trees[0]).cost
        oracle = exhaustive_map_tree(net, forest.trees[0], k)
        assert fast == oracle

    @pytest.mark.parametrize("seed", range(8))
    def test_random_forests_match_oracle(self, seed):
        net = make_random_network(seed, num_gates=8, max_fanin=5)
        forest = build_forest(net)
        for k in (2, 3, 4):
            mapper = TreeMapper(k)
            for tree in forest.trees:
                fast = mapper.map_tree(net, tree).cost
                assert fast == exhaustive_map_tree(net, tree, k)


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(6))
    def test_cost_nonincreasing_in_k(self, seed):
        """cost(minmap(n,U)) >= cost(minmap(n,K)) for U <= K (Section 3.1)."""
        net = make_random_tree_network(seed, depth=3)
        forest = build_forest(net)
        costs = [
            TreeMapper(k).map_tree(net, forest.trees[0]).cost
            for k in (2, 3, 4, 5, 6)
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    @pytest.mark.parametrize("seed", range(6))
    def test_node_table_monotone(self, seed):
        """Within one node table, cost at utilization u is nonincreasing."""
        net = make_random_tree_network(seed, depth=2)
        forest = build_forest(net)
        mapper = TreeMapper(5)
        # Re-run map_tree but inspect the root table via compute_node_table.
        import repro.core.tree_mapper as tm

        tables = {}
        for name in net.topological_order():
            if name not in forest.trees[0].internal:
                continue
            node = net.node(name)
            items = []
            for sig in node.fanins:
                if sig.name in tables:
                    items.append(tm.TableItem(tuple(tables[sig.name]), sig.inv))
                else:
                    items.append(tm.ExtItem(sig.name, sig.inv))
            table = mapper.compute_node_table(node.op, items)
            tables[name] = table
            costs = [c.cost for c in table[2:] if c is not None]
            assert all(a >= b for a, b in zip(costs, costs[1:]))


class TestNodeSplitting:
    @pytest.mark.parametrize("fanin", [11, 14, 20])
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_split_wide_gate_still_optimal(self, fanin, k):
        """Section 3.1.4: splitting wide same-op nodes loses nothing."""
        b = NetworkBuilder()
        xs = b.inputs(*["x%d" % i for i in range(fanin)])
        b.output("y", b.and_(*xs, name="g"))
        cand = map_single_tree(b.network(), k, split_threshold=10)
        assert cand.cost == math.ceil((fanin - 1) / (k - 1))

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_minimum_split_threshold_fanin_at_threshold(self, k):
        """split_threshold=2 with fanin exactly 2: no split is needed, and
        the result stays the one-LUT-per-(k-1)-fanins optimum."""
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("y", b.and_(a, c, name="g"))
        cand = map_single_tree(b.network(), k, split_threshold=2)
        assert cand.cost == 1

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_minimum_split_threshold_fanin_one_over(self, k):
        """split_threshold=2 with fanin 3 — one over the threshold — takes
        the split path on the smallest legal node; the same-op split is
        lossless, so the cost still matches the analytic optimum."""
        b = NetworkBuilder()
        xs = b.inputs("a", "c", "d")
        b.output("y", b.and_(*xs, name="g"))
        cand = map_single_tree(b.network(), k, split_threshold=2)
        assert cand.cost == math.ceil((3 - 1) / (k - 1))

    @pytest.mark.parametrize("seed", range(4))
    def test_minimum_split_threshold_equivalent_on_trees(self, seed):
        """Forcing a split at every node >2 fanins preserves functions."""
        from repro.core.chortle import ChortleMapper
        from repro.verify import verify_equivalence

        net = make_random_tree_network(seed, depth=2, max_fanin=5)
        circuit = ChortleMapper(k=4, split_threshold=2).map(net)
        verify_equivalence(net, circuit)
        circuit.validate(4)

    @pytest.mark.parametrize("seed", range(5))
    def test_split_matches_exhaustive_on_moderate_fanin(self, seed):
        """Forcing splits at fanin 4 stays near the unsplit optimum."""
        net = make_random_tree_network(seed, depth=2, max_fanin=6)
        forest = build_forest(net)
        unsplit = TreeMapper(4, split_threshold=10).map_tree(
            net, forest.trees[0]
        )
        split = TreeMapper(4, split_threshold=4).map_tree(net, forest.trees[0])
        assert split.cost >= unsplit.cost
        assert split.cost <= unsplit.cost + max(2, unsplit.cost // 2)


class TestLowerBound:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_leaf_edge_lower_bound(self, seed, k):
        """Any K-LUT tree mapping needs >= ceil((E-1)/(K-1)) tables,
        where E counts the tree's leaf edges: each table with u inputs
        reduces the number of dangling signals by u-1 <= K-1."""
        net = make_random_tree_network(seed, depth=3)
        forest = build_forest(net)
        tree = forest.trees[0]
        leaf_edges = sum(
            1
            for name in tree.internal
            for sig in net.node(name).fanins
            if sig.name in tree.leaves
        )
        cand = TreeMapper(k).map_tree(net, tree)
        assert cand.cost >= math.ceil((leaf_edges - 1) / (k - 1))

    @pytest.mark.parametrize("k", [6, 7, 8])
    def test_wide_k_supported(self, k):
        """Library-free mapping works for any K (the paper's thesis)."""
        from repro.core.chortle import ChortleMapper
        from repro.verify import verify_equivalence

        net = make_random_network(3, num_gates=12)
        circuit = ChortleMapper(k=k).map(net)
        verify_equivalence(net, circuit)
        circuit.validate(k)


class TestCandidateStructure:
    def test_cand_repr(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("y", b.and_(a, c, name="g"))
        cand = map_single_tree(b.network(), 4)
        assert isinstance(cand, MapCand)
        assert "cost=1" in repr(cand)
        assert cand.op == AND

    def test_expr_builds(self):
        b = NetworkBuilder()
        a, c, d = b.inputs("a", "c", "d")
        b.output("y", b.or_(b.and_(a, c), ~d))
        cand = map_single_tree(b.network(), 4)
        expr = cand.expr()
        from repro.core.expr import leaf_keys

        keys = leaf_keys(expr)
        assert len(keys) == 3
