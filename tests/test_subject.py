"""Tests for subject-graph (binary) decomposition."""

import pytest

from tests.util import make_random_network
from repro.baseline.subject import decompose_to_binary
from repro.network.builder import NetworkBuilder
from repro.network.simulate import output_truth_tables


class TestDecomposeToBinary:
    def test_wide_gate_becomes_binary_tree(self):
        b = NetworkBuilder()
        xs = b.inputs(*["x%d" % i for i in range(7)])
        b.output("y", b.and_(*xs, name="g"))
        net = decompose_to_binary(b.network())
        assert all(n.fanin_count <= 2 for n in net.gates())
        assert net.num_gates == 6  # f-1 binary gates
        assert "g" in net  # root keeps its name

    @pytest.mark.parametrize("seed", range(8))
    def test_functions_preserved(self, seed):
        net = make_random_network(seed)
        binary = decompose_to_binary(net)
        assert output_truth_tables(net) == output_truth_tables(binary)
        assert all(n.fanin_count <= 2 for n in binary.gates())

    def test_two_input_gates_untouched(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("y", b.and_(a, c, name="g"))
        net = decompose_to_binary(b.network())
        assert net.num_gates == 1

    def test_edge_polarities_preserved(self):
        b = NetworkBuilder()
        a, c, d = b.inputs("a", "c", "d")
        b.output("y", b.or_(~a, c, ~d, name="g"))
        net = decompose_to_binary(b.network())
        assert output_truth_tables(b.network()) == output_truth_tables(net)

    def test_balanced_shape(self):
        b = NetworkBuilder()
        xs = b.inputs(*["x%d" % i for i in range(8)])
        b.output("y", b.or_(*xs, name="g"))
        net = decompose_to_binary(b.network())
        assert net.depth() == 3  # perfectly balanced over 8 leaves
