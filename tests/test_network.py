"""Tests for the boolean-network DAG model."""

import pytest

from repro.errors import NetworkError
from repro.network.network import AND, OR, BooleanNetwork, Signal, as_signal


def small_net():
    net = BooleanNetwork("t")
    net.add_input("a")
    net.add_input("b")
    net.add_input("c")
    net.add_gate("g1", AND, ["a", "b"])
    net.add_gate("g2", OR, [Signal("g1"), Signal("c", True)])
    net.set_output("y", "g2")
    return net


class TestSignal:
    def test_invert(self):
        s = Signal("x")
        assert (~s).inv is True
        assert (~~s) == s

    def test_str(self):
        assert str(Signal("x")) == "x"
        assert str(Signal("x", True)) == "~x"

    def test_as_signal_coercions(self):
        assert as_signal("x") == Signal("x", False)
        assert as_signal(("x", True)) == Signal("x", True)
        assert as_signal(Signal("y")) == Signal("y")

    def test_as_signal_rejects_junk(self):
        with pytest.raises(TypeError):
            as_signal(42)


class TestConstruction:
    def test_build_and_query(self):
        net = small_net()
        assert net.num_inputs == 3
        assert net.num_gates == 2
        assert net.num_outputs == 1
        assert net.node("g1").op == AND
        assert net.node("g2").fanins == (Signal("g1"), Signal("c", True))
        assert "g1" in net
        assert "nope" not in net

    def test_duplicate_name_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_gate("a", AND, ["a"])

    def test_empty_name_rejected(self):
        net = BooleanNetwork()
        with pytest.raises(NetworkError):
            net.add_input("")

    def test_bad_op_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_gate("g", "xor", ["a"])

    def test_gate_needs_fanins(self):
        net = BooleanNetwork()
        with pytest.raises(NetworkError):
            net.add_gate("g", AND, [])

    def test_unknown_node_lookup(self):
        with pytest.raises(NetworkError):
            BooleanNetwork().node("missing")

    def test_fresh_name(self):
        net = small_net()
        assert net.fresh_name("new") == "new"
        assert net.fresh_name("g1") == "g1_0"

    def test_replace_node(self):
        net = small_net()
        net.replace_node("g2", AND, ["a", "c"])
        assert net.node("g2").op == AND
        with pytest.raises(NetworkError):
            net.replace_node("missing", AND, ["a"])

    def test_remove_node(self):
        net = small_net()
        net.remove_node("g2")
        assert "g2" not in net
        net.remove_node("c")
        assert net.num_inputs == 2

    def test_const_nodes(self):
        net = BooleanNetwork()
        net.add_const("one", True)
        net.add_const("zero", False)
        assert net.node("one").op == "const1"
        assert net.node("zero").op == "const0"

    def test_set_output_inverted(self):
        net = small_net()
        net.set_output("z", "g1", inv=True)
        assert net.outputs["z"] == Signal("g1", True)


class TestStructureQueries:
    def test_fanout_counts(self):
        net = small_net()
        counts = net.fanout_counts()
        assert counts["a"] == 1
        assert counts["g1"] == 1
        assert counts["g2"] == 1  # output use counts
        assert counts["c"] == 1

    def test_consumers(self):
        net = small_net()
        consumers = net.consumers()
        assert consumers["g1"] == ["g2"]
        assert consumers["g2"] == []

    def test_topological_order(self):
        net = small_net()
        order = net.topological_order()
        assert order.index("g1") < order.index("g2")
        assert order.index("a") < order.index("g1")

    def test_cycle_detected(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_gate("g1", AND, ["a", "g2"]) if False else None
        # Build the cycle through replace_node to bypass ordering.
        net.add_gate("g1", AND, ["a", "a"])
        net.add_gate("g2", AND, ["g1", "a"])
        net.replace_node("g1", AND, ["a", "g2"])
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_depth(self):
        net = small_net()
        assert net.depth() == 2

    def test_depth_empty_outputs(self):
        net = BooleanNetwork()
        net.add_input("a")
        assert net.depth() == 0

    def test_transitive_fanin(self):
        net = small_net()
        cone = net.transitive_fanin("g2")
        assert set(cone) == {"a", "b", "c", "g1", "g2"}

    def test_num_edges_and_literals(self):
        net = small_net()
        assert net.num_edges == 4


class TestValidate:
    def test_valid_network_passes(self):
        small_net().validate()

    def test_dangling_reference(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_gate("g", AND, ["a", "a"])
        net.replace_node("g", AND, [Signal("ghost"), Signal("a")])
        with pytest.raises(NetworkError):
            net.validate()

    def test_dangling_output(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.set_output("y", "ghost")
        with pytest.raises(NetworkError):
            net.validate()

    def test_copy_is_independent(self):
        net = small_net()
        dup = net.copy("dup")
        dup.add_input("extra")
        assert "extra" not in net
        assert dup.name == "dup"

    def test_repr(self):
        assert "inputs=3" in repr(small_net())
