"""Tests for forest partitioning (Section 3 / Figure 3 of the paper)."""

import pytest

from tests.util import make_random_network, make_random_tree_network
from repro.core.forest import build_forest, check_forest, tree_roots
from repro.errors import MappingError


class TestTreeRoots:
    def test_fig1_roots(self, fig1):
        """In Figure 1/3, g2 has fanout 2 (g4 and output y) so it splits."""
        roots = tree_roots(fig1)
        assert roots == {"g2", "g4"}

    def test_single_tree(self, tiny_and_or):
        roots = tree_roots(tiny_and_or)
        assert len(roots) == 1

    def test_output_driven_gate_is_root(self):
        from repro.network.builder import NetworkBuilder

        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        g1 = b.and_(a, c, name="g1")
        g2 = b.or_(g1, a, name="g2")
        b.output("mid", g1)  # g1 drives an output AND a gate
        b.output("top", g2)
        roots = tree_roots(b.network())
        assert roots == {"g1", "g2"}


class TestBuildForest:
    def test_fig1_forest_shape(self, fig1):
        forest = build_forest(fig1)
        assert forest.num_trees == 2
        by_root = {t.root: t for t in forest.trees}
        assert by_root["g2"].internal == {"g1", "g2"}
        assert by_root["g2"].leaves == {"a", "b", "c"}
        assert by_root["g4"].internal == {"g3", "g4"}
        # g2 is a leaf of g4's tree: the new pseudo-input of Figure 3.
        assert by_root["g4"].leaves == {"g2", "c", "d", "e"}

    def test_roots_in_topological_order(self, fig1):
        forest = build_forest(fig1)
        assert [t.root for t in forest.trees] == ["g2", "g4"]

    def test_tree_of(self, fig1):
        forest = build_forest(fig1)
        assert forest.tree_of("g2").root == "g2"
        with pytest.raises(MappingError):
            forest.tree_of("nope")

    @pytest.mark.parametrize("seed", range(10))
    def test_forest_partitions_gates(self, seed):
        """Every gate appears in exactly one tree (the cover condition)."""
        net = make_random_network(seed, num_gates=15)
        forest = build_forest(net)
        check_forest(forest)
        covered = set()
        for tree in forest.trees:
            assert not (covered & tree.internal)
            covered |= tree.internal
        assert covered == {g.name for g in net.gates()}

    @pytest.mark.parametrize("seed", range(10))
    def test_internal_nodes_have_single_fanout(self, seed):
        net = make_random_network(seed, num_gates=15)
        forest = build_forest(net)
        counts = net.fanout_counts()
        for tree in forest.trees:
            for name in tree.internal:
                if name != tree.root:
                    assert counts[name] == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_leaves_are_inputs_or_roots(self, seed):
        net = make_random_network(seed, num_gates=15)
        forest = build_forest(net)
        roots = {t.root for t in forest.trees}
        for tree in forest.trees:
            for leaf in tree.leaves:
                node = net.node(leaf)
                assert node.op == "input" or leaf in roots

    def test_whole_tree_network_is_one_tree(self):
        for seed in range(5):
            net = make_random_tree_network(seed)
            forest = build_forest(net)
            assert forest.num_trees == 1
            assert forest.trees[0].num_nodes == net.num_gates
