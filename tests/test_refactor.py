"""Tests for the collapse-minimize-refactor pass."""

import pytest

from tests.util import make_random_network, make_random_tree_network
from repro.core.chortle import ChortleMapper
from repro.network.builder import NetworkBuilder
from repro.network.simulate import output_truth_tables
from repro.opt.refactor import refactor_network
from repro.verify import verify_equivalence


def redundant_tree_network():
    """y = (a&b) | (a&b&c) | (a&~a&d): absorbable and contradictory terms."""
    b = NetworkBuilder("red")
    a, bb, c, d = b.inputs("a", "b", "c", "d")
    t1 = b.and_(a, bb, name="t1")
    t2 = b.and_(a, bb, c, name="t2")
    t3a = b.and_(a, d, name="t3a")
    t3 = b.and_(t3a, ~a, name="t3")
    b.output("y", b.or_(t1, t2, t3, name="root"))
    return b.network()


class TestRefactor:
    def test_redundancy_removed(self):
        net = redundant_tree_network()
        refactored = refactor_network(net)
        assert output_truth_tables(net) == output_truth_tables(refactored)
        # y collapses to a&b: two literals, one gate.
        assert refactored.num_gates <= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_function_preserved_random(self, seed):
        net = make_random_network(seed, num_gates=12)
        refactored = refactor_network(net)
        assert output_truth_tables(net) == output_truth_tables(refactored)
        refactored.validate()

    @pytest.mark.parametrize("seed", range(5))
    def test_trees_preserved(self, seed):
        net = make_random_tree_network(seed)
        refactored = refactor_network(net)
        assert output_truth_tables(net) == output_truth_tables(refactored)

    def test_wide_trees_skipped(self):
        # 16 distinct leaves > max_leaves: must pass through untouched.
        from repro.bench.circuits import wide_and

        net = wide_and(16)
        refactored = refactor_network(net, max_leaves=10)
        assert refactored.num_gates == net.num_gates

    def test_constant_cone_folds(self):
        b = NetworkBuilder("c")
        a, c = b.inputs("a", "c")
        t = b.and_(a, ~a, name="t")
        b.output("y", b.or_(t, b.and_(c, ~c, name="u"), name="root"))
        refactored = refactor_network(b.network())
        tts = output_truth_tables(refactored)
        assert tts["y"].is_constant()

    @pytest.mark.parametrize("seed", range(5))
    def test_mapping_after_refactor_never_worse_much(self, seed):
        """Refactoring is meant to help (or at least not hurt badly)."""
        net = make_random_network(seed, num_gates=15)
        plain = ChortleMapper(k=4).map(net).cost
        refactored_net = refactor_network(net)
        refd = ChortleMapper(k=4).map(refactored_net).cost
        verify_equivalence(refactored_net, ChortleMapper(k=4).map(refactored_net))
        assert refd <= plain + 2

    def test_idempotent_semantics(self):
        net = make_random_network(3)
        once = refactor_network(net)
        twice = refactor_network(once)
        assert output_truth_tables(once) == output_truth_tables(twice)
