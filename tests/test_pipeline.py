"""Tests for the composed mapping pipelines."""

import pytest

from tests.util import make_random_network
from repro.core.chortle import ChortleMapper
from repro.pipeline import map_area, map_delay
from repro.verify import verify_equivalence


class TestMapArea:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_equivalence(self, seed, k):
        net = make_random_network(seed, num_gates=15)
        circuit = map_area(net, k=k)
        verify_equivalence(net, circuit)
        circuit.validate(k)

    @pytest.mark.parametrize("seed", range(8))
    def test_never_worse_than_plain_chortle(self, seed):
        net = make_random_network(seed, num_gates=15)
        plain = ChortleMapper(k=4).map(net).cost
        composed = map_area(net, k=4).cost
        assert composed <= plain

    def test_finds_sharing_and_redundancy(self):
        """A network with a duplicated cone and a redundant term: the
        composed flow must beat plain Chortle strictly."""
        from repro.network.builder import NetworkBuilder

        b = NetworkBuilder("messy")
        a, c, d, e = b.inputs("a", "c", "d", "e")
        # Same subfunction built twice:
        g1 = b.and_(a, c, name="g1")
        g2 = b.and_(c, a, name="g2")
        # A redundant absorbed term inside one cone: acd is absorbed by ac.
        t1 = b.or_(g1, b.and_(a, c, d, name="t"), name="o1")
        t2 = b.or_(g2, e, name="o2")
        b.output("y1", t1)
        b.output("y2", t2)
        net = b.network()
        plain = ChortleMapper(k=4).map(net).cost
        composed = map_area(net, k=4).cost
        assert composed <= plain

    def test_flags(self):
        net = make_random_network(2, num_gates=12)
        raw = map_area(net, k=4, refactor=False, merge=False)
        full = map_area(net, k=4)
        verify_equivalence(net, raw)
        assert full.cost <= raw.cost


class TestMapDelay:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_and_depth(self, seed):
        net = make_random_network(seed, num_gates=15)
        fast = map_delay(net, k=4, slack=0)
        verify_equivalence(net, fast)
        area = map_area(net, k=4)
        assert fast.depth() <= area.depth()

    @pytest.mark.parametrize("seed", range(5))
    def test_slack_trades_area(self, seed):
        net = make_random_network(seed, num_gates=15)
        tight = map_delay(net, k=4, slack=0)
        loose = map_delay(net, k=4, slack=1000)
        assert loose.cost <= tight.cost
