"""Tests for the MCNC-89 stand-in suite."""

import pytest

from repro.bench.mcnc import MCNC_PROFILES, TABLE_CIRCUITS, mcnc_circuit, mcnc_suite


class TestProfiles:
    def test_all_paper_circuits_present(self):
        expected = {
            "9symml", "alu2", "alu4", "apex6", "apex7", "count",
            "des", "frg1", "frg2", "k2", "pair", "rot",
        }
        assert set(TABLE_CIRCUITS) == expected
        assert expected <= set(MCNC_PROFILES)

    @pytest.mark.parametrize(
        "name,pis,pos",
        [
            ("9symml", 9, 1),
            ("alu2", 10, 6),
            ("count", 35, 16),
            ("frg1", 28, 3),
            ("k2", 45, 45),
        ],
    )
    def test_published_interfaces(self, name, pis, pos):
        """The stand-ins carry the real benchmarks' interfaces."""
        net = mcnc_circuit(name)
        assert net.num_inputs == pis
        assert net.num_outputs == pos

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            mcnc_circuit("bogus")

    def test_deterministic(self):
        a = mcnc_circuit("count")
        b = mcnc_circuit("count")
        assert list(a.names()) == list(b.names())

    def test_named_after_benchmark(self):
        assert mcnc_circuit("alu2").name == "alu2"

    def test_suite_order(self):
        suite = mcnc_suite(("9symml", "alu2"))
        assert [n.name for n in suite] == ["9symml", "alu2"]

    @pytest.mark.parametrize("name", ["9symml", "count", "frg1", "apex7"])
    def test_valid_networks(self, name):
        net = mcnc_circuit(name)
        net.validate()
        assert net.num_gates > 30

    @pytest.mark.parametrize("name", ["c432", "c880", "t481"])
    def test_extra_profiles_usable(self, name):
        """The beyond-the-paper profiles generate and map cleanly."""
        from repro.core.chortle import ChortleMapper
        from repro.verify import verify_equivalence

        net = mcnc_circuit(name)
        net.validate()
        circuit = ChortleMapper(k=4).map(net)
        verify_equivalence(net, circuit, vectors=256)

    def test_extra_profiles_not_in_table_suite(self):
        assert "c432" not in TABLE_CIRCUITS
