"""White-box tests of algorithmic internals across the mappers."""

import pytest

from tests.util import make_random_network
from repro.baseline.mis_mapper import _remap_bits
from repro.core.lut import LUTCircuit
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper, _cone_function
from repro.network.builder import NetworkBuilder
from repro.network.transform import sweep
from repro.truth.truthtable import TruthTable


class TestRemapBits:
    def test_identity(self):
        tt = TruthTable(2, 0b0110)
        assert _remap_bits(tt.bits, [0, 1], 2) == 0b0110

    def test_swap(self):
        a, b = TruthTable.var(0, 2), TruthTable.var(1, 2)
        f = a & ~b
        swapped = TruthTable(2, _remap_bits(f.bits, [1, 0], 2))
        assert swapped == b & ~a

    def test_embed_in_larger_space(self):
        a = TruthTable.var(0, 1)
        embedded = TruthTable(3, _remap_bits(a.bits, [2], 3))
        assert embedded == TruthTable.var(2, 3)

    @pytest.mark.parametrize("bits", [0, 1, 0b0110, 0b1011])
    def test_consistent_with_permute(self, bits):
        tt = TruthTable(2, bits)
        assert _remap_bits(tt.bits, [1, 0], 2) == tt.permute([1, 0]).bits


class TestFlowMapInternals:
    def test_labels_monotone_along_paths(self):
        """label(v) >= label(u) for every edge u->v of the subject graph."""
        from repro.baseline.subject import decompose_to_binary

        for seed in range(4):
            net = decompose_to_binary(sweep(make_random_network(seed, num_gates=12)))
            fm = FlowMapper(k=4, preprocess=False)
            labels, cuts = fm._label_phase(net)
            for node in net.gates():
                for sig in node.fanins:
                    assert labels[node.name] >= labels[sig.name]

    def test_cuts_are_k_feasible_and_separate(self):
        from repro.baseline.subject import decompose_to_binary

        net = decompose_to_binary(sweep(make_random_network(1, num_gates=12)))
        fm = FlowMapper(k=3, preprocess=False)
        labels, cuts = fm._label_phase(net)
        for target, cut in cuts.items():
            assert 1 <= len(cut) <= 3
            # Removing the cut must disconnect the target from the inputs.
            blocked = set(cut)
            stack = [target]
            seen = set()
            while stack:
                cur = stack.pop()
                if cur in seen or cur in blocked:
                    continue
                seen.add(cur)
                node = net.node(cur)
                assert node.is_gate, "reached an input past the cut"
                for sig in node.fanins:
                    stack.append(sig.name)

    def test_cone_function(self):
        b = NetworkBuilder("c")
        a, c = b.inputs("a", "c")
        g = b.and_(a, ~c, name="g")
        b.output("y", g)
        net = b.network()
        tt = _cone_function(net, "g", ("a", "c"))
        assert tt == TruthTable.var(0, 2) & ~TruthTable.var(1, 2)


class TestBinPackInternals:
    def test_ffd_fills_first_fit(self):
        mapper = BinPackMapper(k=4)
        items = [(3, 0, ("ext", "a", False)), (2, 0, ("ext", "b", False)),
                 (1, 0, ("ext", "c", False)), (1, 0, ("ext", "d", False))]
        bins = mapper._ffd(items)
        assert [b.used for b in bins] == [4, 3]

    def test_ffd_oversized_item_rejected(self):
        from repro.errors import MappingError

        mapper = BinPackMapper(k=3)
        with pytest.raises(MappingError):
            mapper._ffd([(4, 0, ("ext", "a", False))])

    def test_pack_single_bin(self):
        mapper = BinPackMapper(k=4)
        items = [(1, 0, ("ext", n, False)) for n in "abc"]
        cand = mapper._pack("and", items)
        assert cand.cost == 1
        assert len(cand.placements) == 3

    def test_pack_requires_chaining(self):
        mapper = BinPackMapper(k=2)
        items = [(1, 0, ("ext", n, False)) for n in "abcde"]
        cand = mapper._pack("or", items)
        # ceil((5-1)/(2-1)) = 4 LUTs for a 5-input OR at K=2.
        assert cand.cost == 4


class TestClbInternals:
    def test_candidate_pairs_via_shared_signal(self):
        from repro.extensions.clb import ClbPacker

        packer = ClbPacker()
        lut_inputs = {
            "x": frozenset("abcd"),
            "y": frozenset("abce"),
            "z": frozenset("fghi"),
        }
        pairs = packer._candidate_pairs(lut_inputs)
        assert ("x", "y") in pairs
        assert ("x", "z") not in pairs

    def test_candidate_pairs_small_no_sharing(self):
        from repro.extensions.clb import ClbPacker

        packer = ClbPacker()
        lut_inputs = {"x": frozenset("ab"), "y": frozenset("cd")}
        assert ("x", "y") in packer._candidate_pairs(lut_inputs)


class TestEmissionInternals:
    def test_emit_candidate_counts(self):
        from repro.core.chortle import _emit_candidate
        from repro.core.forest import build_forest
        from repro.core.tree_mapper import TreeMapper

        net = sweep(make_random_network(5, num_gates=10))
        forest = build_forest(net)
        circuit = LUTCircuit("t")
        for name in net.inputs:
            circuit.add_input(name)
        total = 0
        for tree in forest.trees:
            cand = TreeMapper(4).map_tree(net, tree)
            emitted = _emit_candidate(cand, circuit, tree.root)
            assert emitted == cand.cost
            total += emitted
        assert circuit.num_luts == total
