"""Hypothesis property tests spanning the whole mapping stack.

These generate arbitrary small networks and assert the system-level
invariants: every mapper's output is functionally equivalent to its
input, respects the K bound, and the exact mapper's cost lower-bounds the
heuristics'.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baseline.mis_mapper import MisMapper
from repro.core.chortle import ChortleMapper
from repro.core.divisions import exhaustive_map_tree
from repro.core.forest import build_forest
from repro.extensions.binpack import BinPackMapper
from repro.extensions.flowmap import FlowMapper
from repro.network.builder import NetworkBuilder
from repro.network.network import Signal
from repro.network.simulate import output_truth_tables
from repro.network.transform import sweep
from repro.verify import verify_equivalence


@st.composite
def networks(draw, max_inputs=6, max_gates=9, max_fanin=5):
    """Arbitrary small swept AND/OR networks."""
    num_inputs = draw(st.integers(2, max_inputs))
    num_gates = draw(st.integers(1, max_gates))
    b = NetworkBuilder("hyp")
    sigs = list(b.inputs(*["i%d" % i for i in range(num_inputs)]))
    for _ in range(num_gates):
        fan = draw(st.integers(2, max_fanin))
        indices = draw(
            st.lists(
                st.integers(0, len(sigs) - 1),
                min_size=2,
                max_size=min(fan, len(sigs)),
                unique=True,
            )
        )
        fanins = [
            Signal(sigs[i].name, draw(st.booleans())) for i in indices
        ]
        op = b.and_ if draw(st.booleans()) else b.or_
        sigs.append(op(*fanins))
    b.output("o0", sigs[-1])
    if draw(st.booleans()) and num_gates >= 2:
        b.output("o1", sigs[-2])
    return sweep(b.network())


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(networks(), st.integers(2, 5))
@settings(**COMMON)
def test_chortle_equivalence_property(net, k):
    circuit = ChortleMapper(k=k).map(net)
    verify_equivalence(net, circuit)
    circuit.validate(k)


@given(networks(), st.integers(2, 5))
@settings(**COMMON)
def test_mis_equivalence_property(net, k):
    circuit = MisMapper(k=k).map(net)
    verify_equivalence(net, circuit)
    circuit.validate(k)


@given(networks(), st.integers(2, 5))
@settings(**COMMON)
def test_flowmap_equivalence_property(net, k):
    circuit = FlowMapper(k=k).map(net)
    verify_equivalence(net, circuit)
    circuit.validate(k)


@given(networks(), st.integers(2, 5))
@settings(**COMMON)
def test_binpack_equivalence_property(net, k):
    circuit = BinPackMapper(k=k).map(net)
    verify_equivalence(net, circuit)
    circuit.validate(k)


@given(networks(max_gates=6, max_fanin=4), st.integers(2, 4))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_chortle_matches_paper_pseudocode(net, k):
    """The optimized DP equals the exhaustive transliteration, always."""
    circuit = ChortleMapper(k=k, preprocess=False).map(net)
    forest = build_forest(net)
    oracle = sum(exhaustive_map_tree(net, t, k) for t in forest.trees)
    assert circuit.cost == oracle


@given(networks(), st.integers(2, 5))
@settings(**COMMON)
def test_heuristics_bounded_below_by_exact(net, k):
    exact = ChortleMapper(k=k).map(net).cost
    packed = BinPackMapper(k=k).map(net).cost
    assert packed >= exact


@given(networks())
@settings(**COMMON)
def test_cost_monotone_in_k(net):
    costs = [ChortleMapper(k=k).map(net).cost for k in (2, 3, 4, 5)]
    assert all(a >= b for a, b in zip(costs, costs[1:]))


@given(networks(), st.integers(2, 5))
@settings(**COMMON)
def test_flowmap_depth_lower_bounds_chortle(net, k):
    """FlowMap's label is the depth optimum *for a fixed subject graph*;
    Chortle mapped over the same binary decomposition can never go
    shallower.  (On the raw network Chortle may restructure wide nodes
    and legitimately beat it, so the comparison is structure-fair.)"""
    from repro.baseline.subject import decompose_to_binary
    from repro.network.transform import sweep as _sweep

    fm = FlowMapper(k=k)
    optimal = fm.optimal_depth(net)
    assert fm.map(net).depth() == optimal
    binary = decompose_to_binary(_sweep(net))
    assert ChortleMapper(k=k).map(binary).depth() >= optimal


@given(networks())
@settings(**COMMON)
def test_sweep_fixpoint_property(net):
    swept = sweep(net)
    assert output_truth_tables(swept) == output_truth_tables(net)
    assert sorted(sweep(swept).names()) == sorted(swept.names())
