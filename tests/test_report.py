"""Tests for structured mapping reports."""

import json

import pytest

from tests.util import make_random_network
from repro.core.chortle import ChortleMapper
from repro.report import MappingReport, build_report


@pytest.fixture
def mapped(fig1):
    circuit = ChortleMapper(k=3).map(fig1)
    return fig1, circuit


def _tiny_mapped():
    net = make_random_network(0, num_gates=6)
    return net, ChortleMapper(k=3).map(net)


class TestBuildReport:
    def test_basic_fields(self, mapped):
        net, circuit = mapped
        report = build_report(net, circuit, 3, seconds=0.01)
        assert report.circuit_name == "fig1"
        assert report.k == 3
        assert report.luts == 3
        assert report.num_inputs == 5
        assert report.num_outputs == 2
        assert report.depth == circuit.depth()
        assert report.seconds == 0.01

    def test_utilization(self, mapped):
        net, circuit = mapped
        report = build_report(net, circuit, 3)
        assert sum(report.utilization_histogram.values()) == circuit.num_luts
        assert 1.0 <= report.average_utilization <= 3.0

    def test_clb_packing_included(self, mapped):
        net, circuit = mapped
        report = build_report(net, circuit, 3, pack_blocks=True)
        assert report.clbs is not None
        assert report.clbs <= circuit.num_luts
        assert report.clb_packing_ratio >= 1.0

    def test_clb_omitted_by_default(self, mapped):
        net, circuit = mapped
        report = build_report(net, circuit, 3)
        assert report.clbs is None


class TestSerialization:
    def test_to_text(self, mapped):
        net, circuit = mapped
        text = build_report(net, circuit, 3, seconds=0.5).to_text()
        assert "fig1" in text
        assert "3 LUTs" in text
        assert "0.500s" in text

    def test_to_json_round_trip(self, mapped):
        net, circuit = mapped
        report = build_report(net, circuit, 3, pack_blocks=True)
        data = json.loads(report.to_json())
        assert data["luts"] == 3
        assert data["clbs"] == report.clbs
        assert "average_utilization" in data

    def test_from_dict_restores_histogram_int_keys(self, mapped):
        # JSON stringifies the utilization histogram's int keys; from_dict
        # must restore them so average_utilization and diffing keep working.
        net, circuit = mapped
        report = build_report(net, circuit, 3, seconds=0.25, pack_blocks=True)
        restored = MappingReport.from_dict(json.loads(report.to_json()))
        assert restored == report
        assert all(isinstance(u, int) for u in restored.utilization_histogram)
        assert restored.average_utilization == report.average_utilization

    def test_from_dict_ignores_derived_and_unknown_keys(self, mapped):
        net, circuit = mapped
        data = json.loads(build_report(net, circuit, 3).to_json())
        assert "average_utilization" in data  # derived key present in JSON
        data["some_future_field"] = 42
        restored = MappingReport.from_dict(data)
        assert restored.circuit_name == "fig1"

    def test_from_dict_tolerates_missing_histogram(self):
        data = json.loads(build_report(*_tiny_mapped(), 3).to_json())
        del data["utilization_histogram"]
        restored = MappingReport.from_dict(data)
        assert restored.utilization_histogram == {}
        assert restored.average_utilization == 0.0

    def test_tree_luts_round_trip(self, mapped):
        net, circuit = mapped
        report = build_report(net, circuit, 3)
        assert report.tree_luts
        assert sum(report.tree_luts.values()) == report.luts
        restored = MappingReport.from_dict(json.loads(report.to_json()))
        assert restored.tree_luts == report.tree_luts

    @pytest.mark.parametrize("seed", range(3))
    def test_random_networks(self, seed):
        net = make_random_network(seed)
        circuit = ChortleMapper(k=4).map(net)
        report = build_report(net, circuit, 4, mapper="chortle")
        assert report.luts == circuit.cost
        assert report.luts_total == circuit.num_luts


class TestCliIntegration:
    def test_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.blif"
        main(["generate", "count", "-o", str(path)])
        capsys.readouterr()
        assert main(["map", str(path), "-k", "4", "--report", "--clb",
                     "-o", str(tmp_path / "out.blif")]) == 0
        err = capsys.readouterr().err
        assert "mapping report" in err
        assert "CLBs" in err

    def test_json_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.blif"
        main(["generate", "frg1", "-o", str(path)])
        capsys.readouterr()
        assert main(["map", str(path), "--json-report",
                     "-o", str(tmp_path / "out.blif")]) == 0
        err = capsys.readouterr().err
        data = json.loads(err[err.index("{"):])
        assert data["mapper"] == "chortle"
