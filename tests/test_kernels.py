"""Tests for kernel extraction and level-0 identification."""

import pytest

from repro.opt.algebra import make_expr
from repro.opt.kernels import all_kernels, cokernels, is_level0_kernel, kernel_level


def E(*cubes):
    return make_expr(*[c.split() for c in cubes])


class TestAllKernels:
    def test_textbook_example(self):
        """The classic (a+b+c)(d+e)f + g example from Brayton-McMullen."""
        f = E("a d f", "a e f", "b d f", "b e f", "c d f", "c e f", "g")
        kernels = all_kernels(f)
        assert E("a", "b", "c") in kernels
        assert E("d", "e") in kernels
        # The product (a+b+c)(d+e) is a kernel with co-kernel f.
        assert E("a d", "a e", "b d", "b e", "c d", "c e") in kernels
        # f itself is cube-free (g shares nothing), hence a kernel.
        assert f in kernels

    def test_no_kernels_in_single_cube(self):
        assert all_kernels(E("a b c")) == set()

    def test_simple_sop(self):
        f = E("a b", "a c")
        kernels = all_kernels(f)
        assert E("b", "c") in kernels
        assert f not in kernels  # not cube-free (common literal a)

    def test_include_self_flag(self):
        f = E("a b", "c")
        assert f in all_kernels(f, include_self=True)
        assert f not in all_kernels(f, include_self=False)

    def test_kernels_are_cube_free(self):
        from repro.opt.algebra import is_cube_free

        f = E("a d f", "a e f", "b d f", "b e f", "c d f", "c e f", "g")
        for kernel in all_kernels(f):
            assert is_cube_free(kernel)


class TestLevel0:
    def test_disjoint_sop_is_level0(self):
        assert is_level0_kernel(E("a b", "c d"))
        assert is_level0_kernel(E("a", "b", "c"))
        assert is_level0_kernel(E("a b", "c"))

    def test_repeated_literal_not_level0(self):
        assert not is_level0_kernel(E("a b", "a c"))

    def test_non_cube_free_not_level0(self):
        assert not is_level0_kernel(E("a b"))

    def test_opposite_polarities_are_distinct_literals(self):
        # xor-shaped: a~b + ~ab — algebraically all four literals differ.
        assert is_level0_kernel(E("a ~b", "~a b"))

    def test_kernel_level(self):
        assert kernel_level(E("a", "b")) == 0
        # (a+b)(c) + d ... build a level-1 kernel: ac+bc+d has kernel a+b.
        assert kernel_level(E("a c", "b c", "d")) == 1

    def test_kernel_level_requires_cube_free(self):
        with pytest.raises(ValueError):
            kernel_level(E("a b"))


class TestCokernels:
    def test_cokernels_of_textbook(self):
        f = E("a d f", "a e f", "b d f", "b e f", "c d f", "c e f", "g")
        table = cokernels(f)
        assert E("d", "e") in table
        # d+e arises from co-kernels af, bf, cf.
        cks = set(table[E("d", "e")])
        assert make_expr(["a", "f"]).__class__  # sanity: frozenset cubes
        assert frozenset([("a", True), ("f", True)]) in cks
