"""Tests for the performance layer: memo cache, parallel mapping, bench-perf.

The load-bearing property throughout is *bit-identity*: every perf
configuration (cached, warm, threaded, process pool) must emit exactly
the circuit the plain serial mapper emits — same costs, same depths,
same LUT functions, same BLIF text.  A cache or a thread pool that
changes results is a correctness bug wearing a performance hat.
"""

import json
import os

import pytest

from tests.util import make_random_network
from repro.blif import write_lut_circuit
from repro.core.chortle import ChortleMapper
from repro.obs import metrics
from repro.perf.lru import LruCache
from repro.perf.memo import (
    DISK_SCHEMA,
    NodeTableCache,
    get_cache,
    node_signature,
    resolve_cache,
)


def mapped_text(net, k=4, **mapper_kwargs):
    """Map ``net`` and return the emitted BLIF text (the identity probe)."""
    circuit = ChortleMapper(k=k, **mapper_kwargs).map(net)
    return write_lut_circuit(circuit)


class TestLruCache:
    def test_get_put_and_counters(self):
        cache = LruCache(maxsize=4, name="test.lru")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru_not_fifo(self):
        cache = LruCache(maxsize=2, name="test.lru")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now least recent
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_metrics_registry_sees_counts(self):
        before = metrics.counters()
        cache = LruCache(maxsize=2, name="test.lru.metrics")
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        delta = metrics.counter_delta(before)
        assert delta["test.lru.metrics.hits"] == 1
        assert delta["test.lru.metrics.misses"] == 1

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=0)

    def test_unbounded_never_evicts(self):
        cache = LruCache(maxsize=None, name="test.lru.unbounded")
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 100 and cache.evictions == 0

    def test_stats_snapshot(self):
        cache = LruCache(maxsize=8, name="test.lru.stats")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["hits"] == 1
        assert stats["hit_rate"] == 1.0


class TestResolveCache:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_true_is_shared_singleton(self):
        assert resolve_cache(True) is get_cache()
        assert resolve_cache(True) is resolve_cache(True)

    def test_explicit_instance_passthrough(self):
        cache = NodeTableCache(maxsize=16)
        assert resolve_cache(cache) is cache


class TestSignatures:
    def test_duplicate_leaf_names_differ_from_distinct(self):
        # (a AND a) and (a AND b) must never share a cache entry: the
        # signature numbers leaves by first occurrence, so the repeat
        # shows up as a repeated id.
        from repro.core.tree_mapper import ExtItem

        same = node_signature("and", [ExtItem("a", False), ExtItem("a", False)])
        distinct = node_signature(
            "and", [ExtItem("a", False), ExtItem("b", False)]
        )
        assert same != distinct

    def test_names_do_not_matter_only_structure(self):
        from repro.core.tree_mapper import ExtItem

        ab = node_signature("or", [ExtItem("a", False), ExtItem("b", True)])
        xy = node_signature("or", [ExtItem("x", False), ExtItem("y", True)])
        assert ab == xy

    def test_unsigned_table_item_is_uncacheable(self):
        from repro.core.tree_mapper import TableItem

        sig = node_signature("and", [TableItem((), False, None)])
        assert sig is None


class TestBitIdentity:
    """Every perf configuration emits the serial uncached mapper's BLIF."""

    SEEDS = range(6)

    @pytest.mark.parametrize("k", [2, 4])
    def test_cached_matches_uncached(self, k):
        for seed in self.SEEDS:
            net = make_random_network(seed, num_gates=18)
            plain = mapped_text(net, k=k)
            assert mapped_text(net, k=k, cache=NodeTableCache()) == plain

    def test_warm_cache_matches(self):
        cache = NodeTableCache()
        for seed in self.SEEDS:
            net = make_random_network(seed, num_gates=18)
            plain = mapped_text(net, k=4)
            cold = mapped_text(net, k=4, cache=cache)
            warm = mapped_text(net, k=4, cache=cache)
            assert cold == plain and warm == plain

    def test_shared_cache_across_k_values(self):
        # One cache serves a K sweep: K is part of every key, so entries
        # never leak across cells.
        cache = NodeTableCache()
        net = make_random_network(3, num_gates=20)
        for k in (2, 3, 4, 5):
            assert mapped_text(net, k=k, cache=cache) == mapped_text(net, k=k)

    def test_thread_parallel_matches(self):
        for seed in self.SEEDS:
            net = make_random_network(seed, num_gates=18)
            assert mapped_text(net, jobs=2) == mapped_text(net)

    def test_thread_parallel_with_cache_matches(self):
        cache = NodeTableCache()
        for seed in self.SEEDS:
            net = make_random_network(seed, num_gates=18)
            assert mapped_text(net, jobs=2, cache=cache) == mapped_text(net)

    def test_process_parallel_matches(self):
        net = make_random_network(1, num_gates=24)
        assert mapped_text(net, jobs=2, executor="process") == mapped_text(net)

    def test_tiny_cache_evicts_but_stays_correct(self):
        # A pathologically small cache thrashes (hits *and* evictions)
        # yet must never change the mapping.
        cache = NodeTableCache(maxsize=8, name="test.tiny")
        for seed in self.SEEDS:
            net = make_random_network(seed, num_gates=18)
            assert mapped_text(net, cache=cache) == mapped_text(net)
        assert cache.evictions > 0

    def test_rejects_unknown_executor(self):
        from repro.errors import MappingError

        with pytest.raises(MappingError):
            ChortleMapper(k=4, executor="fiber")


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        cache = NodeTableCache()
        net = make_random_network(2, num_gates=18)
        mapped_text(net, cache=cache)
        assert len(cache) > 0
        path = cache.save_disk(str(tmp_path))
        assert os.path.exists(path)

        fresh = NodeTableCache(name="test.disk")
        assert fresh.load_disk(str(tmp_path)) == len(cache)
        # A mapper warmed purely from disk is bit-identical and all-hits.
        assert mapped_text(net, cache=fresh) == mapped_text(net)
        assert fresh.misses == 0

    def test_missing_file_loads_zero(self, tmp_path):
        assert NodeTableCache().load_disk(str(tmp_path / "nope")) == 0

    def test_corrupt_file_loads_zero(self, tmp_path):
        cache = NodeTableCache()
        path = cache.save_disk(str(tmp_path))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert NodeTableCache().load_disk(str(tmp_path)) == 0

    def test_stale_schema_ignored(self, tmp_path):
        import pickle

        cache = NodeTableCache()
        path = cache.save_disk(str(tmp_path))
        with open(path, "wb") as handle:
            pickle.dump(
                ("chortle-node-table-cache", DISK_SCHEMA + 1, [("k", "v")]),
                handle,
            )
        assert NodeTableCache().load_disk(str(tmp_path)) == 0

    def test_default_cache_dir_honours_env(self, monkeypatch):
        from repro.perf.memo import default_cache_dir

        monkeypatch.setenv("CHORTLE_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"


class TestSuiteParallel:
    def test_jobs_matches_serial_order_and_qor(self):
        from repro.bench.runner import run_suite

        nets = [make_random_network(s, num_gates=12) for s in range(2)]
        serial = run_suite(nets, mappers=("chortle",), ks=(3, 4))
        para = run_suite(nets, mappers=("chortle",), ks=(3, 4), jobs=2)

        def key(r):
            return (r.circuit_name, r.k, r.mapper, r.luts, r.luts_total,
                    r.depth)

        assert [key(r) for r in serial.reports] == [
            key(r) for r in para.reports
        ]

    def test_wall_seconds_recorded(self):
        from repro.bench.runner import run_suite

        result = run_suite(
            [make_random_network(0, num_gates=8)],
            mappers=("chortle",),
            ks=(4,),
        )
        assert result.reports[0].wall_seconds is not None
        assert result.reports[0].wall_seconds >= 0.0


class TestBenchPerf:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        from repro.perf.benchperf import run_bench_perf

        return run_bench_perf(
            circuits=["9symml"],
            ks=(3,),
            jobs=2,
            created_at="2026-08-06T00:00:00Z",
            cache_dir=str(tmp_path_factory.mktemp("perfcache")),
        )

    def test_phases_and_speedups(self, payload):
        phases = payload["phases"]
        assert set(phases) == {
            "serial_uncached", "cold_cache", "warm_cache", "parallel",
        }
        assert phases["serial_uncached"]["speedup_vs_serial"] == 1.0
        for record in phases.values():
            assert record["seconds"] >= 0.0

    def test_qor_identity_and_gate(self, payload):
        assert payload["qor_identical"] is True
        assert payload["gate"]["pass"] is True
        assert "qor_mismatches" not in payload

    def test_warm_phase_all_hits(self, payload):
        warm = payload["phases"]["warm_cache"]["cache"]
        assert warm["misses"] == 0 and warm["hits"] > 0
        assert warm["hit_rate"] == 1.0

    def test_disk_round_trip_recorded(self, payload):
        disk = payload["disk_cache"]
        assert disk["round_trip_ok"] is True
        assert disk["entries_saved"] == disk["entries_loaded"] > 0

    def test_payload_is_json_and_renderable(self, payload, tmp_path):
        from repro.perf.benchperf import render_bench_perf, save_bench_perf

        out = tmp_path / "bench.json"
        save_bench_perf(payload, str(out))
        assert json.loads(out.read_text())["cells"] == payload["cells"]
        text = render_bench_perf(payload)
        assert "warm_cache" in text and "gate PASS" in text

    def test_cli_quick_smoke(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "quick.json"
        code = main(
            [
                "bench-perf", "--quick", "--gate", "-o", str(out),
                "--circuits", "count", "--ks", "4",
                "--timestamp", "2026-08-06T00:00:00Z",
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["gate"]["pass"] is True


class TestWorkerTelemetry:
    def test_record_and_bucket_round_trip(self):
        from repro.perf.parallel import (
            record_worker_telemetry,
            worker_buckets,
        )

        before = metrics.counters()
        record_worker_telemetry(
            {
                "queue_wait": 0.5,
                "task_seconds": 1.25,
                "cache_hits": 7,
                "cache_misses": 3,
            },
            pickle_bytes=4096,
        )
        record_worker_telemetry(
            {"queue_wait": 0.25, "task_seconds": 0.75}, pickle_bytes=1024
        )
        buckets = worker_buckets(
            metrics.counter_delta(before), jobs=2, executor="process"
        )
        assert buckets["tasks"] == 2
        assert buckets["compute_seconds"] == pytest.approx(2.0, abs=1e-4)
        assert buckets["queue_wait_seconds"] == pytest.approx(0.75, abs=1e-4)
        assert buckets["pickle_bytes"] == 5120
        assert buckets["worker_cache"] == {
            "hits": 7, "misses": 3, "evictions": 0,
        }

    def test_thread_variant_reports_zero_pickle(self):
        from repro.perf.parallel import (
            record_task_telemetry,
            worker_buckets,
        )

        before = metrics.counters()
        record_task_telemetry(queue_wait=0.1, task_seconds=0.2)
        buckets = worker_buckets(
            metrics.counter_delta(before), jobs=2, executor="thread"
        )
        assert buckets["pickle_bytes"] == 0
        assert "worker_cache" not in buckets

    def test_thread_parallel_map_emits_telemetry(self):
        net = make_random_network(4, num_gates=40)
        before = metrics.counters()
        ChortleMapper(k=4, jobs=2).map(net)
        delta = metrics.counter_delta(before)
        assert delta.get("perf.parallel.tasks", 0) > 0
        assert "perf.parallel.task_us" in delta

    def test_bench_perf_parallel_phase_carries_buckets(self):
        from repro.perf.benchperf import run_bench_perf

        payload = run_bench_perf(
            circuits=["9symml"], ks=(3,), jobs=2, created_at="t"
        )
        workers = payload["phases"]["parallel"]["workers"]
        # The >=3 attribution buckets the acceptance criteria name.
        assert workers["tasks"] > 0
        assert workers["compute_seconds"] > 0.0
        assert workers["queue_wait_seconds"] >= 0.0
        assert workers["pickle_bytes"] == 0  # thread executor: zero-copy
        assert workers["executor"] == "thread"
        # Serial phases carry no worker block.
        assert "workers" not in payload["phases"]["serial_uncached"]
        # Environment captures both core counts (the satellite fix).
        env = payload["environment"]
        assert "cpu_count" in env and "cpu_affinity" in env
        assert payload["config"]["cpu_affinity"] == env["cpu_affinity"]

    def test_render_warns_when_jobs_exceed_cores(self):
        from repro.perf.benchperf import render_bench_perf

        payload = {
            "cells": 1,
            "config": {
                "circuits": ["c"], "ks": [3], "jobs": 4,
                "cpu_count": 2, "cpu_affinity": 2,
            },
            "phases": {
                name: {"seconds": 1.0, "speedup_vs_serial": 1.0,
                       "jobs": 4 if name == "parallel" else 1}
                for name in (
                    "serial_uncached", "cold_cache", "warm_cache", "parallel",
                )
            },
            "qor_identical": True,
            "gate": {"pass": True},
        }
        text = render_bench_perf(payload)
        assert "WARNING" in text
        assert "jobs=4" in text and "2 schedulable core" in text

    def test_render_silent_when_cores_suffice(self):
        from repro.perf.benchperf import render_bench_perf

        payload = {
            "cells": 1,
            "config": {
                "circuits": ["c"], "ks": [3], "jobs": 2,
                "cpu_count": 8, "cpu_affinity": 8,
            },
            "phases": {
                name: {"seconds": 1.0, "speedup_vs_serial": 1.0,
                       "jobs": 2 if name == "parallel" else 1}
                for name in (
                    "serial_uncached", "cold_cache", "warm_cache", "parallel",
                )
            },
            "qor_identical": True,
            "gate": {"pass": True},
        }
        assert "WARNING" not in render_bench_perf(payload)


class TestPermTableCache:
    def test_counter_visible_in_metrics(self):
        from repro.truth.canonical import np_canonical
        from repro.truth.truthtable import TruthTable

        before = metrics.counters()
        np_canonical(TruthTable(3, 0b11001010))
        delta = metrics.counter_delta(before)
        assert (
            delta.get("truth.perm_tables.hits", 0)
            + delta.get("truth.perm_tables.misses", 0)
        ) > 0
